"""Tests for the Fig. 4 statistics helpers and edit distance."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.trajectories.datasets import load_dataset, profile
from repro.trajectories.edit_distance import (
    edit_distance,
    normalized_edit_distance,
)
from repro.trajectories.stats import (
    between_trajectory_similarity,
    dataset_summary,
    interval_statistics,
    within_trajectory_similarity,
)


class TestEditDistance:
    def test_identical(self):
        assert edit_distance([1, 2, 3], [1, 2, 3]) == 0

    def test_substitution(self):
        assert edit_distance([1, 2, 3], [1, 9, 3]) == 1

    def test_insertion_deletion(self):
        assert edit_distance([1, 2, 3], [1, 2, 3, 4]) == 1
        assert edit_distance([1, 2, 3, 4], [1, 3, 4]) == 1

    def test_empty_sequences(self):
        assert edit_distance([], []) == 0
        assert edit_distance([1, 2], []) == 2

    def test_upper_bound_early_exit(self):
        a = list(range(50))
        b = list(range(50, 100))
        assert edit_distance(a, b, upper_bound=5) > 5

    def test_upper_bound_length_gap(self):
        assert edit_distance([1], [1] * 30, upper_bound=3) > 3

    def test_normalized(self):
        assert normalized_edit_distance([1, 2], [3, 4]) == 1.0
        assert normalized_edit_distance([], []) == 0.0
        assert 0 < normalized_edit_distance([1, 2, 3, 4], [1, 2, 3, 9]) < 1

    @given(
        st.lists(st.integers(0, 5), max_size=15),
        st.lists(st.integers(0, 5), max_size=15),
    )
    def test_property_symmetry(self, a, b):
        assert edit_distance(a, b) == edit_distance(b, a)

    @given(
        st.lists(st.integers(0, 5), max_size=12),
        st.lists(st.integers(0, 5), max_size=12),
    )
    def test_property_bounds(self, a, b):
        distance = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= distance <= max(len(a), len(b))

    @given(st.lists(st.integers(0, 5), max_size=15))
    def test_property_identity(self, a):
        assert edit_distance(a, a) == 0


@pytest.fixture(scope="module")
def cd():
    return load_dataset("CD", 40, seed=61, network_scale=12)


class TestIntervalStatistics:
    def test_fractions_sum_to_one(self, cd):
        _, trajectories = cd
        stats = interval_statistics(trajectories, profile("CD").default_interval)
        assert sum(stats.fractions.values()) == pytest.approx(1.0)

    def test_change_rate_positive(self, cd):
        _, trajectories = cd
        stats = interval_statistics(trajectories, 10)
        assert stats.change_every >= 1.0

    def test_dk_more_stable_than_hz(self):
        _, dk = load_dataset("DK", 40, seed=61, network_scale=12)
        _, hz = load_dataset("HZ", 40, seed=61, network_scale=12)
        dk_stats = interval_statistics(dk, 1)
        hz_stats = interval_statistics(hz, 20)
        assert dk_stats.within_one_second > hz_stats.within_one_second

    def test_empty_dataset(self):
        stats = interval_statistics([], 10)
        assert stats.change_every == 0.0


class TestSimilarityStatistics:
    def test_within_buckets_sum_to_one(self, cd):
        _, trajectories = cd
        multi = [t for t in trajectories if t.instance_count > 1]
        buckets = within_trajectory_similarity(multi)
        assert sum(buckets.values()) == pytest.approx(1.0)

    def test_within_distances_small(self, cd):
        _, trajectories = cd
        multi = [t for t in trajectories if t.instance_count > 1]
        buckets = within_trajectory_similarity(multi)
        assert buckets["[0,2]"] + buckets["[3,5]"] > 0.6

    def test_between_skews_larger_than_within(self, cd):
        _, trajectories = cd
        within = within_trajectory_similarity(trajectories)
        between = between_trajectory_similarity(trajectories, sample_pairs=200)
        assert between[">=9"] > within[">=9"]

    def test_between_single_trajectory(self, cd):
        _, trajectories = cd
        buckets = between_trajectory_similarity(trajectories[:1])
        assert all(v == 0.0 for v in buckets.values())


class TestDatasetSummary:
    def test_summary_fields(self, cd):
        _, trajectories = cd
        summary = dataset_summary(trajectories)
        assert summary["trajectories"] == 40
        assert summary["avg_instances"] >= 1
        assert summary["max_instances"] >= summary["avg_instances"]
        assert summary["avg_edges"] >= 2

    def test_empty_summary(self):
        summary = dataset_summary([])
        assert summary["trajectories"] == 0
