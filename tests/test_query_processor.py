"""Tests for StIU-backed queries against the brute-force oracle."""

import random

import pytest

from repro.core.compressor import compress_dataset
from repro.network.grid import Rect
from repro.query import (
    BruteForceOracle,
    StIUIndex,
    UTCQQueryProcessor,
    range_accuracy,
    when_accuracy,
    where_accuracy,
)
from repro.trajectories.datasets import load_dataset


@pytest.fixture(scope="module")
def setup():
    network, trajectories = load_dataset("CD", 30, seed=41, network_scale=12)
    archive = compress_dataset(network, trajectories, default_interval=10)
    index = StIUIndex(
        network, archive, grid_cells_per_side=16, time_partition_seconds=900
    )
    processor = UTCQQueryProcessor(network, archive, index)
    oracle = BruteForceOracle(network, trajectories)
    return network, trajectories, archive, index, processor, oracle


def mid_time(trajectory):
    return (trajectory.start_time + trajectory.end_time) // 2


class TestStIUStructure:
    def test_temporal_tuples_cover_span(self, setup):
        _, trajectories, _, index, _, _ = setup
        for trajectory in trajectories:
            entry = index.temporal_tuple_for(
                trajectory.trajectory_id, trajectory.start_time
            )
            assert entry is not None
            assert entry.start == trajectory.start_time
            assert entry.number == 0

    def test_temporal_lookup_mid_trajectory(self, setup):
        _, trajectories, _, index, _, _ = setup
        trajectory = max(trajectories, key=lambda t: len(t.times))
        t = mid_time(trajectory)
        entry = index.temporal_tuple_for(trajectory.trajectory_id, t)
        assert entry is not None
        assert entry.start <= t

    def test_temporal_lookup_before_start(self, setup):
        _, trajectories, _, index, _, _ = setup
        trajectory = trajectories[0]
        assert (
            index.temporal_tuple_for(
                trajectory.trajectory_id, trajectory.start_time - 10**6
            )
            is None
        )

    def test_spatial_tuples_exist_for_visited_regions(self, setup):
        network, trajectories, _, index, _, _ = setup
        trajectory = trajectories[0]
        instance = trajectory.best_instance()
        start = network.vertex(instance.path[0][0])
        region = index.grid.cell_of_point(start.x, start.y)
        interval = index.interval_of(trajectory.start_time)
        entry = index.entries_for_trajectory(
            interval, region, trajectory.trajectory_id
        )
        assert entry is not None
        assert entry.references

    def test_p_total_bounded_by_one(self, setup):
        _, _, _, index, _, _ = setup
        for interval_map in index.spatial.values():
            for region_map in interval_map.values():
                for entry in region_map.values():
                    for reference in entry.references:
                        assert 0.0 < reference.p_total <= 1.0 + 1e-9
                        assert 0.0 <= reference.p_max <= reference.p_total + 1e-9

    def test_index_size_positive_and_decomposes(self, setup):
        _, _, _, index, _, _ = setup
        assert index.temporal_size_bytes() > 0
        assert index.spatial_size_bytes() > 0
        assert index.size_bytes() == (
            index.temporal_size_bytes() + index.spatial_size_bytes()
        )

    def test_finer_grid_grows_spatial_index(self, setup):
        network, _, archive, index, _, _ = setup
        finer = StIUIndex(
            network,
            archive,
            grid_cells_per_side=64,
            time_partition_seconds=900,
        )
        assert finer.spatial_size_bytes() >= index.spatial_size_bytes()


class TestWhereQuery:
    def test_where_matches_oracle_positions(self, setup):
        network, trajectories, _, _, processor, oracle = setup
        eta = 1 / 128
        checked = 0
        for trajectory in trajectories[:15]:
            t = mid_time(trajectory)
            got = processor.where(trajectory.trajectory_id, t, alpha=0.0)
            expected = oracle.where(trajectory.trajectory_id, t, alpha=0.0)
            report = where_accuracy(network, expected, got)
            assert report.f1 == pytest.approx(1.0)
            # PDDP-bounded positions: error <= eta * edge length + speed slack
            assert report.average_difference < 25.0
            checked += 1
        assert checked == 15

    def test_where_alpha_filters_instances(self, setup):
        _, trajectories, _, _, processor, _ = setup
        trajectory = max(trajectories, key=lambda t: t.instance_count)
        t = mid_time(trajectory)
        all_results = processor.where(trajectory.trajectory_id, t, alpha=0.0)
        strict = processor.where(trajectory.trajectory_id, t, alpha=0.5)
        assert len(strict) <= len(all_results)
        assert all(r.probability >= 0.5 for r in strict)

    def test_where_outside_span_is_empty(self, setup):
        _, trajectories, _, _, processor, _ = setup
        trajectory = trajectories[0]
        assert processor.where(
            trajectory.trajectory_id, trajectory.end_time + 10**5, 0.0
        ) == []


class TestWhenQuery:
    def _query_location(self, network, trajectory):
        instance = trajectory.best_instance()
        location = instance.locations[len(instance.locations) // 2]
        rd = location.ndist / network.edge_length(*location.edge)
        return location.edge, min(rd, 0.999)

    def test_when_matches_oracle(self, setup):
        network, trajectories, _, _, processor, oracle = setup
        for trajectory in trajectories[:15]:
            edge, rd = self._query_location(network, trajectory)
            got = processor.when(trajectory.trajectory_id, edge, rd, alpha=0.0)
            expected = oracle.when(
                trajectory.trajectory_id, edge, rd, alpha=0.0
            )
            report = when_accuracy(expected, got)
            assert report.recall == pytest.approx(1.0)
            if report.matched:
                # time deviation bounded by eta-induced position error over speed
                assert report.average_difference < 60.0

    def test_when_respects_alpha(self, setup):
        network, trajectories, _, _, processor, _ = setup
        trajectory = max(trajectories, key=lambda t: t.instance_count)
        edge, rd = self._query_location(network, trajectory)
        results = processor.when(trajectory.trajectory_id, edge, rd, alpha=0.6)
        assert all(r.probability >= 0.6 for r in results)

    def test_when_unvisited_edge_is_empty(self, setup):
        network, trajectories, _, _, processor, _ = setup
        trajectory = trajectories[0]
        visited = set()
        for instance in trajectory.instances:
            visited.update(instance.path)
        unvisited = next(
            e.key for e in network.edges() if e.key not in visited
        )
        assert processor.when(
            trajectory.trajectory_id, unvisited, 0.5, alpha=0.0
        ) == []


class TestRangeQuery:
    def _query_rect(self, network, trajectory, margin=150.0):
        instance = trajectory.best_instance()
        index = len(instance.locations) // 2
        x, y = instance.locations[index].position(network)
        return Rect(x - margin, y - margin, x + margin, y + margin)

    def test_range_matches_oracle(self, setup):
        network, trajectories, _, _, processor, oracle = setup
        rng = random.Random(3)
        mismatch_budget = 0
        for trajectory in rng.sample(trajectories, 12):
            t = mid_time(trajectory)
            rect = self._query_rect(network, trajectory)
            got = set(processor.range(rect, t, alpha=0.3))
            expected = set(oracle.range(rect, t, alpha=0.3))
            # PDDP rounding can flip borderline trajectories; nearly all
            # decisions must agree.
            mismatch_budget += len(got ^ expected)
        assert mismatch_budget <= 2

    def test_range_includes_known_trajectory(self, setup):
        network, trajectories, _, _, processor, oracle = setup
        hits = 0
        for trajectory in trajectories[:10]:
            t = mid_time(trajectory)
            rect = self._query_rect(network, trajectory, margin=400.0)
            expected = oracle.range(rect, t, alpha=0.2)
            if trajectory.trajectory_id not in expected:
                continue
            got = processor.range(rect, t, alpha=0.2)
            assert trajectory.trajectory_id in got
            hits += 1
        assert hits >= 5

    def test_range_far_away_is_empty(self, setup):
        network, _, _, _, processor, _ = setup
        box = network.bounding_box()
        far = Rect(
            box.max_x + 10**4,
            box.max_y + 10**4,
            box.max_x + 10**4 + 10,
            box.max_y + 10**4 + 10,
        )
        assert processor.range(far, 40000, alpha=0.1) == []

    def test_lemma4_prunes_trajectories(self, setup):
        network, trajectories, _, _, processor, _ = setup
        processor.counters.reset()
        trajectory = trajectories[0]
        rect = self._query_rect(network, trajectory, margin=60.0)
        processor.range(rect, mid_time(trajectory), alpha=0.9)
        # at least some non-overlapping trajectories must be pruned without
        # decompression when others share the time interval
        interval_population = len(
            processor.index.trajectories_in_interval(mid_time(trajectory))
        )
        if interval_population > 1:
            assert processor.counters.trajectories_pruned > 0


class TestAccuracyMetrics:
    def test_range_accuracy_perfect(self):
        report = range_accuracy([1, 2, 3], [1, 2, 3])
        assert report.f1 == 1.0

    def test_range_accuracy_partial(self):
        report = range_accuracy([1, 2, 3, 4], [1, 2])
        assert report.precision == 1.0
        assert report.recall == 0.5

    def test_empty_sets_score_one(self):
        report = range_accuracy([], [])
        assert report.f1 == 1.0
