"""Tests for shortest paths, alternatives, random walks, and generators."""

import random

import pytest

from repro.network.generators import (
    dataset_network,
    grid_network,
    perturbed_grid_network,
)
from repro.network.shortest_path import (
    dijkstra,
    k_alternative_paths,
    network_distance,
    random_walk_path,
    reachable_within,
    shortest_path,
)


@pytest.fixture(scope="module")
def grid():
    return grid_network(5, 5, spacing=100.0)


class TestDijkstra:
    def test_distance_to_self_is_zero(self, grid):
        distances, _ = dijkstra(grid, 0)
        assert distances[0] == 0.0

    def test_grid_distances_are_manhattan(self, grid):
        # 5x5 grid with 100 m blocks: vertex 0 to vertex 24 = 800 m
        assert network_distance(grid, 0, 24) == pytest.approx(800.0)

    def test_unknown_source_rejected(self, grid):
        with pytest.raises(KeyError):
            dijkstra(grid, 999)

    def test_cutoff_limits_exploration(self, grid):
        distances, _ = dijkstra(grid, 0, cutoff=150.0)
        assert all(d <= 150.0 for d in distances.values())
        assert 24 not in distances

    def test_forbidden_edges_force_detour(self, grid):
        direct = network_distance(grid, 0, 1)
        result = shortest_path(grid, 0, 1, forbidden_edges={(0, 1)})
        assert result is not None
        assert result[1] > direct

    def test_early_exit_at_target(self, grid):
        distances, _ = dijkstra(grid, 0, target=1)
        assert distances[1] == pytest.approx(100.0)


class TestShortestPath:
    def test_path_is_connected_and_valid(self, grid):
        path, length = shortest_path(grid, 0, 24)
        assert grid.validate_path(path)
        assert path[0][0] == 0 and path[-1][1] == 24
        assert length == pytest.approx(grid.path_length(path))

    def test_trivial_path(self, grid):
        assert shortest_path(grid, 3, 3) == ([], 0.0)

    def test_unreachable_returns_none(self, grid):
        assert shortest_path(grid, 0, 24, cutoff=100.0) is None

    def test_network_distance_unreachable_is_inf(self, grid):
        assert network_distance(grid, 0, 24, cutoff=50.0) == float("inf")


class TestAlternativePaths:
    def test_returns_distinct_paths_shortest_first(self, grid):
        paths = k_alternative_paths(grid, 0, 12, 3)
        assert len(paths) >= 2
        keys = {tuple(p) for p, _ in paths}
        assert len(keys) == len(paths)
        lengths = [length for _, length in paths]
        assert lengths == sorted(lengths)

    def test_k_validation(self, grid):
        with pytest.raises(ValueError):
            k_alternative_paths(grid, 0, 5, 0)

    def test_all_paths_valid(self, grid):
        for path, _ in k_alternative_paths(grid, 0, 6, 4):
            assert grid.validate_path(path)
            assert path[0][0] == 0 and path[-1][1] == 6


class TestReachability:
    def test_reachable_within_radius(self, grid):
        reachable = reachable_within(grid, 12, 100.0)
        assert set(reachable) == {12, 7, 11, 13, 17}


class TestRandomWalk:
    def test_walk_length_and_connectivity(self, grid):
        rng = random.Random(1)
        path = random_walk_path(grid, 0, 10, rng.choice)
        assert len(path) == 10
        assert grid.validate_path(path)

    def test_walk_avoids_immediate_backtrack(self, grid):
        rng = random.Random(2)
        for _ in range(20):
            path = random_walk_path(grid, 12, 8, rng.choice)
            for (a, _), (_, d) in zip(path, path[1:]):
                assert d != a or len(grid.out_edges(a)) == 1

    def test_walk_requires_positive_length(self, grid):
        with pytest.raises(ValueError):
            random_walk_path(grid, 0, 0, random.Random(0).choice)


class TestGenerators:
    def test_grid_network_shape(self):
        network = grid_network(3, 4)
        assert network.vertex_count == 12
        # inner edges both directions: horizontal 3*3, vertical 2*4 => *2
        assert network.edge_count == 2 * (3 * 3 + 2 * 4)

    def test_grid_network_validation(self):
        with pytest.raises(ValueError):
            grid_network(1, 5)

    def test_perturbed_network_is_deterministic(self):
        a = perturbed_grid_network(6, 6, seed=3)
        b = perturbed_grid_network(6, 6, seed=3)
        assert a.edge_count == b.edge_count
        assert {e.key for e in a.edges()} == {e.key for e in b.edges()}

    def test_perturbed_network_has_no_stranded_vertices(self):
        network = perturbed_grid_network(8, 8, removal_fraction=0.3, seed=5)
        for vid in network.vertex_ids():
            assert network.out_degree(vid) >= 1

    def test_perturbed_validation(self):
        with pytest.raises(ValueError):
            perturbed_grid_network(2, 2)

    @pytest.mark.parametrize("name", ["DK", "CD", "HZ"])
    def test_dataset_networks_build(self, name):
        network = dataset_network(name, scale=10)
        assert network.vertex_count == 100
        assert network.max_out_degree >= 2
        # Table 6: average out-degree between ~2 and ~3.5
        assert 1.5 <= network.average_out_degree() <= 4.0

    def test_dataset_network_unknown_profile(self):
        with pytest.raises(ValueError):
            dataset_network("XX")

    def test_dk_sparser_than_cd(self):
        dk = dataset_network("DK", scale=12)
        cd = dataset_network("CD", scale=12)
        assert dk.average_out_degree() < cd.average_out_degree()
