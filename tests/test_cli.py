"""CLI tests: every documented subcommand runs and answers correctly."""

import json

import pytest

from repro import StIUIndex, UTCQQueryProcessor
from repro.cli import main
from repro.core import compress_dataset
from repro.io import FileBackedArchive
from repro.trajectories.datasets import CD, load_dataset

PROFILE_ARGS = [
    "--profile", "CD", "--count", "15", "--dataset-seed", "21",
    "--network-scale", "12",
]


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "cd.utcq"
    code = main(["compress", str(path), *PROFILE_ARGS, "--quiet"])
    assert code == 0
    return path


@pytest.fixture(scope="module")
def reference_setup():
    network, trajectories = load_dataset("CD", 15, seed=21, network_scale=12)
    archive = compress_dataset(
        network, trajectories, default_interval=CD.default_interval
    )
    index = StIUIndex(network, archive)
    return network, trajectories, UTCQQueryProcessor(network, archive, index)


def test_compress_parallel_matches_serial_file(archive_path, tmp_path):
    parallel = tmp_path / "parallel.utcq"
    code = main(
        ["compress", str(parallel), *PROFILE_ARGS, "--workers", "2", "--quiet"]
    )
    assert code == 0
    assert parallel.read_bytes() == archive_path.read_bytes()


def test_compress_records_provenance(archive_path):
    with FileBackedArchive.open(archive_path) as archive:
        provenance = archive.provenance
    assert provenance["profile"] == "CD"
    assert provenance["dataset_seed"] == "21"
    assert provenance["network_scale"] == "12"


def test_info(archive_path, capsys):
    assert main(["info", str(archive_path), "--check"]) == 0
    out = capsys.readouterr().out
    assert "format v1" in out
    assert "trajectories 15" in out
    assert "CRCs OK" in out


def test_info_json(archive_path, capsys):
    assert main(["info", str(archive_path), "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["trajectory_count"] == 15
    assert document["format_version"] == 1
    assert document["ratios"]["Total"] > 1.0
    assert document["provenance"]["profile"] == "CD"


def test_info_rejects_non_archive(tmp_path):
    bogus = tmp_path / "bogus.utcq"
    bogus.write_bytes(b"not an archive at all")
    with pytest.raises(SystemExit):
        main(["info", str(bogus)])


def test_query_where_matches_in_memory(
    archive_path, reference_setup, capsys
):
    _, trajectories, processor = reference_setup
    target = trajectories[0]
    t = (target.start_time + target.end_time) // 2
    expected = processor.where(target.trajectory_id, t, alpha=0.1)
    assert expected, "reference where query returned nothing"
    code = main(
        [
            "query", "where", str(archive_path),
            "--trajectory", str(target.trajectory_id),
            "--time", str(t), "--alpha", "0.1", "--json",
        ]
    )
    assert code == 0
    results = json.loads(capsys.readouterr().out)
    assert results == [
        {
            "instance": r.instance_index,
            "edge": list(r.edge),
            "ndist": r.ndist,
            "probability": r.probability,
        }
        for r in expected
    ]


def test_query_when_matches_in_memory(archive_path, reference_setup, capsys):
    _, trajectories, processor = reference_setup
    target = trajectories[0]
    t = (target.start_time + target.end_time) // 2
    located = processor.where(target.trajectory_id, t, alpha=0.1)
    edge = located[0].edge
    expected = processor.when(target.trajectory_id, edge, 0.5, alpha=0.1)
    code = main(
        [
            "query", "when", str(archive_path),
            "--trajectory", str(target.trajectory_id),
            "--edge", f"{edge[0]},{edge[1]}",
            "--rd", "0.5", "--alpha", "0.1", "--json",
        ]
    )
    assert code == 0
    results = json.loads(capsys.readouterr().out)
    assert results == [
        {
            "instance": r.instance_index,
            "time": r.time,
            "probability": r.probability,
        }
        for r in expected
    ]


def test_query_range(archive_path, reference_setup, capsys):
    network, trajectories, processor = reference_setup
    from repro.network.grid import Rect

    box = network.bounding_box()
    t = trajectories[0].times[1]
    expected = processor.range(
        Rect(box.min_x, box.min_y, box.max_x, box.max_y), t, alpha=0.2
    )
    code = main(
        [
            "query", "range", str(archive_path),
            f"--rect={box.min_x},{box.min_y},{box.max_x},{box.max_y}",
            "--time", str(t), "--alpha", "0.2", "--json",
        ]
    )
    assert code == 0
    assert json.loads(capsys.readouterr().out) == expected


def test_decompress(archive_path, reference_setup, capsys):
    _, trajectories, _ = reference_setup
    code = main(["decompress", str(archive_path), "--limit", "2"])
    assert code == 0
    lines = [
        line for line in capsys.readouterr().out.splitlines() if line.strip()
    ]
    assert len(lines) == 2
    first = json.loads(lines[0])
    assert first["trajectory_id"] == trajectories[0].trajectory_id
    assert first["times"] == list(trajectories[0].times)
    assert len(first["instances"]) == trajectories[0].instance_count
    # paths are lossless through compress -> save -> load -> decode
    assert first["instances"][0]["path"] == [
        list(edge) for edge in trajectories[0].instances[0].path
    ]


def test_decompress_to_file(archive_path, tmp_path):
    out = tmp_path / "decoded.jsonl"
    code = main(
        ["decompress", str(archive_path), "-o", str(out), "--limit", "3"]
    )
    assert code == 0
    lines = out.read_text().splitlines()
    assert len(lines) == 3
    json.loads(lines[0])


def test_query_without_provenance_requires_flags(
    reference_setup, tmp_path, capsys
):
    network, trajectories, processor = reference_setup
    archive = processor.archive
    bare = tmp_path / "bare.utcq"
    archive.save(bare)  # no provenance recorded
    target = trajectories[0]
    t = (target.start_time + target.end_time) // 2
    with pytest.raises(SystemExit, match="provenance"):
        main(
            [
                "query", "where", str(bare),
                "--trajectory", str(target.trajectory_id),
                "--time", str(t),
            ]
        )
    # explicit dataset flags substitute for provenance
    code = main(
        [
            "query", "where", str(bare),
            "--trajectory", str(target.trajectory_id),
            "--time", str(t), "--alpha", "0.1",
            "--profile", "CD", "--dataset-seed", "21",
            "--network-scale", "12", "--json",
        ]
    )
    assert code == 0
    assert json.loads(capsys.readouterr().out)


def test_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0


def test_version_reports_package_version(capsys):
    import repro

    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"


# ----------------------------------------------------------------------
# streaming subcommands
# ----------------------------------------------------------------------
STREAM_ARGS = [
    "--profile", "CD", "--count", "6", "--dataset-seed", "21",
    "--network-scale", "12", "--segment-size", "2",
]


@pytest.fixture(scope="module")
def stream_directory(tmp_path_factory):
    directory = tmp_path_factory.mktemp("stream-cli") / "fleet"
    code = main(["stream", "replay", str(directory), *STREAM_ARGS, "--quiet"])
    assert code == 0
    return directory


def test_stream_replay_reports_throughput(tmp_path, capsys):
    directory = tmp_path / "fleet"
    code = main(
        ["stream", "replay", str(directory), "--profile", "CD",
         "--count", "3", "--dataset-seed", "5", "--network-scale", "12"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "points/sec sustained" in out
    assert "sealed" in out


def test_stream_stats_json(stream_directory, capsys):
    assert main(["stream", "stats", str(stream_directory), "--json"]) == 0
    manifest = json.loads(capsys.readouterr().out)
    assert manifest["format"] == "utcq-stream-manifest"
    assert manifest["trajectory_count"] > 0
    assert len(manifest["segments"]) >= 2
    assert manifest["provenance"]["profile"] == "CD"


def test_stream_stats_text(stream_directory, capsys):
    assert main(["stream", "stats", str(stream_directory)]) == 0
    out = capsys.readouterr().out
    assert "stream archive" in out
    assert "seg-00000.utcq" in out


def test_stream_stats_rejects_missing_directory(tmp_path):
    with pytest.raises(SystemExit, match="no stream archive"):
        main(["stream", "stats", str(tmp_path / "nope")])


def test_stream_compact_then_query(stream_directory, tmp_path, capsys):
    output = tmp_path / "fleet.utcq"
    assert main(
        ["stream", "compact", str(stream_directory), str(output)]
    ) == 0
    assert "compacted" in capsys.readouterr().out
    assert main(["info", str(output), "--check", "--json"]) == 0
    document = json.loads(capsys.readouterr().out)
    assert document["crc_checked"] is True
    assert document["provenance"]["generator"] == "repro.stream.replay"

    # the compacted archive answers queries via its recorded provenance
    with FileBackedArchive.open(output) as archive:
        trajectory_id = archive.trajectory_ids()[0]
        trajectory = archive.trajectory(trajectory_id)
        t = (trajectory.start_time + trajectory.end_time) // 2
    code = main(
        ["query", "where", str(output),
         "--trajectory", str(trajectory_id), "--time", str(t),
         "--alpha", "0.1", "--json"]
    )
    assert code == 0
    json.loads(capsys.readouterr().out)


# ----------------------------------------------------------------------
# bench
# ----------------------------------------------------------------------
def test_bench_quick_writes_results_json(tmp_path, capsys):
    output = tmp_path / "BENCH_core_hotpaths.json"
    code = main(
        ["bench", "--quick", "-o", str(output), "--label", "cli-test"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "hot-path benchmarks" in out
    assert "bit_io" in out
    document = json.loads(output.read_text())
    assert document["format"] == "repro-bench"
    (table,) = [
        t for t in document["tables"] if t["title"] == "core_hotpaths"
    ]
    names = {row[1] for row in table["rows"]}
    assert {
        "bit_io", "map_matching", "ted_base_search", "compression",
        "utcq_compression", "ted_compression", "stiu_queries",
    } <= names
    assert all(row[0] == "cli-test" for row in table["rows"])

    # --append keeps the prior rows and adds freshly labelled ones
    code = main(
        ["bench", "--quick", "-o", str(output), "--label", "second",
         "--append"]
    )
    assert code == 0
    capsys.readouterr()
    document = json.loads(output.read_text())
    (table,) = [
        t for t in document["tables"] if t["title"] == "core_hotpaths"
    ]
    labels = [row[0] for row in table["rows"]]
    assert "cli-test" in labels and "second" in labels
    assert labels.index("cli-test") < labels.index("second")


# ----------------------------------------------------------------------
# operator errors: one line on stderr, exit status 2
# ----------------------------------------------------------------------
class TestCliErrorContract:
    """``query``/``stream``/``serve-bench`` failures are typed: exit
    status 2 with a single ``error: ...`` line, never a traceback."""

    def assert_clean_failure(self, excinfo, capsys):
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        lines = [line for line in err.splitlines() if line.strip()]
        assert len(lines) == 1
        assert lines[0].startswith("error: ")
        return lines[0]

    def test_query_missing_archive(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "query", "where", "/no/such/archive.utcq",
                "--trajectory", "1", "--time", "0",
            ])
        message = self.assert_clean_failure(excinfo, capsys)
        assert "no such archive" in message

    def test_query_batch_bad_json(self, archive_path, tmp_path, capsys):
        bad = tmp_path / "queries.jsonl"
        bad.write_text("this is not json\n")
        with pytest.raises(SystemExit) as excinfo:
            main(["query", "batch", str(archive_path), "-i", str(bad)])
        message = self.assert_clean_failure(excinfo, capsys)
        assert "bad query JSON" in message

    def test_query_corrupt_archive(self, archive_path, tmp_path, capsys):
        data = bytearray(archive_path.read_bytes())
        data[0] ^= 0xFF
        bad = tmp_path / "corrupt.utcq"
        bad.write_bytes(bytes(data))
        with pytest.raises(SystemExit) as excinfo:
            main([
                "query", "where", str(bad),
                "--trajectory", "1", "--time", "0",
            ])
        self.assert_clean_failure(excinfo, capsys)

    def test_stream_missing_directory(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["stream", "stats", str(tmp_path / "nowhere")])
        message = self.assert_clean_failure(excinfo, capsys)
        assert excinfo.value.code == 2

    def test_serve_bench_rejects_bad_duration(self, tmp_path, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--chaos", "--quick",
                "--duration", "0",
                "-o", str(tmp_path / "out.json"),
            ])
        message = self.assert_clean_failure(excinfo, capsys)
        assert "duration" in message

    def test_serve_bench_unwritable_output(self, tmp_path, capsys, monkeypatch):
        # the bench itself is expensive; patch it out and fail the write
        from repro.workloads import query_bench

        monkeypatch.setattr(
            "repro.workloads.query_bench.run_query_bench",
            lambda **kwargs: [],
        )
        with pytest.raises(SystemExit) as excinfo:
            main([
                "serve-bench", "--quick",
                "-o", str(tmp_path / "no" / "such" / "dir" / "out.json"),
            ])
        message = self.assert_clean_failure(excinfo, capsys)
        assert "cannot write" in message
