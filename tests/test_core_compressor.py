"""End-to-end tests: compress -> archive -> decode round trips and sizes."""

import pytest

from repro.core import (
    UTCQCompressor,
    compress_dataset,
    decode_archive,
    decode_instance_by_index,
    decode_times,
    decode_times_prefix,
    decode_trajectory,
)
from repro.core.decoder import (
    decode_non_reference_tuple,
    decode_reference_tuple,
    decode_trajectory_tuples,
)
from repro.core.improved_ted import encode_instance
from repro.trajectories.datasets import CD, DK, load_dataset


@pytest.fixture(scope="module")
def cd_data():
    return load_dataset("CD", 25, seed=21, network_scale=12)


@pytest.fixture(scope="module")
def cd_archive(cd_data):
    network, trajectories = cd_data
    compressor = UTCQCompressor(
        network=network, default_interval=CD.default_interval, pivot_count=1
    )
    return compressor.compress(trajectories)


class TestArchiveStructure:
    def test_counts(self, cd_data, cd_archive):
        _, trajectories = cd_data
        assert cd_archive.trajectory_count == len(trajectories)
        assert cd_archive.instance_count == sum(
            t.instance_count for t in trajectories
        )

    def test_every_trajectory_has_a_reference(self, cd_archive):
        for trajectory in cd_archive.trajectories:
            assert trajectory.reference_count >= 1

    def test_reference_ordinals_are_dense(self, cd_archive):
        for trajectory in cd_archive.trajectories:
            ordinals = sorted(
                i.reference_ordinal for i in trajectory.instances if i.is_reference
            )
            assert ordinals == list(range(len(ordinals)))

    def test_nonrefs_point_at_existing_references(self, cd_archive):
        for trajectory in cd_archive.trajectories:
            for instance in trajectory.instances:
                if not instance.is_reference:
                    trajectory.reference_by_ordinal(instance.reference_ordinal)

    def test_compression_shrinks_data(self, cd_archive):
        assert cd_archive.stats.compressed.total < cd_archive.stats.original.total
        assert cd_archive.stats.total_ratio > 2.0

    def test_stats_sum_over_trajectories(self, cd_archive):
        total = sum(t.stats.compressed.total for t in cd_archive.trajectories)
        assert total == cd_archive.stats.compressed.total

    def test_component_bits_sum_to_total(self, cd_archive):
        bits = cd_archive.stats.compressed
        assert bits.total == (
            bits.time + bits.edge + bits.distance + bits.flags
            + bits.probability + bits.overhead
        )

    def test_trajectory_lookup(self, cd_archive):
        first = cd_archive.trajectories[0]
        assert cd_archive.trajectory(first.trajectory_id) is first
        with pytest.raises(KeyError):
            cd_archive.trajectory(10**9)


class TestRoundTrip:
    def test_times_round_trip_exactly(self, cd_data, cd_archive):
        _, trajectories = cd_data
        for original, compressed in zip(trajectories, cd_archive.trajectories):
            assert decode_times(compressed, cd_archive.params) == list(
                original.times
            )

    def test_paths_round_trip_exactly(self, cd_data, cd_archive):
        network, trajectories = cd_data
        decoded = decode_archive(network, cd_archive)
        for original, restored in zip(trajectories, decoded):
            assert restored.trajectory_id == original.trajectory_id
            assert len(restored.instances) == len(original.instances)
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path

    def test_distances_round_trip_within_eta(self, cd_data, cd_archive):
        network, trajectories = cd_data
        eta = cd_archive.params.eta_distance
        decoded = decode_archive(network, cd_archive)
        for original, restored in zip(trajectories, decoded):
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                orig_rd = orig_inst.relative_distances(network)
                rest_rd = rest_inst.relative_distances(network)
                for a, b in zip(orig_rd, rest_rd):
                    assert abs(a - b) <= eta + 1e-9

    def test_probabilities_round_trip_within_eta(self, cd_data, cd_archive):
        network, trajectories = cd_data
        eta = cd_archive.params.eta_probability
        decoded = decode_archive(network, cd_archive)
        for original, restored in zip(trajectories, decoded):
            n = len(original.instances)
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                # decoding renormalizes; allow eta per instance plus slack
                assert abs(
                    rest_inst.probability - orig_inst.probability
                ) <= (n + 1) * eta

    def test_flags_round_trip_exactly(self, cd_data, cd_archive):
        network, trajectories = cd_data
        for original, compressed in zip(trajectories, cd_archive.trajectories):
            tuples = decode_trajectory_tuples(compressed, cd_archive.params)
            for orig_inst, restored_tuple in zip(original.instances, tuples):
                expected = encode_instance(network, orig_inst)
                assert restored_tuple.time_flags == expected.time_flags
                assert restored_tuple.edge_numbers == expected.edge_numbers

    def test_single_instance_decode_matches_full(self, cd_data, cd_archive):
        network, trajectories = cd_data
        compressed = cd_archive.trajectories[0]
        full = decode_trajectory(network, compressed, cd_archive.params)
        for index in range(len(compressed.instances)):
            single = decode_instance_by_index(
                network, compressed, cd_archive.params, index
            )
            assert single.path == full.instances[index].path

    def test_times_prefix(self, cd_archive):
        compressed = cd_archive.trajectories[0]
        full = decode_times(compressed, cd_archive.params)
        assert decode_times_prefix(compressed, cd_archive.params, 2) == full[:2]


class TestDecoderValidation:
    def test_reference_decoder_rejects_nonref(self, cd_archive):
        for trajectory in cd_archive.trajectories:
            nonrefs = [i for i in trajectory.instances if not i.is_reference]
            if nonrefs:
                with pytest.raises(ValueError):
                    decode_reference_tuple(nonrefs[0], cd_archive.params)
                return
        pytest.skip("archive has no non-references")

    def test_nonref_decoder_rejects_reference(self, cd_archive):
        trajectory = cd_archive.trajectories[0]
        reference = trajectory.references()[0]
        decoded = decode_reference_tuple(reference, cd_archive.params)
        with pytest.raises(ValueError):
            decode_non_reference_tuple(reference, decoded, cd_archive.params)


class TestCompressorConfiguration:
    def test_pivot_count_validation(self, cd_data):
        network, _ = cd_data
        with pytest.raises(ValueError):
            UTCQCompressor(network=network, default_interval=10, pivot_count=0)

    def test_interval_validation(self, cd_data):
        network, _ = cd_data
        with pytest.raises(ValueError):
            UTCQCompressor(network=network, default_interval=0)

    def test_compression_is_deterministic(self, cd_data):
        network, trajectories = cd_data
        a = compress_dataset(
            network, trajectories, default_interval=10, seed=5
        )
        b = compress_dataset(
            network, trajectories, default_interval=10, seed=5
        )
        assert a.stats.compressed.total == b.stats.compressed.total
        for ta, tb in zip(a.trajectories, b.trajectories):
            assert ta.time_payload == tb.time_payload
            for ia, ib in zip(ta.instances, tb.instances):
                assert ia.payload == ib.payload

    def test_more_pivots_never_crash_and_keep_losslessness(self, cd_data):
        network, trajectories = cd_data
        archive = compress_dataset(
            network, trajectories[:8], default_interval=10, pivot_count=3
        )
        decoded = decode_archive(network, archive)
        for original, restored in zip(trajectories[:8], decoded):
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path

    def test_t0_bits_grow_for_late_timestamps(self, cd_data):
        network, trajectories = cd_data
        shifted = [
            type(t)(
                t.trajectory_id,
                t.instances,
                [x + 2**18 for x in t.times],
            )
            for t in trajectories[:3]
        ]
        compressor = UTCQCompressor(network=network, default_interval=10)
        archive = compressor.compress(shifted)
        assert archive.params.t0_bits > 17
        assert decode_times(
            archive.trajectories[0], archive.params
        ) == list(shifted[0].times)


class TestReferentialBenefit:
    def test_nonrefs_cost_less_than_references(self, cd_archive):
        """The referential representation must pay off on average."""
        ref_bits, ref_count = 0, 0
        nonref_bits, nonref_count = 0, 0
        for trajectory in cd_archive.trajectories:
            for instance in trajectory.instances:
                if instance.is_reference:
                    ref_bits += instance.payload_bits
                    ref_count += 1
                else:
                    nonref_bits += instance.payload_bits
                    nonref_count += 1
        if nonref_count == 0:
            pytest.skip("no non-references selected")
        assert nonref_bits / nonref_count < ref_bits / ref_count

    def test_dk_dataset_compresses(self):
        network, trajectories = load_dataset("DK", 15, seed=4, network_scale=12)
        archive = compress_dataset(
            network, trajectories, default_interval=DK.default_interval
        )
        assert archive.stats.total_ratio > 2.0
        decoded = decode_archive(network, archive)
        for original, restored in zip(trajectories, decoded):
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path
