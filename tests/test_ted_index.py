"""Tests for the TED-side query baseline against the oracle."""

import pytest

from repro.network.grid import Rect
from repro.query import BruteForceOracle, when_accuracy, where_accuracy
from repro.ted import TEDCompressor, TedQueryIndex
from repro.trajectories.datasets import load_dataset


@pytest.fixture(scope="module")
def setup():
    network, trajectories = load_dataset("CD", 20, seed=51, network_scale=12)
    archive = TEDCompressor(network=network, default_interval=10).compress(
        trajectories
    )
    index = TedQueryIndex(network, archive, time_partition_seconds=900)
    oracle = BruteForceOracle(network, trajectories)
    return network, trajectories, archive, index, oracle


class TestTedWhere:
    def test_matches_oracle(self, setup):
        network, trajectories, _, index, oracle = setup
        for trajectory in trajectories[:10]:
            t = (trajectory.start_time + trajectory.end_time) // 2
            got = index.where(trajectory.trajectory_id, t, alpha=0.0)
            expected = oracle.where(trajectory.trajectory_id, t, alpha=0.0)
            report = where_accuracy(network, expected, got)
            assert report.f1 == pytest.approx(1.0)

    def test_respects_alpha(self, setup):
        _, trajectories, _, index, _ = setup
        trajectory = max(trajectories, key=lambda t: t.instance_count)
        t = (trajectory.start_time + trajectory.end_time) // 2
        results = index.where(trajectory.trajectory_id, t, alpha=0.5)
        assert all(r.probability >= 0.5 for r in results)

    def test_outside_span_empty(self, setup):
        _, trajectories, _, index, _ = setup
        trajectory = trajectories[0]
        assert index.where(
            trajectory.trajectory_id, trajectory.end_time + 10**6, 0.0
        ) == []


class TestTedWhen:
    def test_matches_oracle(self, setup):
        network, trajectories, _, index, oracle = setup
        for trajectory in trajectories[:10]:
            instance = trajectory.best_instance()
            location = instance.locations[len(instance.locations) // 2]
            rd = min(
                location.ndist / network.edge_length(*location.edge), 0.999
            )
            got = index.when(
                trajectory.trajectory_id, location.edge, rd, alpha=0.0
            )
            expected = oracle.when(
                trajectory.trajectory_id, location.edge, rd, alpha=0.0
            )
            report = when_accuracy(expected, got)
            assert report.recall == pytest.approx(1.0)


class TestTedRange:
    def test_near_trajectory_found(self, setup):
        network, trajectories, _, index, oracle = setup
        hits = 0
        for trajectory in trajectories[:10]:
            instance = trajectory.best_instance()
            x, y = instance.locations[0].position(network)
            region = Rect(x - 300, y - 300, x + 300, y + 300)
            t = trajectory.start_time
            expected = oracle.range(region, t, alpha=0.2)
            if trajectory.trajectory_id not in expected:
                continue
            got = index.range(region, t, alpha=0.2)
            assert trajectory.trajectory_id in got
            hits += 1
        assert hits >= 5

    def test_empty_far_away(self, setup):
        network, _, _, index, _ = setup
        box = network.bounding_box()
        region = Rect(box.max_x + 9000, box.max_y + 9000, box.max_x + 9100, box.max_y + 9100)
        assert index.range(region, 40000, alpha=0.1) == []


class TestTedIndexStructure:
    def test_size_positive(self, setup):
        _, _, _, index, _ = setup
        assert index.size_bytes() > 0

    def test_partition_validation(self, setup):
        network, _, archive, _, _ = setup
        with pytest.raises(ValueError):
            TedQueryIndex(network, archive, time_partition_seconds=0)

    def test_candidates_cover_active_trajectories(self, setup):
        _, trajectories, _, index, _ = setup
        for trajectory in trajectories[:5]:
            t = (trajectory.start_time + trajectory.end_time) // 2
            positions = index._candidates(t)
            ids = [
                index.archive.trajectories[p].trajectory_id for p in positions
            ]
            assert trajectory.trajectory_id in ids
