"""Tests for the probabilistic map-matching substrate."""

import random

import pytest

from repro.mapmatching import (
    MatcherConfig,
    ProbabilisticMapMatcher,
    candidates_for_point,
    synthesize_raw_dataset,
    synthesize_raw_trajectory,
)
from repro.mapmatching.candidates import emission_log_probability
from repro.network.generators import grid_network
from repro.network.spatial_index import EdgeSpatialIndex
from repro.trajectories.datasets import CD
from repro.trajectories.model import RawPoint


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing=100.0)


@pytest.fixture(scope="module")
def spatial_index(network):
    return EdgeSpatialIndex(network)


@pytest.fixture(scope="module")
def matcher(network):
    return ProbabilisticMapMatcher(
        network, MatcherConfig(sigma=20.0, search_radius=50.0)
    )


class TestCandidates:
    def test_candidates_near_an_edge(self, spatial_index):
        # a point 10 m off the edge (0 -> 1)
        point = RawPoint(50.0, 10.0, 0)
        candidates = candidates_for_point(
            spatial_index, point, search_radius=30.0, sigma=20.0
        )
        assert candidates
        assert candidates[0].distance <= 30.0
        edges = {c.edge for c in candidates}
        assert (0, 1) in edges or (1, 0) in edges

    def test_candidates_sorted_by_distance(self, spatial_index):
        point = RawPoint(150.0, 40.0, 0)
        candidates = candidates_for_point(
            spatial_index, point, search_radius=80.0, sigma=20.0
        )
        distances = [c.distance for c in candidates]
        assert distances == sorted(distances)

    def test_fallback_to_nearest_edge(self, spatial_index):
        # far outside the network: still returns the nearest edge
        point = RawPoint(-500.0, -500.0, 0)
        candidates = candidates_for_point(
            spatial_index, point, search_radius=10.0, sigma=20.0
        )
        assert len(candidates) >= 1

    def test_emission_prefers_closer(self):
        assert emission_log_probability(5.0, 20.0) > emission_log_probability(
            50.0, 20.0
        )


class TestMatcherConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            MatcherConfig(sigma=0.0)
        with pytest.raises(ValueError):
            MatcherConfig(beta=-1.0)
        with pytest.raises(ValueError):
            MatcherConfig(max_instances=0)


class TestSynthesis:
    def test_raw_trajectory_has_increasing_times(self, network):
        rng = random.Random(1)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        times = raw.times
        assert all(b > a for a, b in zip(times, times[1:]))
        assert len(raw) >= 2

    def test_noise_moves_points_off_road(self, network):
        rng = random.Random(2)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=20.0
        )
        # grid streets are axis-aligned at multiples of 100: noisy points
        # should rarely sit exactly on one
        off_road = sum(
            1
            for p in raw
            if min(p.x % 100, 100 - p.x % 100) > 1
            and min(p.y % 100, 100 - p.y % 100) > 1
        )
        assert off_road >= len(raw) // 2

    def test_dataset_batch(self, network):
        raws = synthesize_raw_dataset(
            network, CD.generation_config(), 5, seed=3
        )
        assert len(raws) == 5


class TestMatching:
    def test_match_produces_valid_uncertain_trajectory(self, network, matcher):
        rng = random.Random(4)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        matched = matcher.match(raw)
        assert matched is not None
        assert matched.times == list(raw.times)
        total = sum(i.probability for i in matched.instances)
        assert total == pytest.approx(1.0, abs=1e-6)
        for instance in matched.instances:
            assert network.validate_path(instance.path)
            assert instance.point_count == len(raw)

    def test_best_instance_is_near_ground_truth(self, network, matcher):
        rng = random.Random(5)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=5.0
        )
        matched = matcher.match(raw)
        assert matched is not None
        best = matched.best_instance()
        # each matched location should be close to its raw fix
        for point, location in zip(raw, best.locations):
            x, y = location.position(network)
            assert ((x - point.x) ** 2 + (y - point.y) ** 2) ** 0.5 < 60.0

    def test_noisy_points_yield_multiple_instances(self, network, matcher):
        rng = random.Random(6)
        multi = 0
        for _ in range(8):
            raw = synthesize_raw_trajectory(
                network, CD.generation_config(), rng, noise_sigma=35.0
            )
            matched = matcher.match(raw)
            if matched is not None and matched.instance_count > 1:
                multi += 1
        assert multi >= 3  # ambiguity should be common at high noise

    def test_instances_are_distinct(self, network, matcher):
        rng = random.Random(7)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=30.0
        )
        matched = matcher.match(raw)
        assert matched is not None
        signatures = {i.signature() for i in matched.instances}
        assert len(signatures) == matched.instance_count

    def test_match_many_renumbers(self, network, matcher):
        raws = synthesize_raw_dataset(
            network, CD.generation_config(), 4, seed=8, noise_sigma=10.0
        )
        matched = matcher.match_many(raws, start_id=100)
        assert [t.trajectory_id for t in matched] == list(
            range(100, 100 + len(matched))
        )
        assert len(matched) >= 3  # the odd failure is tolerated

    def test_matched_output_compresses(self, network, matcher):
        """The full pipeline: raw GPS -> matcher -> UTCQ compression."""
        from repro.core.compressor import compress_dataset
        from repro.core.decoder import decode_archive

        raws = synthesize_raw_dataset(
            network, CD.generation_config(), 6, seed=9, noise_sigma=20.0
        )
        matched = matcher.match_many(raws)
        assert matched
        archive = compress_dataset(network, matched, default_interval=10)
        decoded = decode_archive(network, archive)
        for original, restored in zip(matched, decoded):
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path
