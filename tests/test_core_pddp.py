"""Tests for PDDP fraction coding (error-bounded binary fractions)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitio import BitReader, BitWriter
from repro.core.pddp import (
    PddpDecoder,
    PddpEncoder,
    decode_fraction,
    decode_values,
    encode_fraction,
    encode_values,
    max_code_length,
)


class TestFractionCodes:
    def test_zero_is_empty_code(self):
        assert encode_fraction(0.0, 1 / 128) == ()

    def test_half_is_one_bit(self):
        assert encode_fraction(0.5, 1 / 128) == (1,)

    def test_quarter(self):
        assert encode_fraction(0.25, 1 / 128) == (0, 1)

    def test_decode_fraction(self):
        assert decode_fraction((1, 0, 1)) == pytest.approx(0.625)
        assert decode_fraction(()) == 0.0

    @pytest.mark.parametrize("eta", [1 / 8, 1 / 16, 1 / 32, 1 / 64, 1 / 128])
    def test_error_bounded(self, eta):
        for i in range(101):
            x = i / 100.0
            code = encode_fraction(x, eta)
            decoded = decode_fraction(code)
            target = min(x, 1.0 - 2 ** -(max_code_length(eta) + 1))
            assert abs(decoded - target) <= eta + 1e-12

    @pytest.mark.parametrize("eta", [1 / 8, 1 / 128, 1 / 2048])
    def test_code_length_bounded(self, eta):
        limit = max_code_length(eta)
        for i in range(101):
            assert len(encode_fraction(i / 100.0, eta)) <= limit

    def test_codes_are_minimal(self):
        # 0.875 = 0.111b exactly; a coarser eta may stop earlier
        assert encode_fraction(0.875, 1 / 128) == (1, 1, 1)
        assert len(encode_fraction(0.875, 1 / 4)) <= 2

    def test_max_code_length_values(self):
        assert max_code_length(1 / 128) == 7
        assert max_code_length(1 / 512) == 9
        assert max_code_length(1 / 2048) == 11

    def test_max_code_length_validation(self):
        with pytest.raises(ValueError):
            max_code_length(0.0)
        with pytest.raises(ValueError):
            max_code_length(1.0)

    def test_out_of_range_values_clamped(self):
        assert decode_fraction(encode_fraction(-0.5, 1 / 128)) <= 1 / 128
        assert decode_fraction(encode_fraction(1.7, 1 / 128)) >= 1 - 2 / 128


class TestSerializedStreams:
    def test_round_trip_direct(self):
        values = [0.1, 0.9, 0.33, 0.77, 0.02]
        writer = encode_values(values, 1 / 128)
        decoded = decode_values(BitReader.from_writer(writer), 1 / 128)
        assert len(decoded) == len(values)
        for got, expected in zip(decoded, values):
            assert abs(got - expected) <= 1 / 128 + 1e-12

    def test_round_trip_repetitive_uses_dictionary(self):
        values = [0.25, 0.5, 0.25, 0.5] * 40
        encoder = PddpEncoder(1 / 128)
        encoder.add_all(values)
        writer = BitWriter()
        encoder.serialize(writer)
        reader = BitReader.from_writer(writer)
        decoder = PddpDecoder(reader, 1 / 128)
        assert decoder.use_dictionary
        for got, expected in zip(decoder.values, values):
            assert abs(got - expected) <= 1 / 128

    def test_dictionary_beats_direct_on_repetitive_data(self):
        repetitive = [0.125, 0.625] * 50
        varied = [i / 100 for i in range(100)]
        assert len(encode_values(repetitive, 1 / 128)) < len(
            encode_values(varied, 1 / 128)
        )

    def test_empty_stream(self):
        writer = encode_values([], 1 / 128)
        assert decode_values(BitReader.from_writer(writer), 1 / 128) == []

    def test_positions_point_at_values(self):
        values = [0.3, 0.6, 0.9]
        encoder = PddpEncoder(1 / 128)
        encoder.add_all(values)
        writer = BitWriter()
        encoder.serialize(writer)
        assert len(encoder.positions) == 3
        assert encoder.positions == sorted(encoder.positions)
        assert all(0 < p < len(writer) for p in encoder.positions)

    def test_positions_before_serialize_raise(self):
        encoder = PddpEncoder(1 / 128)
        encoder.add(0.5)
        with pytest.raises(RuntimeError):
            _ = encoder.positions

    def test_serialized_size_matches_reality(self):
        values = [0.17, 0.42, 0.42, 0.9, 0.17]
        encoder = PddpEncoder(1 / 128)
        encoder.add_all(values)
        predicted = encoder.serialized_size()
        writer = BitWriter()
        encoder.serialize(writer)
        assert len(writer) == predicted

    def test_getitem_and_len(self):
        writer = encode_values([0.5, 0.25], 1 / 64)
        decoder = PddpDecoder(BitReader.from_writer(writer), 1 / 64)
        assert len(decoder) == 2
        assert decoder[0] == pytest.approx(0.5, abs=1 / 64)


@given(
    st.lists(st.floats(min_value=0.0, max_value=0.999999), max_size=60),
    st.sampled_from([1 / 8, 1 / 32, 1 / 128, 1 / 512, 1 / 2048]),
)
def test_property_stream_round_trip_error_bounded(values, eta):
    writer = encode_values(values, eta)
    decoded = decode_values(BitReader.from_writer(writer), eta)
    assert len(decoded) == len(values)
    for got, expected in zip(decoded, values):
        assert abs(got - expected) <= eta + 1e-9


@given(st.floats(min_value=0.0, max_value=0.999999))
def test_property_tighter_eta_never_lengthens_error(x):
    loose = decode_fraction(encode_fraction(x, 1 / 16))
    tight = decode_fraction(encode_fraction(x, 1 / 1024))
    assert abs(tight - x) <= abs(loose - x) + 1e-12
