"""Tests for the TED baseline: time codec, matrices, compressor, index."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitio import BitReader, BitWriter
from repro.core.compressor import compress_dataset
from repro.ted import (
    MatrixGroup,
    MatrixStore,
    TEDCompressor,
    decode_ted_trajectory,
)
from repro.ted import time_codec
from repro.trajectories.datasets import CD, load_dataset


class TestTimeCodec:
    def test_paper_example_boundary_pairs(self):
        """§2.2: <t_i, t_{i+1}, t_{i+2}> with equal intervals keeps ends."""
        times = [100, 200, 300]
        assert time_codec.boundary_pairs(times) == [(0, 100), (2, 300)]

    def test_varying_intervals_keep_everything(self):
        times = [0, 10, 25, 45, 70]
        pairs = time_codec.boundary_pairs(times)
        assert len(pairs) == len(times)

    def test_restore_inverts(self):
        times = [0, 60, 120, 180, 250, 320, 321]
        pairs = time_codec.boundary_pairs(times)
        assert time_codec.restore_from_pairs(pairs) == times

    def test_single_timestamp(self):
        assert time_codec.boundary_pairs([7]) == [(0, 7)]
        assert time_codec.restore_from_pairs([(0, 7)]) == [7]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            time_codec.boundary_pairs([])

    def test_encode_decode_round_trip(self):
        times = [500, 740, 981, 1221, 1460, 1700, 1940]
        writer = BitWriter()
        time_codec.encode(writer, times)
        reader = BitReader.from_writer(writer)
        assert time_codec.decode(reader) == times

    def test_encoded_size_matches(self):
        times = [500, 740, 981, 1221, 1460]
        writer = BitWriter()
        time_codec.encode(writer, times)
        assert time_codec.encoded_size_bits(times) == len(writer)

    def test_time_bits_overflow(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            time_codec.encode(writer, [2**17], time_bits=17)

    def test_paper_cr_comparison_unstable_intervals(self):
        """The SIAR example: TED keeps 6 pairs of 29 bits (CR 1.29),
        SIAR costs 12 + 17 bits (CR 7.72)."""
        from repro.core import siar

        def hms(h, m, s):
            return h * 3600 + m * 60 + s

        times = [
            hms(5, 3, 25), hms(5, 7, 25), hms(5, 11, 26), hms(5, 15, 26),
            hms(5, 19, 25), hms(5, 23, 25), hms(5, 27, 25),
        ]
        pairs = time_codec.boundary_pairs(times)
        ted_bits = len(pairs) * (12 + 17)
        siar_bits = siar.encoded_size_bits(times, 240)
        assert siar_bits < ted_bits
        assert len(pairs) == 6  # the paper counts six retained entries


@given(
    st.lists(st.integers(min_value=1, max_value=500), min_size=1, max_size=50),
    st.integers(min_value=0, max_value=50000),
)
def test_property_time_codec_round_trip(intervals, t0):
    times = [t0]
    for interval in intervals:
        times.append(times[-1] + interval)
    writer = BitWriter()
    time_codec.encode(writer, times, time_bits=20)
    reader = BitReader.from_writer(writer)
    assert time_codec.decode(reader, time_bits=20) == times


class TestMatrixStore:
    def test_row_round_trip(self):
        store = MatrixStore(symbol_width=3)
        key, row = store.add_sequence((1, 2, 1))
        assert store.sequence(key, row) == (1, 2, 1)

    def test_grouping_by_length(self):
        store = MatrixStore(symbol_width=3)
        store.add_sequence((1, 2))
        store.add_sequence((2, 1))
        store.add_sequence((1, 2, 3))
        assert set(store.groups) == {2, 3}
        assert len(store.groups[2].rows) == 2

    def test_row_length_mismatch_rejected(self):
        group = MatrixGroup(3)
        with pytest.raises(ValueError):
            group.add_row((1, 2))

    def test_base_widths_cover_column_maxima(self):
        group = MatrixGroup(3)
        for _ in range(50):
            group.add_row((1, 1, 7))
        bases = group.select_bases(symbol_width=3)
        assert bases[0] == (1, 1, 3)  # the always-fitting maxima vector

    def test_multiple_bases_split_mixed_rows(self):
        group = MatrixGroup(4)
        for _ in range(60):
            group.add_row((1, 1, 1, 1))  # narrow rows
        for _ in range(10):
            group.add_row((7, 7, 7, 7))  # wide rows
        bases = group.select_bases(symbol_width=3)
        assert len(bases) >= 2
        # a narrow base must exist so the cheap rows don't pay 3 bits each
        assert any(sum(base) == 4 for base in bases)

    def test_reduced_encoding_smaller_on_small_numbers(self):
        small = MatrixGroup(6)
        for _ in range(100):
            small.add_row((1, 1, 2, 1, 1, 2))
        plain_cost = 100 * 6 * 3
        assert small.serialized_size(symbol_width=3) < plain_cost

    def test_serialize_round_trip(self):
        store = MatrixStore(symbol_width=4)
        store.add_sequence((1, 2, 3))
        store.add_sequence((3, 2, 1))
        store.add_sequence((5, 5))
        writer = BitWriter()
        store.serialize(writer)
        restored = MatrixStore.deserialize(
            BitReader.from_writer(writer), symbol_width=4
        )
        assert restored.sequence(3, 0) == (1, 2, 3)
        assert restored.sequence(3, 1) == (3, 2, 1)
        assert restored.sequence(2, 0) == (5, 5)


@pytest.fixture(scope="module")
def cd_data():
    return load_dataset("CD", 20, seed=31, network_scale=12)


@pytest.fixture(scope="module")
def ted_archive(cd_data):
    network, trajectories = cd_data
    compressor = TEDCompressor(
        network=network, default_interval=CD.default_interval
    )
    return compressor.compress(trajectories)


class TestTedCompressor:
    def test_round_trip_paths_and_times(self, cd_data, ted_archive):
        network, trajectories = cd_data
        for original, compressed in zip(trajectories, ted_archive.trajectories):
            restored = decode_ted_trajectory(network, ted_archive, compressed)
            assert restored.times == list(original.times)
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path

    def test_distances_within_eta(self, cd_data, ted_archive):
        network, trajectories = cd_data
        for original, compressed in zip(trajectories, ted_archive.trajectories):
            restored = decode_ted_trajectory(network, ted_archive, compressed)
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                for a, b in zip(
                    orig_inst.relative_distances(network),
                    rest_inst.relative_distances(network),
                ):
                    assert abs(a - b) <= ted_archive.eta_distance + 1e-9

    def test_ted_flags_ratio_is_one(self, ted_archive):
        """Table 8: TED's T' ratio is exactly 1 (bitmap omitted)."""
        stats = ted_archive.stats
        assert stats.flags_ratio == pytest.approx(1.0)

    def test_ted_compresses_overall(self, ted_archive):
        assert ted_archive.stats.total_ratio > 1.5

    def test_bitmap_variant_round_trips(self, cd_data):
        network, trajectories = cd_data
        compressor = TEDCompressor(
            network=network, default_interval=10, use_bitmap=True
        )
        archive = compressor.compress(trajectories[:5])
        for original, compressed in zip(trajectories, archive.trajectories):
            restored = decode_ted_trajectory(network, archive, compressed)
            for orig_inst, rest_inst in zip(
                original.instances, restored.instances
            ):
                assert rest_inst.path == orig_inst.path

    def test_trajectory_lookup(self, ted_archive):
        wanted = ted_archive.trajectories[3].trajectory_id
        assert ted_archive.trajectory(wanted).trajectory_id == wanted
        with pytest.raises(KeyError):
            ted_archive.trajectory(10**9)


class TestHeadlineComparison:
    """The paper's headline: UTCQ beats TED by 2x+ on compression ratio."""

    def test_utcq_total_ratio_beats_ted(self, cd_data, ted_archive):
        network, trajectories = cd_data
        utcq = compress_dataset(network, trajectories, default_interval=10)
        assert utcq.stats.total_ratio > ted_archive.stats.total_ratio

    def test_utcq_time_ratio_beats_ted(self, cd_data, ted_archive):
        network, trajectories = cd_data
        utcq = compress_dataset(network, trajectories, default_interval=10)
        assert utcq.stats.time_ratio > ted_archive.stats.time_ratio

    def test_utcq_flags_ratio_beats_ted(self, cd_data, ted_archive):
        network, trajectories = cd_data
        utcq = compress_dataset(network, trajectories, default_interval=10)
        assert utcq.stats.flags_ratio > ted_archive.stats.flags_ratio
