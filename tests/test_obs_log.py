"""Structured JSON logging: sinks, levels, request ids, collisions."""

import io
import json

import pytest

from repro.obs import log as obs_log


@pytest.fixture()
def sink():
    """A captured in-memory sink; logging is disabled again on exit."""
    stream = io.StringIO()
    obs_log.configure(stream)
    try:
        yield stream
    finally:
        obs_log.configure(None)


def lines(stream: io.StringIO) -> list[dict]:
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line
    ]


def test_disabled_by_default_costs_nothing():
    # the fixture is deliberately absent: nothing is configured
    obs_log.configure(None)
    logger = obs_log.get_logger("repro.test")
    logger.info("event.never_lands", anything="goes")
    assert not obs_log.configured()


def test_one_json_object_per_line(sink):
    logger = obs_log.get_logger("repro.test")
    logger.info("shard.quarantined", path="/x.utcq", error="boom")
    logger.warning("breaker.opened", opens=2)
    first, second = lines(sink)
    assert first["event"] == "shard.quarantined"
    assert first["logger"] == "repro.test"
    assert first["level"] == "info"
    assert first["path"] == "/x.utcq"
    assert second["level"] == "warning"
    assert second["opens"] == 2
    assert isinstance(first["ts"], float)


def test_level_threshold_filters(sink):
    obs_log.configure(sink, level="warning")
    logger = obs_log.get_logger("repro.test")
    logger.info("event.dropped")
    logger.error("event.kept")
    (record,) = lines(sink)
    assert record["event"] == "event.kept"


def test_reserved_keys_survive_field_collisions(sink):
    # a field named "level" (compaction's old name for its LSM level)
    # must not clobber the record's severity
    logger = obs_log.get_logger("repro.test")
    logger.info("compaction.merge", level=3, event="bogus", logger_="x")
    (record,) = lines(sink)
    assert record["level"] == "info"
    assert record["event"] == "compaction.merge"


def test_request_id_rides_the_context(sink):
    logger = obs_log.get_logger("repro.test")
    logger.info("outside.any_request")
    token = obs_log.bind_request_id("req-424242")
    try:
        logger.info("inside.the_request")
    finally:
        obs_log.unbind_request_id(token)
    logger.info("outside.again")
    outside, inside, after = lines(sink)
    assert "request_id" not in outside
    assert inside["request_id"] == "req-424242"
    assert "request_id" not in after


def test_generated_request_ids_are_unique():
    first, second = obs_log.next_request_id(), obs_log.next_request_id()
    assert first != second
    assert first.startswith("req-")


def test_unserializable_fields_fall_back_to_repr(sink):
    logger = obs_log.get_logger("repro.test")
    logger.info("event.with_object", error=ValueError("boom"), path=[1, {2}])
    (record,) = lines(sink)
    assert "boom" in record["error"]
    assert record["path"][0] == 1  # lists recurse; the set was repr()-ed


def test_file_sink_appends(tmp_path):
    target = tmp_path / "events.jsonl"
    obs_log.configure(str(target))
    try:
        obs_log.get_logger("repro.test").info("event.one")
        obs_log.get_logger("repro.test").info("event.two")
    finally:
        obs_log.configure(None)
    events = [
        json.loads(line)["event"]
        for line in target.read_text().splitlines()
    ]
    assert events == ["event.one", "event.two"]


def test_configure_from_env(tmp_path, monkeypatch):
    target = tmp_path / "env.jsonl"
    monkeypatch.setenv("REPRO_LOG_JSON", str(target))
    monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
    try:
        assert obs_log.configure_from_env()
        obs_log.get_logger("repro.test").debug("event.from_env")
    finally:
        obs_log.configure(None)
    assert json.loads(target.read_text())["event"] == "event.from_env"
