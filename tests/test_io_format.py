"""On-disk format tests: bit-exact round trips and lazy loading."""

import pytest

from repro.core import UTCQCompressor, decode_trajectory
from repro.core.archive import CompressedArchive
from repro.io import (
    ArchiveFormatError,
    FileBackedArchive,
    read_archive,
    read_header,
    write_archive,
)
from repro.io.format import (
    decode_trajectory_record,
    encode_trajectory_record,
    read_uvarint,
    write_uvarint,
)
from repro.trajectories.datasets import CD, load_dataset


@pytest.fixture(scope="module")
def cd_data():
    return load_dataset("CD", 25, seed=21, network_scale=12)


@pytest.fixture(scope="module")
def cd_archive(cd_data):
    network, trajectories = cd_data
    compressor = UTCQCompressor(
        network=network, default_interval=CD.default_interval, pivot_count=1
    )
    return compressor.compress(trajectories)


@pytest.fixture()
def archive_path(cd_archive, tmp_path):
    path = tmp_path / "cd.utcq"
    write_archive(cd_archive, path, provenance={"profile": "CD", "k": "v"})
    return path


class TestVarints:
    @pytest.mark.parametrize(
        "value", [0, 1, 127, 128, 300, 2**21, 2**63, 2**64 - 1]
    )
    def test_round_trip(self, value):
        out = bytearray()
        write_uvarint(out, value)
        decoded, position = read_uvarint(bytes(out), 0)
        assert decoded == value
        assert position == len(out)

    def test_negative_rejected(self):
        with pytest.raises(ArchiveFormatError):
            write_uvarint(bytearray(), -1)

    def test_truncated_rejected(self):
        out = bytearray()
        write_uvarint(out, 300)
        with pytest.raises(ArchiveFormatError):
            read_uvarint(bytes(out[:-1]), 0)


class TestRecordRoundTrip:
    def test_every_trajectory_record(self, cd_archive):
        for trajectory in cd_archive.trajectories:
            record = encode_trajectory_record(trajectory)
            assert decode_trajectory_record(record) == trajectory


class TestArchiveRoundTrip:
    def test_bit_exact(self, cd_archive, archive_path):
        back = read_archive(archive_path)
        assert back.params == cd_archive.params
        # dataclass equality covers payload bytes, bit counts, offsets,
        # positions, probabilities, and stats — the full bit-exactness claim
        assert back.trajectories == cd_archive.trajectories
        assert back.stats.original == cd_archive.stats.original
        assert back.stats.compressed == cd_archive.stats.compressed

    def test_save_load_methods(self, cd_archive, tmp_path):
        path = tmp_path / "via_methods.utcq"
        size = cd_archive.save(path)
        assert size == path.stat().st_size
        assert CompressedArchive.load(path).trajectories == (
            cd_archive.trajectories
        )

    def test_header_counts_and_provenance(self, cd_archive, archive_path):
        with open(archive_path, "rb") as stream:
            header = read_header(stream)
        assert header.trajectory_count == cd_archive.trajectory_count
        assert header.instance_count == cd_archive.instance_count
        assert header.provenance == {"profile": "CD", "k": "v"}

    def test_decoded_data_survives(self, cd_data, cd_archive, archive_path):
        network, _ = cd_data
        back = read_archive(archive_path)
        for original, restored in zip(
            cd_archive.trajectories, back.trajectories
        ):
            a = decode_trajectory(network, original, cd_archive.params)
            b = decode_trajectory(network, restored, back.params)
            assert a.times == b.times
            assert [i.path for i in a.instances] == [
                i.path for i in b.instances
            ]


class TestCorruption:
    def test_bad_magic(self, archive_path, tmp_path):
        data = bytearray(archive_path.read_bytes())
        data[0] ^= 0xFF
        bad = tmp_path / "bad_magic.utcq"
        bad.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="magic"):
            read_archive(bad)

    def test_bad_version(self, archive_path, tmp_path):
        data = bytearray(archive_path.read_bytes())
        data[8] = 0xFF  # version low byte
        bad = tmp_path / "bad_version.utcq"
        bad.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="version"):
            read_archive(bad)

    def test_record_corruption_caught_by_crc(self, archive_path, tmp_path):
        data = bytearray(archive_path.read_bytes())
        data[-1] ^= 0xFF  # inside the last record
        bad = tmp_path / "bad_crc.utcq"
        bad.write_bytes(bytes(data))
        with pytest.raises(ArchiveFormatError, match="CRC"):
            read_archive(bad)

    def test_damaged_bytes_raise_the_corruption_subtype(
        self, archive_path, tmp_path
    ):
        """Damaged stored bytes (vs a malformed file) carry their own
        exception type, which the serving tier keys quarantine on."""
        from repro.io import CorruptArchiveError
        from repro.io.reader import FileBackedArchive

        data = bytearray(archive_path.read_bytes())
        data[-1] ^= 0xFF
        bad = tmp_path / "bad_crc_typed.utcq"
        bad.write_bytes(bytes(data))
        with pytest.raises(CorruptArchiveError):
            read_archive(bad)
        # the lazy per-record reader agrees
        with FileBackedArchive.open(bad) as archive:
            last_id = archive.trajectory_ids()[-1]
            with pytest.raises(CorruptArchiveError):
                archive.trajectory(last_id)

    def test_truncation(self, archive_path, tmp_path):
        data = archive_path.read_bytes()
        bad = tmp_path / "truncated.utcq"
        bad.write_bytes(data[: len(data) // 2])
        with pytest.raises(ArchiveFormatError):
            read_archive(bad)


class TestFileBackedArchive:
    def test_lazy_single_load_equals_full_decode(
        self, cd_archive, archive_path
    ):
        target = cd_archive.trajectories[7]
        with FileBackedArchive.open(archive_path) as lazy:
            loaded = lazy.trajectory(target.trajectory_id)
            assert loaded == target
            # only the touched trajectory is resident
            assert lazy.cached_trajectory_count() == 1

    def test_sequence_view(self, cd_archive, archive_path):
        with FileBackedArchive.open(archive_path) as lazy:
            assert len(lazy.trajectories) == cd_archive.trajectory_count
            assert list(lazy.trajectories) == cd_archive.trajectories
            assert lazy.trajectories[3] == cd_archive.trajectories[3]
            assert lazy.trajectories[1:3] == cd_archive.trajectories[1:3]

    def test_archive_surface(self, cd_archive, archive_path):
        with FileBackedArchive.open(archive_path) as lazy:
            assert lazy.trajectory_count == cd_archive.trajectory_count
            assert lazy.instance_count == cd_archive.instance_count
            assert lazy.compressed_bytes == cd_archive.compressed_bytes
            assert lazy.original_bytes == cd_archive.original_bytes
            assert lazy.params == cd_archive.params

    def test_lru_eviction(self, cd_archive, archive_path):
        with FileBackedArchive.open(archive_path, cache_size=4) as lazy:
            for trajectory_id in lazy.trajectory_ids():
                lazy.trajectory(trajectory_id)
            assert lazy.cached_trajectory_count() == 4

    def test_unknown_id(self, archive_path):
        with FileBackedArchive.open(archive_path) as lazy:
            with pytest.raises(KeyError):
                lazy.trajectory(10_000)
