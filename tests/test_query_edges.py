"""Edge-case tests for the query processor's partial-decompression paths."""

import pytest

from repro.bits.bitio import BitReader
from repro.core import siar
from repro.core.compressor import compress_dataset
from repro.query import StIUIndex, UTCQQueryProcessor
from repro.trajectories.datasets import load_dataset


@pytest.fixture(scope="module")
def world():
    network, trajectories = load_dataset("HZ", 20, seed=91, network_scale=12)
    archive = compress_dataset(
        network, trajectories, default_interval=20, eta_probability=1 / 2048
    )
    index = StIUIndex(
        network, archive, grid_cells_per_side=16, time_partition_seconds=600
    )
    processor = UTCQQueryProcessor(network, archive, index)
    return network, trajectories, archive, index, processor


class TestMidStreamTimeResume:
    def test_resumed_times_match_full_decode(self, world):
        """decode_from_offset via the temporal tuple equals the suffix of a
        full decode, for every tuple of every trajectory."""
        _, trajectories, archive, index, _ = world
        for compressed in archive.trajectories:
            reader = BitReader(
                compressed.time_payload, compressed.time_payload_bits
            )
            full = siar.decode(
                reader,
                archive.params.default_interval,
                t0_bits=archive.params.t0_bits,
            )
            for entry in index._trajectory_tuples[compressed.trajectory_id]:
                reader = BitReader(
                    compressed.time_payload, compressed.time_payload_bits
                )
                resumed = siar.decode_from_offset(
                    reader,
                    start_time=entry.start,
                    start_index=entry.number,
                    bit_position=entry.bit_position,
                    total_count=compressed.point_count,
                    default_interval=archive.params.default_interval,
                )
                assert resumed == full[entry.number :]

    def test_decode_times_around_brackets_query_time(self, world):
        _, trajectories, archive, _, processor = world
        for compressed in archive.trajectories[:10]:
            t = (compressed.start_time + compressed.end_time) // 2
            times = processor._decode_times_around(compressed, t)
            assert times is not None
            assert times[0] <= t <= times[-1]

    def test_decode_times_around_rejects_outside(self, world):
        _, _, archive, _, processor = world
        compressed = archive.trajectories[0]
        assert (
            processor._decode_times_around(
                compressed, compressed.end_time + 10**6
            )
            is None
        )


class TestInstanceCaching:
    def test_materialize_caches(self, world):
        _, _, archive, _, processor = world
        processor.counters.reset()
        processor.cache.clear()
        trajectory = archive.trajectories[0]
        a = processor._materialize(trajectory, 0)
        decoded_after_first = processor.counters.instances_decoded
        b = processor._materialize(trajectory, 0)
        assert a is b
        assert processor.counters.instances_decoded == decoded_after_first

    def test_reference_cache_shared_across_nonrefs(self, world):
        _, _, archive, _, processor = world
        target = None
        for trajectory in archive.trajectories:
            nonrefs = [
                i for i in trajectory.instances if not i.is_reference
            ]
            if len(nonrefs) >= 2:
                target = trajectory
                break
        if target is None:
            pytest.skip("no trajectory with two non-references")
        processor.cache.clear()
        indices = [
            i
            for i, inst in enumerate(target.instances)
            if not inst.is_reference
        ][:2]
        processor._materialize(target, indices[0])
        cache_size = len(processor.cache.references)
        processor._materialize(target, indices[1])
        # a shared reference must not be decoded twice
        same_ref = (
            target.instances[indices[0]].reference_ordinal
            == target.instances[indices[1]].reference_ordinal
        )
        if same_ref:
            assert len(processor.cache.references) == cache_size

    def test_shared_cache_across_processors(self, world):
        """Two processors over the same archive share decoded spans."""
        from repro.core.decoder import DecodeSpanCache
        from repro.query import UTCQQueryProcessor

        network, _, archive, index, _ = world
        cache = DecodeSpanCache()
        first = UTCQQueryProcessor(network, archive, index, cache=cache)
        second = UTCQQueryProcessor(network, archive, index, cache=cache)
        trajectory = archive.trajectories[0]
        a = first._materialize(trajectory, 0)
        b = second._materialize(trajectory, 0)
        assert a is b
        assert second.counters.instances_decoded == 0

    def test_legacy_cache_disables_span_sections(self, world):
        from repro.core.decoder import DecodeSpanCache
        from repro.query import UTCQQueryProcessor

        network, _, archive, index, _ = world
        processor = UTCQQueryProcessor(
            network, archive, index, cache=DecodeSpanCache.legacy()
        )
        trajectory = archive.trajectories[0]
        first = processor._full_times(trajectory)
        second = processor._full_times(trajectory)
        assert first == second
        assert first is not second  # times never memoized in legacy mode
        assert processor._materialize(trajectory, 0) is processor._materialize(
            trajectory, 0
        )


class TestCounters:
    def test_where_prunes_low_probability(self, world):
        _, trajectories, archive, _, processor = world
        trajectory = max(trajectories, key=lambda t: t.instance_count)
        if trajectory.instance_count < 3:
            pytest.skip("needs a multi-instance trajectory")
        processor.counters.reset()
        t = (trajectory.start_time + trajectory.end_time) // 2
        processor.where(trajectory.trajectory_id, t, alpha=0.99)
        assert processor.counters.instances_pruned >= 1

    def test_counters_reset(self, world):
        _, _, _, _, processor = world
        processor.counters.instances_decoded = 7
        processor.counters.reset()
        assert processor.counters.instances_decoded == 0


class TestSegmentRectIntersection:
    def test_crossing_segment(self):
        from repro.network.grid import Rect
        from repro.query.queries import _segment_intersects_rect

        rect = Rect(0, 0, 10, 10)
        assert _segment_intersects_rect(-5, 5, 15, 5, rect)

    def test_outside_segment(self):
        from repro.network.grid import Rect
        from repro.query.queries import _segment_intersects_rect

        rect = Rect(0, 0, 10, 10)
        assert not _segment_intersects_rect(20, 20, 30, 30, rect)

    def test_touching_corner(self):
        from repro.network.grid import Rect
        from repro.query.queries import _segment_intersects_rect

        rect = Rect(0, 0, 10, 10)
        assert _segment_intersects_rect(10, 10, 20, 20, rect)

    def test_contained_segment(self):
        from repro.network.grid import Rect
        from repro.query.queries import _segment_intersects_rect

        rect = Rect(0, 0, 10, 10)
        assert _segment_intersects_rect(2, 2, 8, 8, rect)
