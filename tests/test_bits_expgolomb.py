"""Tests for the improved Exp-Golomb codec, including the paper's examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import expgolomb
from repro.bits.bitio import BitReader, BitWriter, bits_to_string


def encode_to_string(value: int) -> str:
    writer = BitWriter()
    expgolomb.encode(writer, value)
    return bits_to_string(writer.to_bits())


class TestPaperExamples:
    """§4.4: (5:03:25, 0, 1, 0, -1, 0, 0) encodes as 17 + 12 bits."""

    def test_zero_is_single_bit(self):
        assert encode_to_string(0) == "0"

    def test_positive_one(self):
        assert encode_to_string(1) == "1000"

    def test_negative_one(self):
        assert encode_to_string(-1) == "1010"

    def test_siar_example_total_bits(self):
        deltas = [0, 1, 0, -1, 0, 0]
        writer = expgolomb.encode_sequence(deltas)
        assert len(writer) == 12

    def test_paper_compression_ratio_example(self):
        # CR of T(Tu^1) = 32*7 / (12 + 17) = 7.72 with a 17-bit t0.
        deltas = [0, 1, 0, -1, 0, 0]
        compressed_bits = 17 + len(expgolomb.encode_sequence(deltas))
        ratio = 32 * 7 / compressed_bits
        assert ratio == pytest.approx(7.72, abs=0.01)


class TestGroups:
    @pytest.mark.parametrize(
        "magnitude,group",
        [(0, 0), (1, 1), (2, 1), (3, 2), (6, 2), (7, 3), (14, 3), (15, 4)],
    )
    def test_group_boundaries(self, magnitude, group):
        assert expgolomb.group_of(magnitude) == group

    def test_group_rejects_negative(self):
        with pytest.raises(ValueError):
            expgolomb.group_of(-1)

    @pytest.mark.parametrize("value,length", [(0, 1), (1, 4), (-2, 4), (3, 6), (-6, 6), (7, 8)])
    def test_encoded_length(self, value, length):
        assert expgolomb.encoded_length(value) == length
        writer = BitWriter()
        expgolomb.encode(writer, value)
        assert len(writer) == length


class TestRoundTrip:
    @pytest.mark.parametrize("value", [0, 1, -1, 2, -2, 3, -3, 7, -7, 100, -100, 86399])
    def test_single_values(self, value):
        writer = BitWriter()
        expgolomb.encode(writer, value)
        reader = BitReader.from_writer(writer)
        assert expgolomb.decode(reader) == value

    def test_sequence_round_trip(self):
        values = [0, 5, -3, 0, 0, 120, -59, 1, 2, 0]
        writer = expgolomb.encode_sequence(values)
        reader = BitReader.from_writer(writer)
        assert expgolomb.decode_sequence(reader, len(values)) == values

    def test_decode_sequence_negative_count_rejected(self):
        with pytest.raises(ValueError):
            expgolomb.decode_sequence(BitReader(b"", 0), -1)

    def test_unsigned_helpers(self):
        writer = BitWriter()
        expgolomb.encode_unsigned(writer, 42)
        reader = BitReader.from_writer(writer)
        assert expgolomb.decode_unsigned(reader) == 42

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            expgolomb.encode_unsigned(BitWriter(), -1)

    def test_unsigned_decode_rejects_negative_code(self):
        writer = BitWriter()
        expgolomb.encode(writer, -5)
        reader = BitReader.from_writer(writer)
        with pytest.raises(ValueError):
            expgolomb.decode_unsigned(reader)


class TestCodeProperties:
    def test_small_deviations_are_cheaper(self):
        # the motivation for the scheme: frequent small deviations.
        assert expgolomb.encoded_length(0) < expgolomb.encoded_length(1)
        assert expgolomb.encoded_length(1) < expgolomb.encoded_length(3)
        assert expgolomb.encoded_length(3) < expgolomb.encoded_length(10)

    def test_sign_symmetry(self):
        for value in range(1, 50):
            assert expgolomb.encoded_length(value) == expgolomb.encoded_length(-value)

    def test_prefix_freedom_over_a_range(self):
        # no code is a prefix of another (codes are uniquely decodable)
        codes = {encode_to_string(v) for v in range(-40, 41)}
        assert len(codes) == 81
        for a in codes:
            for b in codes:
                if a != b:
                    assert not b.startswith(a) or len(a) == len(b)


@given(st.integers(min_value=-(10**6), max_value=10**6))
def test_property_round_trip(value):
    writer = BitWriter()
    expgolomb.encode(writer, value)
    reader = BitReader.from_writer(writer)
    assert expgolomb.decode(reader) == value
    assert reader.remaining == 0


@given(st.lists(st.integers(min_value=-(10**4), max_value=10**4), max_size=80))
def test_property_sequence_round_trip(values):
    writer = expgolomb.encode_sequence(values)
    reader = BitReader.from_writer(writer)
    assert expgolomb.decode_sequence(reader, len(values)) == values
    assert reader.remaining == 0
