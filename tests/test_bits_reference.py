"""Bulk bit I/O vs the original per-bit reference semantics.

The word-level :class:`BitWriter`/:class:`BitReader` must be stream-
equivalent to the seed implementation that appended and consumed one bit
at a time.  The reference classes below reproduce that implementation
verbatim (minus validation); the property tests drive both with the same
operation sequences and require identical bytes, bit counts, decoded
values, and cursor positions.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.bits import expgolomb
from repro.bits.bitio import BitReader, BitWriter


class ReferenceBitWriter:
    """The seed's bit-at-a-time writer (MSB first)."""

    def __init__(self):
        self._buffer = bytearray()
        self._bit_count = 0
        self._current = 0
        self._current_bits = 0

    def __len__(self):
        return self._bit_count

    def write_bit(self, bit):
        self._current = (self._current << 1) | bit
        self._current_bits += 1
        self._bit_count += 1
        if self._current_bits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._current_bits = 0

    def write_bits(self, bits):
        for bit in bits:
            self.write_bit(bit)

    def write_uint(self, value, width):
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    # the bulk entry point, realized bit-at-a-time (reference semantics)
    append_bits = write_uint

    def write_unary(self, value, terminator=0):
        one = 1 - terminator
        for _ in range(value):
            self.write_bit(one)
        self.write_bit(terminator)

    def write_run(self, bit, count):
        for _ in range(count):
            self.write_bit(bit)

    def getvalue(self):
        data = bytearray(self._buffer)
        if self._current_bits:
            data.append(self._current << (8 - self._current_bits))
        return bytes(data)


class ReferenceBitReader:
    """The seed's bit-at-a-time reader."""

    def __init__(self, data, bit_count):
        self._data = data
        self._bit_count = bit_count
        self.position = 0

    def read_bit(self):
        if self.position >= self._bit_count:
            raise EOFError
        byte = self._data[self.position >> 3]
        bit = (byte >> (7 - (self.position & 7))) & 1
        self.position += 1
        return bit

    def read_bits(self, count):
        return [self.read_bit() for _ in range(count)]

    def read_uint(self, width):
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, terminator=0):
        count = 0
        while self.read_bit() != terminator:
            count += 1
        return count


# a random mixed program of write operations
_op = st.one_of(
    st.tuples(st.just("bit"), st.integers(0, 1)),
    st.tuples(st.just("bits"), st.lists(st.integers(0, 1), max_size=40)),
    st.tuples(
        st.just("uint"),
        st.integers(0, 2**24).flatmap(
            lambda v: st.tuples(
                st.just(v), st.integers(max(v.bit_length(), 1), 28)
            )
        ),
    ),
    st.tuples(st.just("unary"), st.integers(0, 25)),
    st.tuples(
        st.just("run"), st.tuples(st.integers(0, 1), st.integers(0, 40))
    ),
    st.tuples(st.just("golomb"), st.integers(-(2**16), 2**16)),
)


def _apply(writer, program):
    for op, argument in program:
        if op == "bit":
            writer.write_bit(argument)
        elif op == "bits":
            writer.write_bits(argument)
        elif op == "uint":
            value, width = argument
            writer.write_uint(value, width)
        elif op == "unary":
            writer.write_unary(argument)
        elif op == "run":
            bit, count = argument
            writer.write_run(bit, count)
        else:
            expgolomb.encode(writer, argument)


@given(st.lists(_op, max_size=60))
def test_writer_streams_match_reference(program):
    fast = BitWriter()
    reference = ReferenceBitWriter()
    _apply(fast, program)
    _apply(reference, program)
    assert len(fast) == len(reference)
    assert fast.getvalue() == reference.getvalue()


@given(st.lists(_op, max_size=40), st.lists(_op, max_size=40))
def test_extend_matches_reference_concatenation(left, right):
    a, b = BitWriter(), BitWriter()
    _apply(a, left)
    _apply(b, right)
    a.extend(b)
    reference = ReferenceBitWriter()
    _apply(reference, left + right)
    assert len(a) == len(reference)
    assert a.getvalue() == reference.getvalue()


@given(st.binary(max_size=60), st.data())
def test_reader_matches_reference(data, draws):
    bit_count = len(data) * 8
    fast = BitReader(data, bit_count)
    reference = ReferenceBitReader(data, bit_count)
    for _ in range(draws.draw(st.integers(0, 30))):
        op = draws.draw(st.sampled_from(["bit", "bits", "uint", "unary"]))
        try:
            if op == "bit":
                expected = reference.read_bit()
                assert fast.read_bit() == expected
            elif op == "bits":
                count = draws.draw(st.integers(0, 20))
                expected = reference.read_bits(count)
                assert fast.read_bits(count) == expected
            elif op == "uint":
                width = draws.draw(st.integers(0, 20))
                expected = reference.read_uint(width)
                assert fast.read_uint(width) == expected
            else:
                expected = reference.read_unary()
                assert fast.read_unary() == expected
        except EOFError:
            # both implementations must run out at the same point
            reference.position = bit_count
            fast.seek(bit_count)
        assert fast.position == reference.position


@given(st.lists(st.integers(-(2**20), 2**20), max_size=50))
def test_expgolomb_round_trip_bulk(values):
    writer = BitWriter()
    for value in values:
        expgolomb.encode(writer, value)
    assert len(writer) == sum(expgolomb.encoded_length(v) for v in values)
    reader = BitReader.from_writer(writer)
    assert [expgolomb.decode(reader) for _ in values] == values
