"""The metrics registry: instruments, concurrency, export, collectors.

Everything runs against fresh :class:`MetricsRegistry` instances, not
the process-wide default, so these tests neither see nor disturb the
counters the instrumented subsystems record into during other tests.
"""

import gc
import json
import threading

import pytest

from repro.obs.metrics import (
    MetricsRegistry,
    parse_prometheus,
    render_prometheus,
    snapshot_delta,
)


# ----------------------------------------------------------------------
# instrument basics
# ----------------------------------------------------------------------
def test_counter_monotonic_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("repro_test_events_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    with pytest.raises(ValueError):
        counter.inc(-1)
    assert counter.value == 5


def test_gauge_goes_both_ways():
    registry = MetricsRegistry()
    gauge = registry.gauge("repro_test_in_flight")
    gauge.set(7)
    gauge.dec(2)
    gauge.inc()
    assert gauge.value == 6


def test_instruments_are_idempotent_per_name_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("repro_test_total", labels={"kind": "x"})
    b = registry.counter("repro_test_total", labels={"kind": "x"})
    c = registry.counter("repro_test_total", labels={"kind": "y"})
    assert a is b
    assert a is not c
    a.inc()
    assert b.value == 1
    assert c.value == 0


def test_kind_mismatch_is_an_error():
    registry = MetricsRegistry()
    registry.counter("repro_test_total")
    with pytest.raises(ValueError, match="already registered"):
        registry.gauge("repro_test_total")


# ----------------------------------------------------------------------
# concurrency: no lost increments, no lost observations
# ----------------------------------------------------------------------
def test_counter_hammer_loses_no_increments():
    registry = MetricsRegistry()
    threads, per_thread = 8, 10_000
    barrier = threading.Barrier(threads)

    def hammer():
        # re-resolving through the registry each time also hammers the
        # idempotent instrument table, not just the counter's own lock
        counter = registry.counter("repro_test_hammer_total")
        barrier.wait()
        for _ in range(per_thread):
            counter.inc()

    workers = [threading.Thread(target=hammer) for _ in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert registry.counter("repro_test_hammer_total").value == (
        threads * per_thread
    )


def test_histogram_hammer_loses_no_observations():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_latency_seconds")
    threads, per_thread = 8, 2_000
    barrier = threading.Barrier(threads)

    def hammer(which: int):
        barrier.wait()
        for i in range(per_thread):
            histogram.observe((which * per_thread + i) % 97 + 0.5)

    workers = [
        threading.Thread(target=hammer, args=(which,))
        for which in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()
    assert histogram.count == threads * per_thread
    assert histogram.sum == pytest.approx(
        sum((i % 97 + 0.5) for i in range(threads * per_thread))
    )


# ----------------------------------------------------------------------
# histogram quantiles
# ----------------------------------------------------------------------
def test_histogram_quantile_within_one_bucket():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_latency_seconds")
    for value in range(1, 1001):
        histogram.observe(float(value))
    # growth=2.0: the estimate is the bucket's upper bound, so it is
    # never below the true quantile and never more than 2x above it
    for fraction, true_value in ((0.5, 500.0), (0.99, 990.0)):
        estimate = histogram.quantile(fraction)
        assert true_value <= estimate <= 2.0 * true_value
    # the cap: never report past the observed maximum
    assert histogram.quantile(1.0) == 1000.0


def test_histogram_underflow_and_empty():
    registry = MetricsRegistry()
    histogram = registry.histogram("repro_test_latency_seconds")
    assert histogram.quantile(0.5) == 0.0
    histogram.observe(0.0)
    histogram.observe(-3.0)
    assert histogram.quantile(0.5) == 0.0
    assert histogram.count == 2


# ----------------------------------------------------------------------
# export: snapshot, Prometheus text, deltas
# ----------------------------------------------------------------------
def _build_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("repro_test_requests_total").inc(42)
    registry.counter(
        "repro_test_rejected_total", labels={"reason": "overloaded"}
    ).inc(3)
    registry.gauge("repro_test_in_flight").set(2)
    histogram = registry.histogram("repro_test_latency_seconds")
    for value in (0.001, 0.004, 0.5):
        histogram.observe(value)
    return registry


def test_snapshot_is_json_ready():
    snapshot = _build_registry().snapshot()
    assert snapshot["format"] == "repro-metrics"
    reparsed = json.loads(json.dumps(snapshot))
    metrics = reparsed["metrics"]
    assert metrics["repro_test_requests_total"]["value"] == 42
    assert (
        metrics['repro_test_rejected_total{reason="overloaded"}']["value"]
        == 3
    )
    assert metrics["repro_test_latency_seconds"]["count"] == 3


def test_prometheus_round_trip():
    registry = _build_registry()
    text = registry.to_prometheus()
    assert "# TYPE repro_test_requests_total counter" in text
    samples = parse_prometheus(text)
    assert samples["repro_test_requests_total"] == 42
    assert samples['repro_test_rejected_total{reason="overloaded"}'] == 3
    # histogram explodes into cumulative buckets + sum + count
    assert samples["repro_test_latency_seconds_count"] == 3
    assert samples["repro_test_latency_seconds_sum"] == pytest.approx(0.505)
    assert samples['repro_test_latency_seconds_bucket{le="+Inf"}'] == 3


def test_snapshot_delta_reports_only_the_window():
    registry = _build_registry()
    before = registry.snapshot()
    registry.counter("repro_test_requests_total").inc(8)
    registry.gauge("repro_test_in_flight").set(5)
    registry.histogram("repro_test_latency_seconds").observe(0.002)
    after = registry.snapshot()
    delta = snapshot_delta(after, before)["metrics"]
    assert delta["repro_test_requests_total"]["value"] == 8
    # unchanged counters drop out of the delta entirely
    assert 'repro_test_rejected_total{reason="overloaded"}' not in delta
    # gauges are point-in-time: current value, not a difference
    assert delta["repro_test_in_flight"]["value"] == 5
    assert delta["repro_test_latency_seconds"]["count"] == 1
    # the delta is itself a renderable snapshot
    assert "repro_test_requests_total 8" in render_prometheus(
        snapshot_delta(after, before)
    )


# ----------------------------------------------------------------------
# weak-ref collectors (the DecodeSpanCache pattern)
# ----------------------------------------------------------------------
class _FakeCache:
    def __init__(self, hits: int) -> None:
        self.hits = hits

    def collect_metrics(self):
        yield (
            "counter",
            "repro_test_collected_hits_total",
            {"section": "times"},
            {"value": self.hits},
        )


def test_collectors_sum_and_die_with_their_owner():
    registry = MetricsRegistry()
    first, second = _FakeCache(10), _FakeCache(5)
    registry.register_collector(first)
    registry.register_collector(second)
    key = 'repro_test_collected_hits_total{section="times"}'
    assert registry.snapshot()["metrics"][key]["value"] == 15
    del second
    gc.collect()
    assert registry.snapshot()["metrics"][key]["value"] == 10


def test_decode_cache_reports_consistent_stats():
    # the real collector: DecodeSpanCache exposes hits/misses/evictions
    # per section under one lock, and scrapes into any registry
    from repro.core.decoder import DecodeSpanCache

    cache = DecodeSpanCache(register=False)
    stats = cache.stats()
    for section in ("times", "references", "instances", "chainages"):
        entry = stats[section]
        assert set(entry) >= {"hits", "misses", "evictions", "resident"}
    registry = MetricsRegistry()
    registry.register_collector(cache)
    metrics = registry.snapshot()["metrics"]
    assert 'repro_decode_cache_hits_total{section="times"}' in metrics
