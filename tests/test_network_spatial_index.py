"""Tests for the edge spatial hash and point-to-segment projection."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.generators import grid_network
from repro.network.spatial_index import (
    EdgeSpatialIndex,
    project_point_to_segment,
)


class TestProjection:
    def test_projection_onto_interior(self):
        t, distance = project_point_to_segment(5, 3, 0, 0, 10, 0)
        assert t == pytest.approx(0.5)
        assert distance == pytest.approx(3.0)

    def test_projection_clamps_to_start(self):
        t, distance = project_point_to_segment(-5, 0, 0, 0, 10, 0)
        assert t == 0.0
        assert distance == pytest.approx(5.0)

    def test_projection_clamps_to_end(self):
        t, distance = project_point_to_segment(15, 0, 0, 0, 10, 0)
        assert t == 1.0
        assert distance == pytest.approx(5.0)

    def test_degenerate_segment(self):
        t, distance = project_point_to_segment(3, 4, 0, 0, 0, 0)
        assert t == 0.0
        assert distance == pytest.approx(5.0)

    @given(
        st.floats(-50, 50), st.floats(-50, 50),
        st.floats(-50, 50), st.floats(-50, 50),
        st.floats(-50, 50), st.floats(-50, 50),
    )
    def test_property_projection_within_segment(self, px, py, ax, ay, bx, by):
        t, distance = project_point_to_segment(px, py, ax, ay, bx, by)
        assert 0.0 <= t <= 1.0
        assert distance >= 0.0
        # distance to the projected point equals the reported distance
        qx, qy = ax + t * (bx - ax), ay + t * (by - ay)
        assert ((px - qx) ** 2 + (py - qy) ** 2) ** 0.5 == pytest.approx(
            distance, abs=1e-6
        )


@pytest.fixture(scope="module")
def index():
    return EdgeSpatialIndex(grid_network(6, 6, spacing=100.0))


class TestEdgeSpatialIndex:
    def test_edges_near_point_on_street(self, index):
        hits = index.edges_near(150.0, 5.0, radius=20.0)
        assert hits
        keys = {key for key, _, _ in hits}
        assert (1, 2) in keys or (2, 1) in keys

    def test_hits_sorted_by_distance(self, index):
        hits = index.edges_near(250.0, 130.0, radius=150.0)
        distances = [d for _, _, d in hits]
        assert distances == sorted(distances)

    def test_no_hits_when_radius_tiny_off_road(self, index):
        hits = index.edges_near(150.0, 50.0, radius=10.0)
        assert hits == []

    def test_nearest_edge_always_found(self, index):
        hit = index.nearest_edge(-400.0, -400.0)
        assert hit is not None
        key, t, distance = hit
        assert distance > 0

    def test_nearest_edge_on_road_is_exact(self, index):
        hit = index.nearest_edge(50.0, 0.0)
        assert hit is not None
        key, t, distance = hit
        assert distance == pytest.approx(0.0, abs=1e-9)
        assert key in {(0, 1), (1, 0)}
