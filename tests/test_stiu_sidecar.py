"""Persistence tests for the ``.stiu`` StIU index sidecar.

Covers the round trip (a sidecar-loaded index is structurally identical
to a fresh build and answers queries identically), staleness detection
(rewritten archive, truncated/corrupt sidecar, parameter mismatch, and
version bump all force a rebuild), and the write-at-compress-time
integrations (``save_archive_with_index``, stream ``compact``).
"""

import struct

import pytest

from repro.core.compressor import compress_dataset
from repro.pipeline.batch import save_archive_with_index
from repro.query import sidecar
from repro.query.stiu import StIUIndex
from repro.trajectories.datasets import load_dataset
from repro.workloads.harness import build_query_workload


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 25, seed=19, network_scale=12)
    archive = compress_dataset(network, trajectories, default_interval=10)
    path = tmp_path_factory.mktemp("sidecar") / "archive.utcq"
    archive.save(path)
    return network, trajectories, archive, path


def build_index(network, path, **kwargs):
    return StIUIndex.over_file(network, path, sidecar=None, **kwargs)


def assert_same_index(a: StIUIndex, b: StIUIndex) -> None:
    assert a.temporal == b.temporal
    assert a._trajectory_tuples == b._trajectory_tuples
    assert a.spatial.keys() == b.spatial.keys()
    for interval in a.spatial:
        assert a.spatial[interval].keys() == b.spatial[interval].keys()
        for region in a.spatial[interval]:
            left = a.spatial[interval][region]
            right = b.spatial[interval][region]
            assert left.keys() == right.keys()
            for trajectory_id in left:
                assert (
                    left[trajectory_id].references
                    == right[trajectory_id].references
                )
                assert (
                    left[trajectory_id].non_references
                    == right[trajectory_id].non_references
                )


class TestRoundTrip:
    def test_loaded_index_is_structurally_identical(self, world):
        network, _, _, path = world
        built = build_index(network, path)
        try:
            sidecar.save_index(built, path)
        finally:
            built.archive.close()
        loaded = StIUIndex.over_file(network, path)
        rebuilt = build_index(network, path)
        try:
            assert loaded.loaded_from_sidecar
            assert not rebuilt.loaded_from_sidecar
            assert_same_index(loaded, rebuilt)
        finally:
            loaded.archive.close()
            rebuilt.archive.close()

    def test_loaded_index_answers_queries_identically(self, world):
        from repro.query.queries import UTCQQueryProcessor

        network, trajectories, _, path = world
        workload = build_query_workload(
            network, trajectories, count=25, seed=3
        )
        loaded = StIUIndex.over_file(network, path)
        rebuilt = build_index(network, path)
        try:
            assert loaded.loaded_from_sidecar
            warm = UTCQQueryProcessor(network, loaded.archive, loaded)
            cold = UTCQQueryProcessor(network, rebuilt.archive, rebuilt)
            for trajectory_id, t, alpha in workload.where_queries:
                assert warm.where(trajectory_id, t, alpha) == cold.where(
                    trajectory_id, t, alpha
                )
            for trajectory_id, edge, rd, alpha in workload.when_queries:
                assert warm.when(
                    trajectory_id, edge, rd, alpha
                ) == cold.when(trajectory_id, edge, rd, alpha)
            for region, t, alpha in workload.range_queries:
                assert warm.range(region, t, alpha) == cold.range(
                    region, t, alpha
                )
        finally:
            loaded.archive.close()
            rebuilt.archive.close()

    def test_spatial_section_is_lazy(self, world):
        network, _, _, path = world
        loaded = StIUIndex.over_file(network, path)
        try:
            assert loaded.loaded_from_sidecar
            assert loaded._spatial_loader is not None
            _ = loaded.spatial
            assert loaded._spatial_loader is None
        finally:
            loaded.archive.close()


class TestStaleness:
    def test_missing_sidecar_falls_back_to_build(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "fresh.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path)
        try:
            assert not index.loaded_from_sidecar
        finally:
            index.archive.close()

    def test_write_sidecar_on_build(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "fresh.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        assert sidecar.sidecar_path_for(path).exists()
        warm = StIUIndex.over_file(network, path)
        try:
            assert warm.loaded_from_sidecar
        finally:
            warm.archive.close()

    def test_rewritten_archive_invalidates_sidecar(self, world, tmp_path):
        network, trajectories, archive, _ = world
        path = tmp_path / "mutating.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        # rewrite the archive with fewer trajectories: same path, new bytes
        smaller = compress_dataset(
            network, trajectories[:10], default_interval=10
        )
        smaller.save(path)
        stale = StIUIndex.over_file(network, path)
        try:
            assert not stale.loaded_from_sidecar
        finally:
            stale.archive.close()

    def test_same_size_rewrite_detected_by_sha(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "flipped.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        # flip one payload byte without changing the file size
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert sidecar.load_index(
            network,
            _DummyArchive(archive.trajectory_count),
            path,
        ) is None

    def test_parameter_mismatch_forces_rebuild(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "params.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        other_grid = StIUIndex.over_file(
            network, path, grid_cells_per_side=16
        )
        other_partition = StIUIndex.over_file(
            network, path, time_partition_seconds=900
        )
        try:
            assert not other_grid.loaded_from_sidecar
            assert not other_partition.loaded_from_sidecar
        finally:
            other_grid.archive.close()
            other_partition.archive.close()

    def test_version_bump_rejected(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "versioned.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        sidecar_path = sidecar.sidecar_path_for(path)
        data = bytearray(sidecar_path.read_bytes())
        struct.pack_into("<H", data, 8, sidecar.VERSION + 1)
        sidecar_path.write_bytes(bytes(data))
        with pytest.raises(sidecar.SidecarFormatError):
            sidecar.read_sidecar(sidecar_path)
        rebuilt = StIUIndex.over_file(network, path)
        try:
            assert not rebuilt.loaded_from_sidecar
        finally:
            rebuilt.archive.close()

    def test_corrupt_lazy_spatial_section_falls_back_to_rebuild(
        self, world, tmp_path
    ):
        """The spatial section is parsed lazily; if it turns out corrupt
        at first access, the index rebuilds it from the archive instead
        of silently serving an empty spatial map."""
        network, _, archive, _ = world
        path = tmp_path / "lazy.utcq"
        archive.save(path)
        loaded = StIUIndex.over_file(network, path, write_sidecar=True)
        loaded.archive.close()
        loaded = StIUIndex.over_file(network, path)
        try:
            assert loaded.loaded_from_sidecar
            loaded._spatial_loader = lambda: (_ for _ in ()).throw(
                sidecar.SidecarFormatError("corrupt spatial section")
            )
            rebuilt = build_index(network, path)
            try:
                assert_same_index(loaded, rebuilt)
            finally:
                rebuilt.archive.close()
        finally:
            loaded.archive.close()

    def test_truncated_sidecar_rejected(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "truncated.utcq"
        archive.save(path)
        index = StIUIndex.over_file(network, path, write_sidecar=True)
        index.archive.close()
        sidecar_path = sidecar.sidecar_path_for(path)
        data = sidecar_path.read_bytes()
        sidecar_path.write_bytes(data[: len(data) // 2])
        with pytest.raises(sidecar.SidecarFormatError):
            sidecar.read_sidecar(sidecar_path)
        rebuilt = StIUIndex.over_file(network, path)
        try:
            assert not rebuilt.loaded_from_sidecar
        finally:
            rebuilt.archive.close()


class _DummyArchive:
    def __init__(self, trajectory_count):
        self.trajectory_count = trajectory_count


class TestWriteIntegrations:
    def test_save_archive_with_index(self, world, tmp_path):
        network, _, archive, _ = world
        path = tmp_path / "pipeline.utcq"
        size, sidecar_path = save_archive_with_index(archive, path, network)
        assert size == path.stat().st_size
        assert sidecar_path.exists()
        warm = StIUIndex.over_file(network, path)
        try:
            assert warm.loaded_from_sidecar
        finally:
            warm.archive.close()

    def test_compact_writes_sidecar(self, tmp_path):
        from repro.stream import AppendableArchiveWriter, compact
        from repro.trajectories.datasets import load_dataset

        network, trajectories = load_dataset(
            "CD", 8, seed=29, network_scale=12
        )
        directory = tmp_path / "stream"
        with AppendableArchiveWriter(
            directory, network, default_interval=10,
            segment_max_trajectories=3,
        ) as writer:
            for trajectory in trajectories:
                writer.append(trajectory)
        output = tmp_path / "compacted.utcq"
        compact(directory, output, network=network)
        assert sidecar.sidecar_path_for(output).exists()
        warm = StIUIndex.over_file(network, output)
        try:
            assert warm.loaded_from_sidecar
        finally:
            warm.archive.close()
