"""Tests for SIAR time representation and its Exp-Golomb serialization."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitio import BitReader, BitWriter
from repro.core import siar


def paper_times() -> list[int]:
    """The running example: 5:03:25 ... 5:27:25 at a 240 s default."""

    def hms(h, m, s):
        return h * 3600 + m * 60 + s

    return [
        hms(5, 3, 25),
        hms(5, 7, 25),
        hms(5, 11, 26),
        hms(5, 15, 26),
        hms(5, 19, 25),
        hms(5, 23, 25),
        hms(5, 27, 25),
    ]


class TestRepresent:
    def test_paper_example_deviations(self):
        sequence = siar.represent(paper_times(), 240)
        assert sequence.t0 == 5 * 3600 + 3 * 60 + 25
        assert sequence.deviations == (0, 1, 0, -1, 0, 0)

    def test_restore_inverts_represent(self):
        times = paper_times()
        assert siar.restore(siar.represent(times, 240)) == times

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            siar.represent([], 10)

    def test_non_increasing_rejected(self):
        with pytest.raises(ValueError):
            siar.represent([10, 10], 5)

    def test_bad_interval_rejected(self):
        with pytest.raises(ValueError):
            siar.represent([1, 2], 0)

    def test_single_timestamp(self):
        sequence = siar.represent([500], 60)
        assert sequence.deviations == ()
        assert siar.restore(sequence) == [500]


class TestEncode:
    def test_paper_example_size(self):
        """§4.4: the deviations cost 12 bits and t0 costs 17."""
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        # 17 (t0) + EG(count=7) + 12 (deviations)
        overhead = len(writer) - 17 - 12
        assert overhead == siar.expgolomb.encoded_length(7)

    def test_encoded_size_bits_matches_encode(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        assert siar.encoded_size_bits(times, 240) == len(writer)

    def test_round_trip(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        reader = BitReader.from_writer(writer)
        assert siar.decode(reader, 240) == times

    def test_t0_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            siar.encode(writer, [2**17, 2**17 + 10], 10, t0_bits=17)

    def test_wider_t0_field(self):
        times = [2**17 + 5, 2**17 + 15]
        writer = BitWriter()
        siar.encode(writer, times, 10, t0_bits=20)
        reader = BitReader.from_writer(writer)
        assert siar.decode(reader, 10, t0_bits=20) == times


class TestPartialDecoding:
    def test_decode_prefix(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        reader = BitReader.from_writer(writer)
        assert siar.decode_prefix(reader, 240, stop_after=3) == times[:3]

    def test_decode_prefix_clamps(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        reader = BitReader.from_writer(writer)
        assert siar.decode_prefix(reader, 240, stop_after=99) == times

    def test_deviation_positions_allow_mid_stream_resume(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        positions = siar.deviation_bit_positions(times, 240)
        assert len(positions) == len(times) - 1
        reader = BitReader.from_writer(writer)
        # resume from timestamp index 3
        resumed = siar.decode_from_offset(
            reader,
            start_time=times[3],
            start_index=3,
            bit_position=positions[3],
            total_count=len(times),
            default_interval=240,
        )
        assert resumed == times[3:]

    def test_decode_from_offset_with_stop(self):
        times = paper_times()
        writer = BitWriter()
        siar.encode(writer, times, 240)
        positions = siar.deviation_bit_positions(times, 240)
        reader = BitReader.from_writer(writer)
        resumed = siar.decode_from_offset(
            reader,
            start_time=times[2],
            start_index=2,
            bit_position=positions[2],
            total_count=len(times),
            default_interval=240,
            stop_after=2,
        )
        assert resumed == times[2:5]


@given(
    st.integers(min_value=1, max_value=600),
    st.lists(st.integers(min_value=1, max_value=2000), min_size=1, max_size=60),
    st.integers(min_value=0, max_value=80000),
)
def test_property_round_trip(default_interval, intervals, t0):
    times = [t0]
    for interval in intervals:
        times.append(times[-1] + interval)
    writer = BitWriter()
    siar.encode(writer, times, default_interval, t0_bits=32)
    reader = BitReader.from_writer(writer)
    assert siar.decode(reader, default_interval, t0_bits=32) == times


@given(st.lists(st.integers(min_value=1, max_value=50), min_size=1, max_size=40))
def test_property_stable_intervals_cost_one_bit_each(intervals):
    # when every interval equals the default, each deviation is a single bit
    times = [100]
    for _ in intervals:
        times.append(times[-1] + 30)
    size = siar.encoded_size_bits(times, 30)
    header = 17 + siar.expgolomb.encoded_length(len(times))
    assert size == header + len(times) - 1
