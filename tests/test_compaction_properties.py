"""Property-based equivalence: compaction never changes what's stored.

The load-bearing invariant of the segment lifecycle is that background
merges only *regroup* record bytes — so however many size-tiered or
leveled merges ran, at whatever points of the ingest stream, the
archive answers queries identically and the canonical one-shot
``compact()`` output is byte-identical (SHA-256) to a run that never
compacted at all.  Hypothesis drives random trip streams, rotation
sizes, policy parameters, and merge schedules at that invariant.
"""

import hashlib
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network.generators import grid_network
from repro.network.grid import Rect
from repro.stream import (
    AppendableArchiveWriter,
    LiveArchive,
    LeveledPolicy,
    SizeTieredPolicy,
    compact,
    drain_compactions,
    load_manifest,
)
from repro.trajectories.model import (
    MappedLocation,
    TrajectoryInstance,
    UncertainTrajectory,
)

NETWORK = grid_network(4, 4, spacing=100.0)
EDGES = [(e.start, e.end) for e in NETWORK.edges()]


def _trip(trajectory_id: int, edge_index: int, t0: int, duration: int):
    key = EDGES[edge_index % len(EDGES)]
    other = EDGES[(edge_index + 7) % len(EDGES)]
    instances = [
        TrajectoryInstance(
            path=[key],
            locations=[MappedLocation(key, 0.0), MappedLocation(key, 1.0)],
            probability=0.6,
        ),
        TrajectoryInstance(
            path=[other],
            locations=[MappedLocation(other, 0.0), MappedLocation(other, 1.0)],
            probability=0.4,
        ),
    ]
    return UncertainTrajectory(trajectory_id, instances, [t0, t0 + duration])


def _writer(directory, segment_max):
    return AppendableArchiveWriter(
        directory,
        NETWORK,
        default_interval=10,
        segment_max_trajectories=segment_max,
    )


trip_specs = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=len(EDGES) - 1),  # edge
        st.integers(min_value=0, max_value=5_000),  # t0
        st.integers(min_value=10, max_value=300),  # duration
    ),
    min_size=2,
    max_size=10,
)

policies = st.one_of(
    st.builds(
        SizeTieredPolicy,
        min_merge=st.integers(2, 4),
        max_merge=st.integers(4, 6),
        size_ratio=st.sampled_from([1.5, 4.0, 16.0]),
    ),
    st.builds(
        LeveledPolicy,
        fanout=st.integers(2, 4),
        max_level=st.integers(1, 4),
    ),
)


def _answers(directory):
    """Query fingerprint of an archive directory via the live view."""
    rows = []
    with LiveArchive(directory) as live:
        processor = live.query_processor(NETWORK)
        for trajectory_id in sorted(live.trajectory_ids()):
            trajectory = live.trajectory(trajectory_id)
            t = (trajectory.start_time + trajectory.end_time) // 2
            rows.append(processor.where(trajectory_id, t, alpha=0.1))
            rows.append(
                processor.range(Rect(0.0, 0.0, 150.0, 150.0), t, alpha=0.05)
            )
        misses = live.sidecar_misses
    return rows, misses


def _compact_sha(directory, output) -> str:
    compact(directory, output)
    return hashlib.sha256(Path(output).read_bytes()).hexdigest()


@settings(max_examples=20, deadline=None)
@given(
    specs=trip_specs,
    segment_max=st.integers(1, 4),
    policy=policies,
    schedule=st.lists(st.booleans(), min_size=0, max_size=10),
)
def test_any_merge_schedule_is_equivalent_to_never_compacting(
    specs, segment_max, policy, schedule
):
    trips = [
        _trip(i, edge, t0, duration)
        for i, (edge, t0, duration) in enumerate(specs)
    ]
    with tempfile.TemporaryDirectory() as base:
        oracle_dir = Path(base) / "oracle"
        subject_dir = Path(base) / "subject"

        with _writer(oracle_dir, segment_max) as writer:
            for trip in trips:
                writer.append(trip)

        with _writer(subject_dir, segment_max) as writer:
            for i, trip in enumerate(trips):
                writer.append(trip)
                # interleave background merges at hypothesis-chosen points
                if i < len(schedule) and schedule[i]:
                    drain_compactions(writer, policy=policy)
            drain_compactions(writer, policy=policy)

        # the segments partition the id space, in order, whatever ran
        manifest = load_manifest(subject_dir)
        covered = [
            trajectory_id
            for entry in manifest["segments"]
            for trajectory_id in range(
                entry["min_trajectory_id"], entry["max_trajectory_id"] + 1
            )
        ]
        assert covered == list(range(len(trips)))
        # aggregate stats survive any schedule unchanged
        assert manifest["stats"] == load_manifest(oracle_dir)["stats"]

        # StIU answers match the never-compacted oracle, and the merged
        # view was assembled purely from sidecars (no index rebuild)
        subject_answers, subject_misses = _answers(subject_dir)
        oracle_answers, _ = _answers(oracle_dir)
        assert subject_answers == oracle_answers
        assert subject_misses == 0

        # the canonical compacted archive is byte-identical
        assert _compact_sha(
            subject_dir, Path(base) / "subject.utcq"
        ) == _compact_sha(oracle_dir, Path(base) / "oracle.utcq")


# ----------------------------------------------------------------------
# pure policy properties (no filesystem): plans are always well-formed
# ----------------------------------------------------------------------
segment_infos = st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=1 << 20),  # file_bytes
        st.integers(min_value=0, max_value=5),  # level
        st.integers(min_value=1, max_value=50),  # trajectories per segment
    ),
    min_size=0,
    max_size=16,
)


def _build_infos(raw):
    from repro.stream import SegmentInfo

    infos = []
    next_id = 0
    for index, (file_bytes, level, count) in enumerate(raw):
        infos.append(
            SegmentInfo(
                name=f"seg-{index:05d}.utcq",
                trajectory_count=count,
                instance_count=count,
                min_trajectory_id=next_id,
                max_trajectory_id=next_id + count - 1,
                min_time=0,
                max_time=100,
                file_bytes=file_bytes,
                level=level,
            )
        )
        next_id += count
    return infos


@settings(max_examples=100, deadline=None)
@given(raw=segment_infos, policy=policies)
def test_policy_plans_are_well_formed(raw, policy):
    infos = _build_infos(raw)
    task = policy.plan(infos)
    if task is None:
        return
    names = task.names
    known = {info.name for info in infos}
    assert len(set(names)) == len(names) >= 2
    assert set(names) <= known
    assert task.target_level > min(s.level for s in task.segments)
    if isinstance(policy, SizeTieredPolicy):
        assert len(names) <= policy.max_merge
    else:
        assert len(names) == policy.fanout
        assert task.target_level <= policy.max_level


@settings(max_examples=100, deadline=None)
@given(raw=segment_infos, fanout=st.integers(2, 4), max_level=st.integers(1, 4))
def test_leveled_policy_reaches_steady_state(raw, fanout, max_level):
    """Repeatedly applying a leveled plan terminates with every level
    below capacity — the bounded-segment-count guarantee."""
    from repro.stream import SegmentInfo

    policy = LeveledPolicy(fanout=fanout, max_level=max_level)
    infos = _build_infos(raw)
    for _ in range(200):
        task = policy.plan(infos)
        if task is None:
            break
        removed = set(task.names)
        merged = SegmentInfo(
            name=f"seg-{90_000 + len(infos):05d}.utcq",
            trajectory_count=sum(s.trajectory_count for s in task.segments),
            instance_count=sum(s.instance_count for s in task.segments),
            min_trajectory_id=min(
                s.min_trajectory_id for s in task.segments
            ),
            max_trajectory_id=max(
                s.max_trajectory_id for s in task.segments
            ),
            min_time=0,
            max_time=100,
            file_bytes=sum(s.file_bytes for s in task.segments),
            level=task.target_level,
        )
        infos = [s for s in infos if s.name not in removed] + [merged]
    else:
        raise AssertionError("leveled compaction never reached steady state")
    by_level: dict[int, int] = {}
    for info in infos:
        by_level[info.level] = by_level.get(info.level, 0) + 1
    for level, count in by_level.items():
        if level < max_level:
            assert count < fanout
