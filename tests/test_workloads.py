"""Tests for the experiment harness and reporting."""

import pytest

from repro.query import StIUIndex, UTCQQueryProcessor
from repro.ted import TedQueryIndex
from repro.trajectories.datasets import load_dataset, profile
from repro.workloads.harness import (
    build_query_workload,
    run_ted_compression,
    run_utcq_compression,
    time_ted_queries,
    time_utcq_queries,
)
from repro.workloads.reporting import (
    ExperimentLog,
    format_value,
    merge_rows,
    merge_tables,
    render_table,
)


@pytest.fixture(scope="module")
def cd():
    return load_dataset("CD", 15, seed=71, network_scale=12)


class TestHarnessRuns:
    def test_utcq_run_measures(self, cd):
        network, trajectories = cd
        run = run_utcq_compression(network, trajectories, profile("CD"))
        assert run.method == "UTCQ"
        assert run.seconds > 0
        assert run.peak_memory_bytes > 0
        assert run.stats.total_ratio > 1.0
        assert run.archive is not None

    def test_ted_run_measures(self, cd):
        network, trajectories = cd
        run = run_ted_compression(network, trajectories, profile("CD"))
        assert run.method == "TED"
        assert run.stats.total_ratio > 1.0
        assert run.ratio_row()["T'"] == pytest.approx(1.0)

    def test_eta_overrides(self, cd):
        network, trajectories = cd
        coarse = run_utcq_compression(
            network, trajectories, profile("CD"), eta_distance=1 / 8
        )
        fine = run_utcq_compression(
            network, trajectories, profile("CD"), eta_distance=1 / 128
        )
        assert coarse.stats.distance_ratio > fine.stats.distance_ratio


class TestQueryWorkload:
    def test_workload_shapes(self, cd):
        network, trajectories = cd
        workload = build_query_workload(network, trajectories, count=10)
        assert len(workload.where_queries) == 10
        assert len(workload.when_queries) == 10
        assert len(workload.range_queries) == 10
        for trajectory_id, t, alpha in workload.where_queries:
            trajectory = next(
                x for x in trajectories if x.trajectory_id == trajectory_id
            )
            assert trajectory.start_time <= t <= trajectory.end_time

    def test_workload_reproducible(self, cd):
        network, trajectories = cd
        a = build_query_workload(network, trajectories, count=5, seed=1)
        b = build_query_workload(network, trajectories, count=5, seed=1)
        assert a.where_queries == b.where_queries
        assert a.when_queries == b.when_queries

    def test_timings_run_both_engines(self, cd):
        network, trajectories = cd
        prof = profile("CD")
        utcq = run_utcq_compression(network, trajectories, prof)
        ted = run_ted_compression(network, trajectories, prof)
        workload = build_query_workload(network, trajectories, count=5)
        index = StIUIndex(network, utcq.archive, grid_cells_per_side=16)
        processor = UTCQQueryProcessor(network, utcq.archive, index)
        utcq_times = time_utcq_queries(processor, workload)
        ted_times = time_ted_queries(
            TedQueryIndex(network, ted.archive), workload
        )
        for timings in (utcq_times, ted_times):
            assert timings.where_ms >= 0
            assert timings.when_ms >= 0
            assert timings.range_ms >= 0


class TestReporting:
    def test_format_value(self):
        assert format_value(3.14159) == "3.142"
        assert format_value(31.4159) == "31.42"
        assert format_value(31415.9) == "31,416"
        assert format_value(float("inf")) == "inf"
        assert format_value("abc") == "abc"
        assert format_value(7) == "7"

    def test_render_table_alignment(self):
        table = render_table(
            "Title", ["a", "bb"], [[1, 2.5], [10, 0.25]]
        )
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_render_empty_table(self):
        table = render_table("T", ["x"], [])
        assert "x" in table

    def test_experiment_log(self):
        log = ExperimentLog()
        log.record("One", ["h"], [[1]])
        log.record("Two", ["h"], [[2]])
        dump = log.dump()
        assert "One" in dump and "Two" in dump
        log.clear()
        assert log.dump() == ""


class TestMachineReadableResults:
    def test_write_json_round_trips_tables(self, tmp_path):
        import json

        log = ExperimentLog()
        log.record("Throughput", ["dataset", "points/s"], [["CD", 1234.5]])
        log.record("Ratios", ["k", "v"], [["Total", float("inf")]])
        path = tmp_path / "BENCH_demo.json"
        log.write_json(path)
        document = json.loads(path.read_text())
        assert document["format"] == "repro-bench"
        assert document["version"] == 1
        tables = document["tables"]
        assert [t["title"] for t in tables] == ["Throughput", "Ratios"]
        assert tables[0]["headers"] == ["dataset", "points/s"]
        assert tables[0]["rows"] == [["CD", 1234.5]]
        # strict JSON: Infinity must be serialized as null
        assert tables[1]["rows"] == [["Total", None]]

    def test_merge_rows_replaces_same_label_benchmark(self):
        existing = [
            ["pr5", "batch", "q/s", 100, 1.0, 100.0],
            ["pr5", "sharded", "q/s", 100, 2.0, 50.0],
            ["pr7", "chaos", "req/s", 10, 1.0, 10.0],
        ]
        fresh = [
            ["pr5", "sharded", "q/s", 100, 1.0, 100.0],
            ["pr9", "sharded", "q/s", 100, 0.5, 200.0],
        ]
        merged = merge_rows(existing, fresh)
        # re-measured key replaced, untouched keys kept, new appended
        assert merged == [
            ["pr5", "batch", "q/s", 100, 1.0, 100.0],
            ["pr7", "chaos", "req/s", 10, 1.0, 10.0],
            ["pr5", "sharded", "q/s", 100, 1.0, 100.0],
            ["pr9", "sharded", "q/s", 100, 0.5, 200.0],
        ]

    def test_merge_rows_rerun_is_idempotent(self):
        rows = [["a", "b", 1], ["c", "d", 2]]
        once = merge_rows(rows, rows)
        assert merge_rows(once, rows) == once  # no accretion, ever

    def test_merge_tables_merges_trajectory_tables_row_wise(self):
        headers = ["label", "benchmark", "rate"]
        existing = [
            {"title": "t", "headers": headers, "rows": [["a", "x", 1]]},
            {"title": "other", "headers": ["k"], "rows": [["kept"]]},
        ]
        fresh = [
            {"title": "t", "headers": headers, "rows": [["a", "x", 9]]},
            {"title": "new", "headers": ["k"], "rows": [["added"]]},
        ]
        merged = merge_tables(existing, fresh)
        by_title = {table["title"]: table for table in merged}
        assert by_title["t"]["rows"] == [["a", "x", 9]]
        assert by_title["other"]["rows"] == [["kept"]]
        assert by_title["new"]["rows"] == [["added"]]

    def test_merge_tables_replaces_non_trajectory_shapes_whole(self):
        existing = [{"title": "t", "headers": ["k", "v"], "rows": [[1, 2]]}]
        fresh = [{"title": "t", "headers": ["k", "v"], "rows": [[3, 4]]}]
        assert merge_tables(existing, fresh) == fresh

    def test_write_bench_json_append_replaces_not_accretes(self, tmp_path):
        import json

        from repro.workloads.query_bench import BenchResult, write_bench_json

        path = tmp_path / "BENCH.json"
        write_bench_json(
            [BenchResult("sharded", "q/s", 100, 2.0)], path, label="pr9"
        )
        write_bench_json(
            [BenchResult("sharded", "q/s", 100, 1.0)],
            path,
            label="pr9",
            append=True,
        )
        write_bench_json(
            [BenchResult("batch", "q/s", 100, 1.0)],
            path,
            label="pr9",
            append=True,
        )
        rows = json.loads(path.read_text())["tables"][0]["rows"]
        keys = [tuple(row[:2]) for row in rows]
        assert keys == [("pr9", "sharded"), ("pr9", "batch")]
        assert rows[0][4] == 1.0  # the re-run's seconds, not the first's

    def test_structured_tables_still_render(self):
        log = ExperimentLog()
        rendered = log.record("T", ["h1", "h2"], [[1, 2]])
        assert "h1" in rendered and "h2" in rendered
        assert log.dump() == rendered
        assert log.tables[0].title == "T"
        log.clear()
        assert log.tables == []
