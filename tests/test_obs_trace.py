"""Span trees: nesting, serialization, and cross-process propagation.

The last test class is the one the tentpole hangs on: a traced request
through a *real* :class:`~repro.query.engine.ShardWorkerPool` must come
back with worker-side spans grafted into the parent's tree, each
stamped with the worker's pid and the parent-observed IPC overhead —
and tracing must not change the answers.
"""

import os
import time

import pytest

from repro.obs.trace import (
    Span,
    attach_child,
    current_span,
    ipc_breakdown,
    is_tracing,
    render_tree,
    start_trace,
    trace_span,
    worker_trace,
)


# ----------------------------------------------------------------------
# in-process span mechanics
# ----------------------------------------------------------------------
def test_spans_nest_in_stack_order():
    with start_trace("request", client="t") as root:
        with trace_span("plan"):
            pass
        with trace_span("shard") as shard:
            with trace_span("decode"):
                time.sleep(0.001)
            shard.set("path", "x.utcq")
    assert [child.name for child in root.children] == ["plan", "shard"]
    shard = root.children[1]
    assert shard.attrs["path"] == "x.utcq"
    assert shard.children[0].name == "decode"
    # timing flows upward: a parent's wall covers its children's
    assert root.wall >= shard.wall >= shard.children[0].wall > 0.0


def test_trace_span_is_noop_without_an_open_trace():
    assert not is_tracing()
    with trace_span("orphan") as span:
        span.set("ignored", 1)
        assert not is_tracing()
    assert current_span() is None
    # and attach_child drops the document rather than grafting blind
    assert attach_child({"name": "worker", "wall": 0.1}) is None


def test_to_dict_round_trips():
    with start_trace("request", queries=4) as root:
        with trace_span("plan"):
            pass
    clone = Span.from_dict(root.to_dict())
    assert clone.name == "request"
    assert clone.attrs == {"queries": 4}
    assert clone.wall == root.wall
    assert [child.name for child in clone.children] == ["plan"]


def test_attach_child_stamps_ipc_overhead():
    with worker_trace("worker") as inner:
        time.sleep(0.002)
    document = inner.to_dict()
    assert document["attrs"]["pid"] == os.getpid()
    with start_trace("request") as root:
        grafted = attach_child(document, roundtrip_seconds=inner.wall + 0.005)
        assert grafted is root.children[0]
    assert grafted.attrs["ipc_seconds"] == pytest.approx(0.005)
    # a roundtrip reported shorter than the worker's wall clamps to 0
    with start_trace("request"):
        clamped = attach_child(document, roundtrip_seconds=0.0)
    assert clamped.attrs["ipc_seconds"] == 0.0


def test_find_and_render():
    with start_trace("request") as root:
        with trace_span("shard", path="a"):
            with trace_span("decode"):
                pass
        with trace_span("shard", path="b"):
            pass
    assert root.find("decode") is not None
    assert root.find("missing") is None
    assert [span.attrs["path"] for span in root.find_all("shard")] == [
        "a", "b",
    ]
    text = render_tree(root)
    assert "request" in text and "├─ shard" in text and "└─ shard" in text


def test_ipc_breakdown_aggregates_worker_spans():
    root = Span("request")
    root.wall = 0.100
    plan = Span("plan")
    plan.wall = 0.005
    merge = Span("merge")
    merge.wall = 0.003
    for wall, ipc in ((0.020, 0.010), (0.030, 0.015)):
        call = Span("pool.call")
        worker = Span("worker", {"ipc_seconds": ipc})
        worker.wall = wall
        call.children.append(worker)
        root.children.append(call)
    root.children += [plan, merge]
    breakdown = ipc_breakdown(root)
    assert breakdown["worker_calls"] == 2
    assert breakdown["worker_seconds"] == pytest.approx(0.050)
    assert breakdown["ipc_seconds"] == pytest.approx(0.025)
    assert breakdown["plan_seconds"] == pytest.approx(0.005)
    assert breakdown["merge_seconds"] == pytest.approx(0.003)
    assert breakdown["ipc_share"] == pytest.approx(0.25)


# ----------------------------------------------------------------------
# cross-process propagation through a real worker pool
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def sharded_world(tmp_path_factory):
    from repro.core.archive import CompressedArchive
    from repro.core.compressor import compress_dataset
    from repro.query import StIUIndex, save_index
    from repro.trajectories.datasets import load_dataset

    network, trajectories = load_dataset("CD", 18, seed=31, network_scale=12)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("obs-trace")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(2):
        lo = shard * total // 2
        hi = (shard + 1) * total // 2
        part = CompressedArchive(
            params=archive.params,
            trajectories=archive.trajectories[lo:hi],
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    return network, trajectories, shard_paths


def _queries(network, trajectories, count=12):
    from repro.query import WhereQuery
    from repro.workloads.harness import build_query_workload

    workload = build_query_workload(
        network, trajectories, count=count, seed=3
    )
    return [WhereQuery(*args) for args in workload.where_queries]


def test_traced_sharded_run_grafts_worker_spans(sharded_world):
    from repro.query import ShardedQueryEngine

    network, trajectories, shard_paths = sharded_world
    queries = _queries(network, trajectories)
    with ShardedQueryEngine(
        shard_paths, network=network, workers=2
    ) as engine:
        baseline = engine.run(queries)
        with start_trace("request") as root:
            traced = engine.run(queries)
        # tracing is an observer: identical answers
        assert traced == baseline

        workers = [
            span
            for span in root.find_all("worker")
            if "ipc_seconds" in span.attrs
        ]
        shard_spans = [
            child
            for child in root.children
            if child.name.startswith("shard:")
        ]
        assert workers, "no worker spans came back across the pool"
        assert len(workers) == len(shard_spans)
        for span in workers:
            # genuinely another process, with its own decode stages
            assert span.attrs["pid"] != os.getpid()
            assert span.attrs["ipc_seconds"] >= 0.0
            assert span.attrs["roundtrip_seconds"] >= span.wall
            assert span.find("worker.run") is not None
        breakdown = ipc_breakdown(root)
        assert breakdown["worker_calls"] == len(workers)
        assert breakdown["total_seconds"] > 0.0

        # untraced runs pay no span plumbing and return the plain shape
        assert engine.run(queries) == baseline


def test_untraced_sharded_run_builds_no_tree(sharded_world):
    from repro.query import ShardedQueryEngine

    network, trajectories, shard_paths = sharded_world
    queries = _queries(network, trajectories, count=6)
    with ShardedQueryEngine(
        shard_paths, network=network, workers=2
    ) as engine:
        engine.run(queries)
    assert current_span() is None


def test_service_returns_trace_on_request(sharded_world):
    from repro.serve import QueryService

    network, trajectories, shard_paths = sharded_world
    queries = _queries(network, trajectories, count=8)
    service = QueryService(shard_paths, network=network, workers=2)
    try:
        plain = service.submit_many(queries, client="t")
        assert plain.ok and plain.trace is None
        traced = service.submit_many(queries, client="t", trace=True)
        assert traced.ok
        assert traced.results == plain.results
        root = Span.from_dict(traced.trace)
        assert root.name == "request"
        assert root.attrs["mode"] == "sharded"
        assert root.find("plan") is not None
        assert root.find("merge") is not None
        workers = [
            span
            for span in root.find_all("worker")
            if "ipc_seconds" in span.attrs
        ]
        assert workers
        assert all(span.attrs["pid"] != os.getpid() for span in workers)
    finally:
        service.close()
