"""Tests for the bit-level I/O substrate."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitio import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bits_to_string,
    string_to_bits,
    uint_width,
)


class TestBitWriter:
    def test_empty_writer_has_no_bits(self):
        writer = BitWriter()
        assert len(writer) == 0
        assert writer.getvalue() == b""

    def test_write_single_bits(self):
        writer = BitWriter()
        writer.write_bit(1)
        writer.write_bit(0)
        writer.write_bit(1)
        assert writer.to_bits() == [1, 0, 1]
        assert len(writer) == 3

    def test_rejects_non_bit_values(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_bit(2)
        with pytest.raises(ValueError):
            writer.write_bit(-1)

    def test_write_bits_iterable(self):
        writer = BitWriter()
        writer.write_bits([1, 1, 0, 0, 1])
        assert writer.to_bits() == [1, 1, 0, 0, 1]

    def test_byte_packing_msb_first(self):
        writer = BitWriter()
        writer.write_bits([1, 0, 1, 0, 1, 0, 1, 0])
        assert writer.getvalue() == bytes([0b10101010])

    def test_partial_byte_zero_padded(self):
        writer = BitWriter()
        writer.write_bits([1, 1, 1])
        assert writer.getvalue() == bytes([0b11100000])
        assert len(writer) == 3

    def test_write_uint_exact_width(self):
        writer = BitWriter()
        writer.write_uint(5, 3)
        assert writer.to_bits() == [1, 0, 1]

    def test_write_uint_leading_zeros(self):
        writer = BitWriter()
        writer.write_uint(1, 5)
        assert writer.to_bits() == [0, 0, 0, 0, 1]

    def test_write_uint_overflow_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(8, 3)

    def test_write_uint_zero_width_zero_value(self):
        writer = BitWriter()
        writer.write_uint(0, 0)
        assert len(writer) == 0

    def test_write_uint_negative_rejected(self):
        writer = BitWriter()
        with pytest.raises(ValueError):
            writer.write_uint(-1, 4)

    def test_write_unary(self):
        writer = BitWriter()
        writer.write_unary(3)
        assert writer.to_bits() == [1, 1, 1, 0]

    def test_write_unary_zero(self):
        writer = BitWriter()
        writer.write_unary(0)
        assert writer.to_bits() == [0]

    def test_extend_concatenates(self):
        a, b = BitWriter(), BitWriter()
        a.write_bits([1, 0])
        b.write_bits([0, 1, 1])
        a.extend(b)
        assert a.to_bits() == [1, 0, 0, 1, 1]


class TestBitReader:
    def test_round_trip_bits(self):
        writer = BitWriter()
        pattern = [1, 0, 0, 1, 1, 1, 0, 1, 0, 1, 1]
        writer.write_bits(pattern)
        reader = BitReader.from_writer(writer)
        assert reader.read_bits(len(pattern)) == pattern

    def test_read_past_end_raises(self):
        reader = BitReader(b"", 0)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_bit_count_limits_reads(self):
        writer = BitWriter()
        writer.write_bits([1, 1, 1])
        reader = BitReader.from_writer(writer)
        reader.read_bits(3)
        with pytest.raises(EOFError):
            reader.read_bit()

    def test_seek_and_position(self):
        writer = BitWriter()
        writer.write_bits([0, 1, 0, 1])
        reader = BitReader.from_writer(writer)
        reader.seek(2)
        assert reader.position == 2
        assert reader.read_bit() == 0
        assert reader.read_bit() == 1

    def test_seek_out_of_range(self):
        reader = BitReader(b"\x00", 8)
        with pytest.raises(ValueError):
            reader.seek(9)
        with pytest.raises(ValueError):
            reader.seek(-1)

    def test_read_uint(self):
        writer = BitWriter()
        writer.write_uint(37, 7)
        reader = BitReader.from_writer(writer)
        assert reader.read_uint(7) == 37

    def test_read_unary(self):
        writer = BitWriter()
        writer.write_unary(5)
        reader = BitReader.from_writer(writer)
        assert reader.read_unary() == 5

    def test_remaining(self):
        writer = BitWriter()
        writer.write_bits([1] * 10)
        reader = BitReader.from_writer(writer)
        reader.read_bits(4)
        assert reader.remaining == 6

    def test_bit_count_exceeding_data_rejected(self):
        with pytest.raises(ValueError):
            BitReader(b"\x00", 9)


class TestHelpers:
    def test_bits_to_string(self):
        assert bits_to_string([1, 0, 1]) == "101"

    def test_string_to_bits(self):
        assert string_to_bits("0110") == [0, 1, 1, 0]

    def test_string_to_bits_rejects_garbage(self):
        with pytest.raises(ValueError):
            string_to_bits("01x1")

    def test_bits_to_bytes(self):
        assert bits_to_bytes([1, 0, 0, 0, 0, 0, 0, 1]) == bytes([0x81])

    @pytest.mark.parametrize(
        "max_value,width",
        [(0, 0), (1, 1), (2, 2), (3, 2), (4, 3), (7, 3), (8, 4), (255, 8)],
    )
    def test_uint_width(self, max_value, width):
        assert uint_width(max_value) == width

    def test_uint_width_negative_rejected(self):
        with pytest.raises(ValueError):
            uint_width(-1)


@given(st.lists(st.integers(min_value=0, max_value=1), max_size=300))
def test_property_bit_round_trip(bits):
    writer = BitWriter()
    writer.write_bits(bits)
    reader = BitReader.from_writer(writer)
    assert reader.read_bits(len(bits)) == bits


@given(st.lists(st.tuples(st.integers(0, 2**20), st.integers(0, 24))))
def test_property_uint_round_trip(pairs):
    writer = BitWriter()
    valid = [(v, w) for v, w in pairs if v < (1 << w) or (w == 0 and v == 0)]
    for value, width in valid:
        writer.write_uint(value, width)
    reader = BitReader.from_writer(writer)
    for value, width in valid:
        assert reader.read_uint(width) == value


@given(st.integers(0, 2**30))
def test_property_uint_width_is_sufficient_and_tight(value):
    width = uint_width(value)
    assert value < (1 << width) or (value == 0 and width == 0)
    if width > 0:
        assert value >= (1 << (width - 1))
