"""Parallel batch compression: determinism, sharding, reporting."""

import pytest

from repro.core import UTCQCompressor, compress_dataset
from repro.io.format import encode_trajectory_record, write_archive
from repro.pipeline import compress_parallel, make_shards
from repro.trajectories.datasets import CD, load_dataset


@pytest.fixture(scope="module")
def cd_data():
    return load_dataset("CD", 30, seed=21, network_scale=12)


@pytest.fixture(scope="module")
def serial_archive(cd_data):
    network, trajectories = cd_data
    return compress_dataset(
        network, trajectories, default_interval=CD.default_interval
    )


class TestSharding:
    def test_shards_cover_input_in_order(self, cd_data):
        _, trajectories = cd_data
        shards = make_shards(trajectories, 7)
        flattened = [t for shard in shards for t in shard]
        assert flattened == trajectories
        assert all(len(shard) <= 7 for shard in shards)

    def test_bad_shard_size(self, cd_data):
        _, trajectories = cd_data
        with pytest.raises(ValueError):
            make_shards(trajectories, 0)


class TestDeterminism:
    @pytest.mark.parametrize("workers", [1, 2, 3])
    def test_parallel_matches_serial_byte_for_byte(
        self, cd_data, serial_archive, tmp_path, workers
    ):
        network, trajectories = cd_data
        parallel, report = compress_parallel(
            network,
            trajectories,
            default_interval=CD.default_interval,
            workers=workers,
            shard_size=4,
        )
        assert report.workers == workers
        serial_path = tmp_path / "serial.utcq"
        parallel_path = tmp_path / "parallel.utcq"
        write_archive(serial_archive, serial_path)
        write_archive(parallel, parallel_path)
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_order_independent_rng(self, cd_data):
        """Compressing a reversed dataset yields identical per-trajectory
        payloads — the property parallel sharding relies on."""
        network, trajectories = cd_data
        compressor = UTCQCompressor(
            network=network, default_interval=CD.default_interval
        )
        forward = compressor.compress(trajectories)
        backward = compressor.compress(list(reversed(trajectories)))
        by_id = {t.trajectory_id: t for t in backward.trajectories}
        for trajectory in forward.trajectories:
            assert encode_trajectory_record(
                trajectory
            ) == encode_trajectory_record(by_id[trajectory.trajectory_id])


class TestReporting:
    def test_progress_and_report(self, cd_data):
        network, trajectories = cd_data
        seen = []
        archive, report = compress_parallel(
            network,
            trajectories,
            default_interval=CD.default_interval,
            workers=2,
            shard_size=8,
            progress=lambda done, total: seen.append((done, total)),
        )
        assert seen[-1] == (len(trajectories), len(trajectories))
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)
        assert report.trajectory_count == len(trajectories)
        assert report.instance_count == archive.instance_count
        assert report.shard_count == len(make_shards(trajectories, 8))
        assert report.stats.compressed.total == archive.stats.compressed.total
        assert report.elapsed_seconds >= 0
        assert report.trajectories_per_second > 0

    def test_serial_fallback_reports_single_worker(self, cd_data):
        network, trajectories = cd_data
        _, report = compress_parallel(
            network,
            trajectories[:3],
            default_interval=CD.default_interval,
            workers=1,
        )
        assert report.workers == 1
        assert report.shard_count == 1

    def test_compressor_options_forwarded(self, cd_data, tmp_path):
        network, trajectories = cd_data
        parallel, _ = compress_parallel(
            network,
            trajectories,
            default_interval=CD.default_interval,
            workers=2,
            seed=99,
            pivot_count=2,
        )
        serial = compress_dataset(
            network,
            trajectories,
            default_interval=CD.default_interval,
            seed=99,
            pivot_count=2,
        )
        a = tmp_path / "a.utcq"
        b = tmp_path / "b.utcq"
        write_archive(parallel, a)
        write_archive(serial, b)
        assert a.read_bytes() == b.read_bytes()
