"""Tests for flag/original arrays against naive full decompression."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.factors import factorize_flags
from repro.query.flagarrays import FlagArray, OriginalArray, reference_gamma


def naive_prefix_ones(bits, g):
    return sum(bits[:g])


def naive_ones_until(bits, g):
    return sum(bits[: g + 1])


class TestFlagArray:
    def test_ones_before_matches_naive(self):
        bits = [1, 0, 1, 1, 0, 0, 1]
        array = FlagArray.from_bits(bits)
        for g in range(len(bits) + 1):
            assert array.ones_before(g) == naive_prefix_ones(bits, g)

    def test_ones_in_range(self):
        array = FlagArray.from_bits([1, 0, 1, 1])
        assert array.ones_in(1, 4) == 2
        assert array.ones_in(0, 0) == 0

    def test_out_of_range(self):
        array = FlagArray.from_bits([1, 0])
        with pytest.raises(IndexError):
            array.ones_before(3)

    def test_original_ones_until(self):
        # trimmed [0, 1, 0] -> original [1, 0, 1, 0, 1]
        array = FlagArray.from_bits([0, 1, 0])
        original = [1, 0, 1, 0, 1]
        for g in range(5):
            assert array.original_ones_until(g, 5) == naive_ones_until(
                original, g
            )

    def test_reference_gamma_helper(self):
        array = FlagArray.from_bits([1, 1])
        assert reference_gamma(array, 4) == [1, 2, 3, 4]


def build_original_array(target_trimmed, ref_trimmed):
    """Build an OriginalArray exactly as the decoder would."""
    reference = FlagArray.from_bits(ref_trimmed)
    factors = factorize_flags(target_trimmed, ref_trimmed)
    if factors is None:
        return OriginalArray(
            reference, None, target_trimmed, len(target_trimmed) + 2
        )
    return OriginalArray(reference, factors, None, len(target_trimmed) + 2)


class TestOriginalArray:
    def test_exact_copy_of_reference(self):
        ref = [0, 1, 1, 0, 1]
        array = build_original_array(ref, ref)
        original = [1, *ref, 1]
        for g in range(len(original)):
            assert array.ones_until(g) == naive_ones_until(original, g)

    def test_single_mismatch(self):
        ref = [0, 1, 1, 0, 1]
        target = [0, 1, 0, 0, 1]
        array = build_original_array(target, ref)
        original = [1, *target, 1]
        for g in range(len(original)):
            assert array.ones_until(g) == naive_ones_until(original, g)

    def test_raw_fallback(self):
        ref = [0, 1]
        target = [0, 1, 1]  # degenerate: factorization returns None
        array = build_original_array(target, ref)
        original = [1, *target, 1]
        for g in range(len(original)):
            assert array.ones_until(g) == naive_ones_until(original, g)

    def test_requires_exactly_one_form(self):
        reference = FlagArray.from_bits([1, 0])
        with pytest.raises(ValueError):
            OriginalArray(reference, None, None, 4)
        with pytest.raises(ValueError):
            OriginalArray(reference, [], [1, 0], 4)

    def test_position_bounds(self):
        array = build_original_array([1, 0], [1, 0])
        with pytest.raises(IndexError):
            array.ones_until(4)

    def test_location_index_of_entry(self):
        ref = [0, 1, 0]
        target = [0, 1, 0]
        array = build_original_array(target, ref)
        # original = [1, 0, 1, 0, 1]: entries 0, 2, 4 carry locations 0, 1, 2
        assert array.location_index_of_entry(0) == 0
        assert array.location_index_of_entry(1) is None
        assert array.location_index_of_entry(2) == 1
        assert array.location_index_of_entry(3) is None
        assert array.location_index_of_entry(4) == 2


@given(
    st.lists(st.integers(0, 1), min_size=0, max_size=40),
    st.lists(st.integers(0, 1), min_size=0, max_size=40),
)
def test_property_partial_counts_equal_naive(target, ref):
    array = build_original_array(target, ref)
    original = [1, *target, 1]
    for g in range(len(original)):
        assert array.ones_until(g) == naive_ones_until(original, g)


@given(st.lists(st.integers(0, 1), min_size=0, max_size=60))
def test_property_reference_gamma_matches_naive(trimmed):
    array = FlagArray.from_bits(trimmed)
    original = [1, *trimmed, 1]
    for g in range(len(original)):
        assert array.original_ones_until(g, len(original)) == naive_ones_until(
            original, g
        )
