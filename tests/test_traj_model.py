"""Tests for the trajectory data model (Definitions 2-5)."""

import pytest

from repro.network.generators import grid_network
from repro.trajectories.model import (
    MappedLocation,
    RawPoint,
    RawTrajectory,
    TrajectoryInstance,
    UncertainTrajectory,
)


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0)


def make_instance(path, locations, probability=1.0):
    return TrajectoryInstance(
        path=path, locations=locations, probability=probability
    )


@pytest.fixture
def simple_instance(network):
    # path 0 -> 1 -> 2 -> 6 with points on first, second, and last edges
    path = [(0, 1), (1, 2), (2, 6)]
    locations = [
        MappedLocation((0, 1), 25.0),
        MappedLocation((1, 2), 50.0),
        MappedLocation((2, 6), 75.0),
    ]
    return make_instance(path, locations)


class TestRawTrajectory:
    def test_times_must_increase(self):
        with pytest.raises(ValueError):
            RawTrajectory((RawPoint(0, 0, 10), RawPoint(1, 1, 10)))

    def test_iteration_and_length(self):
        raw = RawTrajectory((RawPoint(0, 0, 0), RawPoint(1, 0, 5)))
        assert len(raw) == 2
        assert raw.times == (0, 5)
        assert [p.x for p in raw] == [0, 1]


class TestMappedLocation:
    def test_relative_distance(self, network):
        location = MappedLocation((0, 1), 25.0)
        assert location.relative_distance(network) == pytest.approx(0.25)

    def test_relative_distance_at_edge_end_stays_below_one(self, network):
        location = MappedLocation((0, 1), 100.0)
        assert location.relative_distance(network) < 1.0

    def test_relative_distance_out_of_range(self, network):
        location = MappedLocation((0, 1), 150.0)
        with pytest.raises(ValueError):
            location.relative_distance(network)

    def test_position_interpolates(self, network):
        location = MappedLocation((0, 1), 50.0)
        x, y = location.position(network)
        assert (x, y) == pytest.approx((50.0, 0.0))


class TestTrajectoryInstance:
    def test_valid_instance(self, simple_instance):
        assert simple_instance.start_vertex == 0
        assert simple_instance.point_count == 3
        assert simple_instance.points_per_edge() == [1, 1, 1]

    def test_multiple_points_per_edge(self, network):
        path = [(0, 1), (1, 2)]
        locations = [
            MappedLocation((0, 1), 10.0),
            MappedLocation((0, 1), 60.0),
            MappedLocation((1, 2), 90.0),
        ]
        instance = make_instance(path, locations)
        assert instance.points_per_edge() == [2, 1]
        assert instance.location_edge_indices == [0, 0, 1]

    def test_edge_without_point_in_middle(self, network):
        path = [(0, 1), (1, 2), (2, 6)]
        locations = [MappedLocation((0, 1), 10.0), MappedLocation((2, 6), 5.0)]
        instance = make_instance(path, locations)
        assert instance.points_per_edge() == [1, 0, 1]

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            make_instance([], [MappedLocation((0, 1), 0.0)])

    def test_empty_locations_rejected(self):
        with pytest.raises(ValueError):
            make_instance([(0, 1)], [])

    def test_probability_bounds(self, network):
        path = [(0, 1)]
        locations = [MappedLocation((0, 1), 1.0), MappedLocation((0, 1), 2.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations, probability=0.0)
        with pytest.raises(ValueError):
            make_instance(path, locations, probability=1.5)

    def test_disconnected_path_rejected(self):
        path = [(0, 1), (2, 6)]
        locations = [MappedLocation((0, 1), 0.0), MappedLocation((2, 6), 0.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_first_edge_must_have_point(self):
        path = [(0, 1), (1, 2)]
        locations = [MappedLocation((1, 2), 1.0), MappedLocation((1, 2), 2.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_last_edge_must_have_point(self):
        path = [(0, 1), (1, 2)]
        locations = [MappedLocation((0, 1), 1.0), MappedLocation((0, 1), 2.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_location_not_on_path_rejected(self):
        path = [(0, 1), (1, 2)]
        locations = [MappedLocation((0, 1), 1.0), MappedLocation((4, 5), 2.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_locations_must_advance_monotonically(self):
        path = [(0, 1), (1, 2)]
        # second location back on the first edge after one on the second
        locations = [
            MappedLocation((0, 1), 1.0),
            MappedLocation((1, 2), 2.0),
            MappedLocation((0, 1), 3.0),
        ]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_ndist_order_within_edge_enforced(self):
        path = [(0, 1)]
        locations = [MappedLocation((0, 1), 5.0), MappedLocation((0, 1), 2.0)]
        with pytest.raises(ValueError):
            make_instance(path, locations)

    def test_relative_distances(self, network, simple_instance):
        rds = simple_instance.relative_distances(network)
        assert rds == pytest.approx([0.25, 0.5, 0.75])

    def test_signature_distinguishes_paths(self, network, simple_instance):
        other = make_instance(
            [(0, 1), (1, 5), (5, 6)],
            [
                MappedLocation((0, 1), 25.0),
                MappedLocation((1, 5), 50.0),
                MappedLocation((5, 6), 75.0),
            ],
        )
        assert other.signature() != simple_instance.signature()

    def test_revisiting_an_edge_is_allowed(self, network):
        # 0 -> 1 -> 0 -> 1: legal u-turny path
        path = [(0, 1), (1, 0), (0, 1)]
        locations = [MappedLocation((0, 1), 10.0), MappedLocation((0, 1), 20.0)]
        instance = TrajectoryInstance(
            path=path,
            locations=locations,
            probability=1.0,
            location_edge_indices=[0, 2],
        )
        assert instance.points_per_edge() == [1, 0, 1]


class TestUncertainTrajectory:
    def _two_instances(self):
        path_a = [(0, 1), (1, 2)]
        locs_a = [MappedLocation((0, 1), 10.0), MappedLocation((1, 2), 10.0)]
        path_b = [(0, 1), (1, 5)]
        locs_b = [MappedLocation((0, 1), 10.0), MappedLocation((1, 5), 10.0)]
        return (
            make_instance(path_a, locs_a, probability=0.75),
            make_instance(path_b, locs_b, probability=0.25),
        )

    def test_valid_uncertain_trajectory(self):
        a, b = self._two_instances()
        trajectory = UncertainTrajectory(0, [a, b], [100, 200])
        assert trajectory.instance_count == 2
        assert trajectory.start_time == 100
        assert trajectory.end_time == 200
        assert trajectory.best_instance() is a

    def test_probabilities_must_sum_to_one(self):
        a, b = self._two_instances()
        b.probability = 0.1
        with pytest.raises(ValueError):
            UncertainTrajectory(0, [a, b], [100, 200])

    def test_time_count_must_match_locations(self):
        a, b = self._two_instances()
        with pytest.raises(ValueError):
            UncertainTrajectory(0, [a, b], [100, 200, 300])

    def test_times_must_increase(self):
        a, b = self._two_instances()
        with pytest.raises(ValueError):
            UncertainTrajectory(0, [a, b], [200, 100])

    def test_needs_instances(self):
        with pytest.raises(ValueError):
            UncertainTrajectory(0, [], [100, 200])

    def test_renormalized_subset(self):
        a, b = self._two_instances()
        trajectory = UncertainTrajectory(0, [a, b], [100, 200])
        reduced = trajectory.renormalized([a])
        assert reduced.instance_count == 1
        assert reduced.instances[0].probability == pytest.approx(1.0)
        # the original instance is untouched
        assert a.probability == 0.75

    def test_renormalized_empty_rejected(self):
        a, b = self._two_instances()
        trajectory = UncertainTrajectory(0, [a, b], [100, 200])
        with pytest.raises(ValueError):
            trajectory.renormalized([])
