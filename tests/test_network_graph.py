"""Tests for the road network model and outgoing-edge numbering."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.graph import RoadNetwork


@pytest.fixture
def diamond() -> RoadNetwork:
    """A small diamond network: 0 -> {1, 2} -> 3, plus 3 -> 0."""
    network = RoadNetwork()
    network.add_vertex(0, 0.0, 0.0)
    network.add_vertex(1, 1.0, 1.0)
    network.add_vertex(2, 1.0, -1.0)
    network.add_vertex(3, 2.0, 0.0)
    network.add_edge(0, 1)
    network.add_edge(0, 2)
    network.add_edge(1, 3)
    network.add_edge(2, 3)
    network.add_edge(3, 0)
    network.finalize()
    return network


class TestConstruction:
    def test_vertex_lookup(self, diamond):
        assert diamond.vertex(1).x == 1.0
        assert diamond.has_vertex(2)
        assert not diamond.has_vertex(99)

    def test_duplicate_vertex_same_position_is_noop(self, diamond):
        diamond.add_vertex(0, 0.0, 0.0)
        assert diamond.vertex_count == 4

    def test_duplicate_vertex_moved_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.add_vertex(0, 5.0, 5.0)

    def test_edge_default_length_is_euclidean(self, diamond):
        assert diamond.edge_length(0, 1) == pytest.approx(math.sqrt(2))

    def test_explicit_edge_length(self):
        network = RoadNetwork()
        network.add_vertex(0, 0, 0)
        network.add_vertex(1, 3, 4)
        network.add_edge(0, 1, length=10.0)
        assert network.edge_length(0, 1) == 10.0

    def test_self_loop_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.add_edge(0, 0)

    def test_duplicate_edge_rejected(self, diamond):
        with pytest.raises(ValueError):
            diamond.add_edge(0, 1)

    def test_edge_unknown_vertex_rejected(self):
        network = RoadNetwork()
        network.add_vertex(0, 0, 0)
        with pytest.raises(KeyError):
            network.add_edge(0, 42)

    def test_non_positive_length_rejected(self):
        network = RoadNetwork()
        network.add_vertex(0, 0, 0)
        network.add_vertex(1, 0, 1)
        with pytest.raises(ValueError):
            network.add_edge(0, 1, length=0.0)


class TestEdgeNumbering:
    """Definition 6: outgoing edge numbers are 1-based, per start vertex."""

    def test_numbers_are_one_based_and_ordered_by_destination(self, diamond):
        assert diamond.out_number(0, 1) == 1
        assert diamond.out_number(0, 2) == 2

    def test_edge_by_number_inverts_out_number(self, diamond):
        for edge in diamond.edges():
            number = diamond.out_number(edge.start, edge.end)
            assert diamond.edge_by_number(edge.start, number).key == edge.key

    def test_out_number_unknown_edge(self, diamond):
        with pytest.raises(KeyError):
            diamond.out_number(1, 2)

    def test_edge_by_number_out_of_range(self, diamond):
        with pytest.raises(KeyError):
            diamond.edge_by_number(0, 3)
        with pytest.raises(KeyError):
            diamond.edge_by_number(0, 0)

    def test_max_out_degree(self, diamond):
        assert diamond.max_out_degree == 2

    def test_numbering_stable_after_new_edges(self, diamond):
        diamond.add_vertex(4, 0.5, 2.0)
        diamond.add_edge(0, 4)
        # renumbering is deterministic: ordered by destination id
        assert diamond.out_number(0, 1) == 1
        assert diamond.out_number(0, 2) == 2
        assert diamond.out_number(0, 4) == 3


class TestPathHelpers:
    def test_validate_path_accepts_connected(self, diamond):
        assert diamond.validate_path([(0, 1), (1, 3), (3, 0)])

    def test_validate_path_rejects_disconnected(self, diamond):
        assert not diamond.validate_path([(0, 1), (2, 3)])

    def test_validate_path_rejects_missing_edge(self, diamond):
        assert not diamond.validate_path([(0, 3)])

    def test_validate_path_rejects_empty(self, diamond):
        assert not diamond.validate_path([])

    def test_path_length(self, diamond):
        length = diamond.path_length([(0, 1), (1, 3)])
        assert length == pytest.approx(2 * math.sqrt(2))


class TestStatistics:
    def test_counts(self, diamond):
        assert diamond.vertex_count == 4
        assert diamond.edge_count == 5

    def test_average_out_degree(self, diamond):
        assert diamond.average_out_degree() == pytest.approx(5 / 4)

    def test_bounding_box(self, diamond):
        box = diamond.bounding_box()
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -1, 2, 1)

    def test_bounding_box_margin(self, diamond):
        box = diamond.bounding_box(margin=1.0)
        assert box.min_x == -1.0 and box.max_y == 2.0

    def test_bounding_box_empty_network(self):
        with pytest.raises(ValueError):
            RoadNetwork().bounding_box()

    def test_in_edges(self, diamond):
        assert {e.start for e in diamond.in_edges(3)} == {1, 2}


@given(st.integers(2, 12))
def test_property_numbering_is_a_bijection(fan_out):
    network = RoadNetwork()
    network.add_vertex(0, 0, 0)
    for i in range(1, fan_out + 1):
        network.add_vertex(i, i, 1)
        network.add_edge(0, i)
    numbers = [network.out_number(0, i) for i in range(1, fan_out + 1)]
    assert sorted(numbers) == list(range(1, fan_out + 1))
    assert network.max_out_degree == fan_out
