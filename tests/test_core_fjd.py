"""Tests for pivots, FJD, and reference selection — the paper's Examples 1-2."""

import random

import pytest

from repro.core.fjd import (
    fine_grained_jaccard,
    overlap,
    score,
    score_matrix,
    similarity,
)
from repro.core.pivots import (
    PivotRepresentations,
    factor_count,
    pivot_factors,
    select_pivots,
)
from repro.core.refselect import ReferenceSelection, select_references

# the paper's running example (Table 3 / Example 1)
E_TU11 = [1, 2, 1, 2, 2, 0, 4, 1, 0]
E_TU12 = [1, 1, 1, 2, 2, 0, 4, 1, 0]
E_TU13 = [1, 2, 1, 2, 2, 0, 4, 1, 2]  # piv_1
E_TU15 = [1, 2, 1, 2, 2, 0, 4]


class TestPivotFactors:
    def test_paper_com_tu11(self):
        """ComE(Tu^1_1, piv_1) = <(0,8),(5,1)>."""
        assert pivot_factors(E_TU11, E_TU13) == [(0, 8), (5, 1)]

    def test_paper_com_tu12(self):
        """ComE(Tu^1_2, piv_1) = <(0,1),(0,1),(2,6),(5,1)>."""
        assert pivot_factors(E_TU12, E_TU13) == [(0, 1), (0, 1), (2, 6), (5, 1)]

    def test_paper_com_tu15(self):
        """§4.3: ComE(Tu^1_5, piv_1) = <(0,7)>."""
        assert pivot_factors(E_TU15, E_TU13) == [(0, 7)]

    def test_missing_symbol_becomes_none(self):
        factors = pivot_factors([9, 1, 2], E_TU13)
        assert factors[0] is None
        assert factor_count(factors) == 2

    def test_factor_count_includes_omitted(self):
        assert factor_count([None, (0, 1), None]) == 3


class TestOverlapAndSimilarity:
    def test_overlap_disjoint(self):
        assert overlap((0, 3), (5, 2)) == 0

    def test_overlap_partial(self):
        assert overlap((0, 8), (2, 6)) == 6

    def test_overlap_contained(self):
        assert overlap((0, 8), (3, 2)) == 2

    def test_similarity_example1_first_factor(self):
        """sim(E^1_12(Ma_1), ComE(Tu^1_1, piv_1)) = 1/8."""
        com_w = [(0, 8), (5, 1)]
        assert similarity((0, 1), com_w) == pytest.approx(1 / 8)

    def test_similarity_example1_third_factor(self):
        """sim((2,6), ...) = 3/4."""
        com_w = [(0, 8), (5, 1)]
        assert similarity((2, 6), com_w) == pytest.approx(3 / 4)

    def test_similarity_example1_fourth_factor_tie_takes_min_length(self):
        """sim((5,1), ...) = 1: ties on overlap take the minimum L."""
        com_w = [(0, 8), (5, 1)]
        assert similarity((5, 1), com_w) == pytest.approx(1.0)

    def test_similarity_of_none_factor(self):
        assert similarity(None, [(0, 8)]) == 0.0

    def test_similarity_no_overlap(self):
        assert similarity((20, 3), [(0, 8)]) == 0.0


class TestFJD:
    def test_paper_example_1(self):
        """FJD(Tu^1_1 -> Tu^1_2, piv_1) = 1/2."""
        com_w = pivot_factors(E_TU11, E_TU13)
        com_v = pivot_factors(E_TU12, E_TU13)
        assert fine_grained_jaccard(com_w, com_v) == pytest.approx(0.5)

    def test_fjd_detects_similarity_jaccard_misses(self):
        """§4.3's motivation: Tu^1_1 vs Tu^1_5 share no factor, yet FJD > 0."""
        com_w = pivot_factors(E_TU11, E_TU13)  # <(0,8),(5,1)>
        com_v = pivot_factors(E_TU15, E_TU13)  # <(0,7)>
        value = fine_grained_jaccard(com_w, com_v)
        assert value > 0.4  # plain Jaccard distance would be 1 (similarity 0)

    def test_fjd_identity(self):
        com = pivot_factors(E_TU11, E_TU13)
        assert fine_grained_jaccard(com, com) == pytest.approx(1.0)


class TestScore:
    def _pivots(self):
        sequences = [E_TU11, E_TU12, E_TU13]
        return PivotRepresentations(
            pivot_indices=[2],
            representations=[
                [pivot_factors(seq, E_TU13) for seq in sequences]
            ],
        )

    def test_example_2_score(self):
        """SF(Tu^1_1, Tu^1_2) = 0.75 * 1/2 = 3/8."""
        pivots = self._pivots()
        value = score(0, 1, [0.75, 0.2, 0.05], [7, 7, 7], pivots)
        assert value == pytest.approx(3 / 8)

    def test_self_score_zero(self):
        pivots = self._pivots()
        assert score(1, 1, [0.75, 0.2, 0.05], [7, 7, 7], pivots) == 0.0

    def test_different_start_vertices_score_zero(self):
        pivots = self._pivots()
        assert score(0, 1, [0.75, 0.2, 0.05], [7, 8, 7], pivots) == 0.0

    def test_score_matrix_shape_and_diagonal(self):
        pivots = self._pivots()
        matrix = score_matrix([0.75, 0.2, 0.05], [7, 7, 7], pivots)
        assert len(matrix) == 3
        assert all(matrix[i][i] == 0.0 for i in range(3))
        assert matrix[0][1] == pytest.approx(3 / 8)


class TestSelectPivots:
    def test_selects_requested_number(self):
        rng = random.Random(0)
        sequences = [E_TU11, E_TU12, E_TU13, E_TU15]
        pivots = select_pivots(sequences, 2, rng)
        assert pivots.pivot_count == 2
        assert len(set(pivots.pivot_indices)) == 2
        assert len(pivots.representations) == 2
        for representation in pivots.representations:
            assert len(representation) == len(sequences)

    def test_caps_at_instance_count(self):
        rng = random.Random(1)
        pivots = select_pivots([E_TU11, E_TU12], 5, rng)
        assert pivots.pivot_count == 2

    def test_single_instance(self):
        rng = random.Random(2)
        pivots = select_pivots([E_TU11], 1, rng)
        assert pivots.pivot_indices == [0]

    def test_validation(self):
        rng = random.Random(3)
        with pytest.raises(ValueError):
            select_pivots([E_TU11], 0, rng)
        with pytest.raises(ValueError):
            select_pivots([], 1, rng)


class TestSelectReferences:
    def test_paper_example_2(self):
        """Example 2: Tu^1_1 becomes the reference of both Tu^1_2 and Tu^1_3."""
        pivots = PivotRepresentations(
            pivot_indices=[2],
            representations=[
                [pivot_factors(seq, E_TU13) for seq in (E_TU11, E_TU12, E_TU13)]
            ],
        )
        matrix = score_matrix([0.75, 0.2, 0.05], [7, 7, 7], pivots)
        selection = select_references(matrix)
        assert selection.references == [0]
        assert sorted(selection.assignments[0]) == [1, 2]
        selection.validate(3)

    def test_zero_matrix_all_standalone(self):
        matrix = [[0.0] * 3 for _ in range(3)]
        selection = select_references(matrix)
        assert sorted(selection.references) == [0, 1, 2]
        assert all(not members for members in selection.assignments.values())
        selection.validate(3)

    def test_single_instance(self):
        selection = select_references([[0.0]])
        assert selection.references == [0]
        selection.validate(1)

    def test_non_square_rejected(self):
        with pytest.raises(ValueError):
            select_references([[0.0, 1.0]])

    def test_chain_constraint_single_order(self):
        # 0 would best represent 1, 1 would best represent 2; single-order
        # compression forbids 1 being both non-reference and reference.
        matrix = [
            [0.0, 0.9, 0.1],
            [0.0, 0.0, 0.8],
            [0.0, 0.0, 0.0],
        ]
        selection = select_references(matrix)
        assert selection.assignments[0] == [1] or 1 in selection.assignments[0]
        assert 2 not in selection.assignments.get(1, [])
        selection.validate(3)

    def test_each_non_reference_has_one_reference(self):
        matrix = [
            [0.0, 0.5, 0.4],
            [0.5, 0.0, 0.3],
            [0.4, 0.3, 0.0],
        ]
        selection = select_references(matrix)
        selection.validate(3)
        non_refs = selection.non_references
        assert len(non_refs) == len(set(non_refs))

    def test_reference_of(self):
        selection = ReferenceSelection(
            references=[0, 3], assignments={0: [1, 2], 3: []}
        )
        assert selection.reference_of(1) == 0
        assert selection.reference_of(0) == 0
        assert selection.reference_of(3) == 3
        assert selection.reference_of(9) is None
