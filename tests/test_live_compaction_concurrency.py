"""Concurrent queries against a live archive under active compaction.

Extends the ``test_reader_concurrency`` hammer pattern one layer up:
a thread pool refreshes a shared :class:`LiveArchive` and answers
``where`` queries while the main thread keeps ingesting and a
:class:`CompactionDaemon` merges segments underneath — every answer
must match a serially-computed reference, whatever snapshot each
worker happened to see.  Readers retired by a refresh must keep
serving query processors built on the older snapshot.
"""

import random
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.network.generators import grid_network
from repro.stream import (
    AppendableArchiveWriter,
    CompactionDaemon,
    LiveArchive,
    SizeTieredPolicy,
    drain_compactions,
)
from repro.trajectories.model import (
    MappedLocation,
    TrajectoryInstance,
    UncertainTrajectory,
)

THREADS = 6
TRIPS = 36


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0)


def _trip(network, trajectory_id):
    edges = [(e.start, e.end) for e in network.edges()]
    key = edges[trajectory_id % len(edges)]
    instance = TrajectoryInstance(
        path=[key],
        locations=[MappedLocation(key, 0.0), MappedLocation(key, 1.0)],
        probability=1.0,
    )
    t0 = trajectory_id * 50
    return UncertainTrajectory(trajectory_id, [instance], [t0, t0 + 40])


def _mid(trajectory_id):
    return trajectory_id * 50 + 20


@pytest.fixture(scope="module")
def trips(network):
    return [_trip(network, i) for i in range(TRIPS)]


def _writer(directory, network, segment_max=2):
    return AppendableArchiveWriter(
        directory,
        network,
        default_interval=10,
        segment_max_trajectories=segment_max,
    )


@pytest.fixture(scope="module")
def reference(network, trips, tmp_path_factory):
    """Per-trajectory ``where`` answers from a never-compacted run."""
    directory = tmp_path_factory.mktemp("reference") / "fleet"
    with _writer(directory, network, segment_max=4) as writer:
        for trip in trips:
            writer.append(trip)
    with LiveArchive(directory) as live:
        processor = live.query_processor(network)
        return {
            trip.trajectory_id: processor.where(
                trip.trajectory_id, _mid(trip.trajectory_id), alpha=0.1
            )
            for trip in trips
        }


def test_queries_stay_pinned_during_active_compaction(
    network, trips, reference, tmp_path
):
    directory = tmp_path / "fleet"
    writer = _writer(directory, network)
    for trip in trips[:4]:
        writer.append(trip)
    live = LiveArchive(directory)
    daemon = CompactionDaemon(
        writer,
        policy=SizeTieredPolicy(min_merge=2, max_merge=4),
        interval=0.01,
    )
    stop = threading.Event()
    mismatches = []

    def hammer(seed):
        rng = random.Random(seed)
        checked = 0
        while not stop.is_set() or checked == 0:
            live.refresh()
            processor = live.query_processor(network)
            ids = live.trajectory_ids()
            for trajectory_id in rng.sample(ids, min(5, len(ids))):
                answer = processor.where(
                    trajectory_id, _mid(trajectory_id), alpha=0.1
                )
                if answer != reference[trajectory_id]:
                    mismatches.append((trajectory_id, answer))
                checked += 1
        return checked

    with daemon:
        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            futures = [pool.submit(hammer, seed) for seed in range(THREADS)]
            for trip in trips[4:]:
                writer.append(trip)
                daemon.notify()
                time.sleep(0.002)
            writer.close()
            daemon.notify()
            stop.set()
            checks = [future.result(timeout=120) for future in futures]
    # daemon context exit drains remaining merges

    assert mismatches == []
    assert sum(checks) > 0
    assert daemon.stats.merges > 0, "compaction never ran during the hammer"

    # post-quiescence: the merged view answers identically, assembled
    # purely from sidecars (never a record-decoding index rebuild)
    live.refresh()
    assert live.trajectory_count == TRIPS
    processor = live.query_processor(network)
    for trip in trips:
        assert processor.where(
            trip.trajectory_id, _mid(trip.trajectory_id), alpha=0.1
        ) == reference[trip.trajectory_id]
    assert live.sidecar_misses == 0
    live.close()


def test_processor_on_retired_snapshot_keeps_answering(
    network, trips, reference, tmp_path
):
    """A query processor built before a compaction must stay usable
    after refresh() replaced its segments — the retired readers are
    kept open until the archive closes."""
    directory = tmp_path / "fleet"
    with _writer(directory, network) as writer:
        for trip in trips[:8]:
            writer.append(trip)
    live = LiveArchive(directory)
    before = live.query_processor(network)
    segments_before = live.segment_count

    merges = drain_compactions(
        directory, policy=SizeTieredPolicy(min_merge=2, max_merge=8),
        network=network,
    ).merges
    assert merges > 0
    live.refresh()
    assert live.segment_count < segments_before
    assert live.retired_count > 0

    after = live.query_processor(network)
    for trip in trips[:8]:
        expected = reference[trip.trajectory_id]
        t = _mid(trip.trajectory_id)
        assert before.where(trip.trajectory_id, t, alpha=0.1) == expected
        assert after.where(trip.trajectory_id, t, alpha=0.1) == expected
    live.close()
