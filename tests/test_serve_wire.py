"""The wire front-end: framing, hardening, backpressure, network chaos.

Three layers of pinning:

* the **codec** is pinned value-by-value (round trips, malformed
  shapes, CRC detection) — a bad frame must raise, never mis-parse;
* the **server** is pinned against a duck-typed service with
  controllable gates, so slow-loris reaping, connection limits,
  pipelining-window backpressure, wire-level shedding, and drain are
  each exercised deterministically with raw sockets;
* the **network** is broken on purpose with :class:`ChaosTCPProxy`
  (scripted, seeded) and the client's reconnect/retry loop must hand
  back correct answers anyway — the end-to-end contract: a network
  fault can cost a retry, never a wrong answer.
"""

import socket
import struct
import threading
import time

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.network.grid import Rect
from repro.query import StIUIndex, ShardedQueryEngine, save_index
from repro.query.engine import RangeQuery, WhenQuery, WhereQuery
from repro.serve import (
    BackoffSchedule,
    ChaosTCPProxy,
    DeadlineExceeded,
    Overloaded,
    QueryService,
    RetryPolicy,
    ServiceConfig,
    ShardQuarantined,
    WireClient,
    WireClosedError,
    WireProtocolError,
    WireServerConfig,
    WireServerThread,
    corrupt_fault,
    disconnect_fault,
    refuse_fault,
    stall_fault,
    truncate_fault,
)
from repro.serve.service import ServiceResponse
from repro.serve import wire
from repro.trajectories.datasets import load_dataset

from test_query_engine import make_queries

QUERIES = [
    WhereQuery(3, 100, 0.5),
    WhenQuery(4, (1, 2), 0.25, 0.9),
    RangeQuery(Rect(0.0, 0.0, 50.0, 50.0), 7, 0.8),
]


# ----------------------------------------------------------------------
# codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    def test_frame_round_trip(self):
        frame = wire.encode_frame(wire.FRAME_REQUEST, 42, b"payload")
        kind, request_id, length, crc = wire.decode_header(
            frame[: wire.HEADER_SIZE]
        )
        assert (kind, request_id, length) == (wire.FRAME_REQUEST, 42, 7)
        wire.check_body(frame[wire.HEADER_SIZE:], crc)  # no raise

    def test_bad_magic_rejected(self):
        frame = bytearray(wire.encode_frame(wire.FRAME_PING, 1, b""))
        frame[0] ^= 0xFF
        with pytest.raises(WireProtocolError, match="magic"):
            wire.decode_header(bytes(frame[: wire.HEADER_SIZE]))

    def test_wrong_version_rejected(self):
        frame = bytearray(wire.encode_frame(wire.FRAME_PING, 1, b""))
        frame[2] = 99
        with pytest.raises(WireProtocolError, match="version"):
            wire.decode_header(bytes(frame[: wire.HEADER_SIZE]))

    def test_unknown_frame_type_rejected(self):
        frame = bytearray(wire.encode_frame(wire.FRAME_PING, 1, b""))
        frame[3] = 77
        with pytest.raises(WireProtocolError, match="frame type"):
            wire.decode_header(bytes(frame[: wire.HEADER_SIZE]))

    def test_oversized_body_rejected_before_allocation(self):
        header = struct.Struct("<2sBBQII").pack(
            b"RW", 1, wire.FRAME_REQUEST, 1, wire.MAX_BODY_BYTES + 1, 0
        )
        with pytest.raises(WireProtocolError, match="cap"):
            wire.decode_header(header)

    def test_crc_detects_any_flip(self):
        body = b"the quick brown frame"
        frame = wire.encode_frame(wire.FRAME_REQUEST, 9, body)
        _, _, _, crc = wire.decode_header(frame[: wire.HEADER_SIZE])
        for position in range(len(body)):
            mutated = bytearray(body)
            mutated[position] ^= 0x01
            with pytest.raises(WireProtocolError, match="CRC"):
                wire.check_body(bytes(mutated), crc)

    def test_request_body_round_trip(self):
        body = wire.encode_request_body(
            QUERIES, client="tester", deadline=2.5
        )
        client, deadline, queries = wire.decode_request_body(body)
        assert client == "tester"
        assert deadline == 2.5
        assert queries == QUERIES

    def test_default_deadline_travels_as_none(self):
        body = wire.encode_request_body(QUERIES, client="t")
        _, deadline, _ = wire.decode_request_body(body)
        assert deadline is None

    def test_malformed_request_bodies_raise_not_misparse(self):
        good = wire.encode_request_body(QUERIES, client="t")
        # truncated: the last record is cut short
        with pytest.raises(WireProtocolError):
            wire.decode_request_body(good[:-3])
        # trailing garbage after the declared query list
        with pytest.raises(WireProtocolError, match="trailing"):
            wire.decode_request_body(good + b"x")
        # unknown query tag
        mutated = bytearray(good)
        offset = struct.calcsize("<dHI") + 1  # first record's tag byte
        mutated[offset] = 9
        with pytest.raises(WireProtocolError):
            wire.decode_request_body(bytes(mutated))

    def test_degenerate_rect_is_malformed_not_a_crash(self):
        # a rect with min >= max fails Rect's own validation; the wire
        # must surface that as a protocol error, not a ValueError
        body = wire.encode_request_body(
            [RangeQuery(Rect(0.0, 0.0, 50.0, 50.0), 7, 0.8)], client="t"
        )
        packed = struct.Struct("<ddddqd").pack(50.0, 0.0, 0.0, 50.0, 7, 0.8)
        mutated = body[: -len(packed)] + packed
        with pytest.raises(WireProtocolError, match="malformed"):
            wire.decode_request_body(mutated)

    def test_response_body_round_trip(self):
        results = [[1, 2, 3], [], [7]]
        body = wire.encode_response_body("sharded", results)
        mode, back = wire.decode_response_body(body)
        assert mode == "sharded"
        assert back == results

    def test_error_body_round_trip_and_typing(self):
        for code, expected in (
            (wire.ERR_OVERLOADED, Overloaded),
            (wire.ERR_DEADLINE, DeadlineExceeded),
            (wire.ERR_QUARANTINED, ShardQuarantined),
            (wire.ERR_MALFORMED, WireProtocolError),
            (wire.ERR_DRAINING, WireClosedError),
            (wire.ERR_INTERNAL, wire.WireServerError),
        ):
            body = wire.encode_error_body(code, "boom", retry_after=0.5)
            back_code, retry_after, message = wire.decode_error_body(body)
            assert (back_code, retry_after, message) == (code, 0.5, "boom")
            error = wire.exception_from_error(code, retry_after, message)
            assert isinstance(error, expected)

    def test_overloaded_retry_after_survives_the_wire(self):
        body = wire.encode_error_body(
            wire.ERR_OVERLOADED, "busy", retry_after=1.25
        )
        error = wire.exception_from_error(*wire.decode_error_body(body))
        assert error.retry_after == 1.25


# ----------------------------------------------------------------------
# decorrelated-jitter backoff (the supervisor's and the client's)
# ----------------------------------------------------------------------
class TestBackoffSchedule:
    POLICY = RetryPolicy(
        backoff_base=0.05, backoff_cap=1.0, backoff_multiplier=2.0
    )

    def test_no_rng_is_the_deterministic_exponential(self):
        schedule = self.POLICY.schedule(None)
        assert [schedule.next_pause(n) for n in range(4)] == [
            self.POLICY.backoff(n) for n in range(4)
        ]

    def test_jitter_false_ignores_the_rng(self):
        import random

        policy = RetryPolicy(
            backoff_base=0.05, backoff_cap=1.0, jitter=False
        )
        schedule = policy.schedule(random.Random(1))
        assert schedule.next_pause(2) == policy.backoff(2)

    def test_seeded_schedules_are_reproducible(self):
        import random

        first = [
            self.POLICY.schedule(random.Random(7)).next_pause(n)
            for n in range(5)
        ]
        second = [
            self.POLICY.schedule(random.Random(7)).next_pause(n)
            for n in range(5)
        ]
        assert first == second

    def test_pauses_stay_inside_the_envelope(self):
        import random

        schedule = self.POLICY.schedule(random.Random(3))
        previous = self.POLICY.backoff_base
        for attempt in range(50):
            pause = schedule.next_pause(attempt)
            assert self.POLICY.backoff_base <= pause
            assert pause <= self.POLICY.backoff_cap
            assert pause <= max(previous * 3.0, self.POLICY.backoff_base)
            previous = max(pause, self.POLICY.backoff_base)

    def test_two_seeds_decorrelate(self):
        import random

        a = self.POLICY.schedule(random.Random(1))
        b = self.POLICY.schedule(random.Random(2))
        assert [a.next_pause(n) for n in range(6)] != [
            b.next_pause(n) for n in range(6)
        ]


# ----------------------------------------------------------------------
# server hardening, against a controllable fake service
# ----------------------------------------------------------------------
class FakeService:
    """Duck-typed QueryService: echoes trajectory ids, optionally gated."""

    class config:
        max_in_flight = 8
        deadline = 5.0

    def __init__(self, gate: threading.Event | None = None) -> None:
        self.gate = gate
        self.calls = 0
        self._lock = threading.Lock()

    def submit_many(self, queries, *, client="x", deadline=None,
                    trace=False):
        with self._lock:
            self.calls += 1
        if self.gate is not None:
            assert self.gate.wait(timeout=10.0)
        return ServiceResponse(
            ok=True,
            results=[[q.trajectory_id] for q in queries],
            error=None,
            mode="sharded",
            latency=0.0,
            client=client,
        )


def read_frame(sock: socket.socket) -> tuple[int, int, bytes]:
    def exactly(count: int) -> bytes:
        data = b""
        while len(data) < count:
            chunk = sock.recv(count - len(data))
            if not chunk:
                raise ConnectionError("closed")
            data += chunk
        return data

    kind, request_id, length, crc = wire.decode_header(
        exactly(wire.HEADER_SIZE)
    )
    body = exactly(length)
    wire.check_body(body, crc)
    return kind, request_id, body


def request_frame(request_id: int, queries=None) -> bytes:
    return wire.encode_frame(
        wire.FRAME_REQUEST,
        request_id,
        wire.encode_request_body(queries or [WhereQuery(1, 5, 0.5)],
                                 client="raw"),
    )


class TestWireServer:
    def test_end_to_end_request_response(self):
        with WireServerThread(FakeService()) as server:
            with WireClient("127.0.0.1", server.port, seed=1) as client:
                assert client.ping() >= 0.0
                result = client.request([WhereQuery(7, 1, 0.5)])
                assert result.results == [[7]]
                assert result.mode == "sharded"
                assert result.attempts == 1

    def test_pipelined_requests_correlate_by_id(self):
        with WireServerThread(FakeService()) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                for request_id in (11, 22, 33):
                    sock.sendall(request_frame(
                        request_id, [WhereQuery(request_id, 5, 0.5)]
                    ))
                seen = {}
                for _ in range(3):
                    kind, request_id, body = read_frame(sock)
                    assert kind == wire.FRAME_RESPONSE
                    _, results = wire.decode_response_body(body)
                    seen[request_id] = results
                assert seen == {11: [[11]], 22: [[22]], 33: [[33]]}

    def test_corrupt_body_gets_error_frame_and_stream_survives(self):
        with WireServerThread(FakeService()) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                frame = bytearray(request_frame(5))
                frame[-1] ^= 0xFF  # break the body CRC
                sock.sendall(bytes(frame))
                kind, request_id, body = read_frame(sock)
                assert kind == wire.FRAME_ERROR
                code, _, message = wire.decode_error_body(body)
                assert code == wire.ERR_MALFORMED
                assert "CRC" in message
                # same connection, next frame: still served
                sock.sendall(request_frame(6))
                kind, request_id, _ = read_frame(sock)
                assert (kind, request_id) == (wire.FRAME_RESPONSE, 6)

    def test_malformed_request_body_gets_typed_error(self):
        with WireServerThread(FakeService()) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                sock.sendall(
                    wire.encode_frame(wire.FRAME_REQUEST, 7, b"garbage")
                )
                kind, request_id, body = read_frame(sock)
                assert (kind, request_id) == (wire.FRAME_ERROR, 7)
                assert wire.decode_error_body(body)[0] == wire.ERR_MALFORMED

    def test_bad_magic_closes_only_that_connection(self):
        with WireServerThread(FakeService()) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                sock.sendall(b"XX" + bytes(wire.HEADER_SIZE - 2))
                kind, _, body = read_frame(sock)
                assert kind == wire.FRAME_ERROR
                assert sock.recv(64) == b""  # desynced stream: closed
            # the accept loop survived: a fresh connection still works
            with WireClient("127.0.0.1", server.port, seed=2) as client:
                assert client.request([WhereQuery(1, 5, 0.5)]).results

    def test_slow_loris_is_reaped_by_the_idle_deadline(self):
        config = WireServerConfig(idle_timeout=0.3, read_timeout=0.3)
        with WireServerThread(FakeService(), config=config) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                sock.sendall(b"RW\x01")  # 3 of 20 header bytes, then stall
                sock.settimeout(5.0)
                started = time.monotonic()
                assert sock.recv(64) == b""  # server hung up on us
                assert time.monotonic() - started < 4.0
            # a well-behaved client is still served afterwards
            with WireClient("127.0.0.1", server.port, seed=3) as client:
                assert client.request([WhereQuery(2, 5, 0.5)]).results

    def test_slow_body_is_reaped_by_the_read_deadline(self):
        config = WireServerConfig(idle_timeout=5.0, read_timeout=0.3)
        with WireServerThread(FakeService(), config=config) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                frame = request_frame(1)
                sock.sendall(frame[: wire.HEADER_SIZE + 4])  # header, 4 body
                sock.settimeout(5.0)
                assert sock.recv(64) == b""

    def test_connection_limit_sheds_with_retry_after(self):
        config = WireServerConfig(max_connections=1)
        with WireServerThread(FakeService(), config=config) as server:
            with WireClient("127.0.0.1", server.port, seed=4) as client:
                client.ping()  # connection one is registered
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0
                ) as second:
                    kind, _, body = read_frame(second)
                    assert kind == wire.FRAME_ERROR
                    code, retry_after, _ = wire.decode_error_body(body)
                    assert code == wire.ERR_OVERLOADED
                    assert retry_after > 0.0
                # the registered connection keeps working
                assert client.request([WhereQuery(3, 5, 0.5)]).results

    def test_full_pipeline_window_stops_reading_the_socket(self):
        gate = threading.Event()
        service = FakeService(gate)
        config = WireServerConfig(pipeline_window=2)
        with WireServerThread(service, config=config) as server:
            with socket.create_connection(
                ("127.0.0.1", server.port), timeout=5.0
            ) as sock:
                for request_id in (1, 2, 3):
                    sock.sendall(request_frame(request_id))
                deadline = time.monotonic() + 2.0
                while service.calls < 2 and time.monotonic() < deadline:
                    time.sleep(0.01)
                time.sleep(0.2)  # window full: frame 3 must NOT be read
                assert service.calls == 2
                gate.set()  # responses free the window; frame 3 follows
                answered = {read_frame(sock)[1] for _ in range(3)}
                assert answered == {1, 2, 3}
                assert service.calls == 3

    def test_wire_dispatch_cap_sheds_instead_of_queueing(self):
        gate = threading.Event()
        service = FakeService(gate)
        config = WireServerConfig(pipeline_window=8, max_dispatch=1)
        with WireServerThread(service, config=config) as server:
            try:
                with socket.create_connection(
                    ("127.0.0.1", server.port), timeout=5.0
                ) as sock:
                    deadline = time.monotonic() + 2.0
                    sock.sendall(request_frame(1))
                    while service.calls < 1 and time.monotonic() < deadline:
                        time.sleep(0.01)
                    sock.sendall(request_frame(2))
                    kind, request_id, body = read_frame(sock)
                    assert (kind, request_id) == (wire.FRAME_ERROR, 2)
                    code, retry_after, _ = wire.decode_error_body(body)
                    assert code == wire.ERR_OVERLOADED
                    assert retry_after > 0.0
                    gate.set()
                    kind, request_id, _ = read_frame(sock)
                    assert (kind, request_id) == (wire.FRAME_RESPONSE, 1)
            finally:
                gate.set()

    def test_drain_finishes_in_flight_and_refuses_new_connects(self):
        gate = threading.Event()
        service = FakeService(gate)
        server = WireServerThread(service).start()
        port = server.port
        try:
            with socket.create_connection(
                ("127.0.0.1", port), timeout=5.0
            ) as sock:
                sock.sendall(request_frame(9))
                deadline = time.monotonic() + 2.0
                while service.calls < 1 and time.monotonic() < deadline:
                    time.sleep(0.01)
                done = threading.Event()
                verdict = []

                def drain():
                    verdict.append(server.drain(timeout=5.0))
                    done.set()

                threading.Thread(target=drain, daemon=True).start()
                time.sleep(0.1)
                gate.set()  # let the in-flight request finish
                kind, request_id, _ = read_frame(sock)
                assert (kind, request_id) == (wire.FRAME_RESPONSE, 9)
                assert done.wait(timeout=10.0)
                assert verdict == [True]
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=1.0)
        finally:
            gate.set()
            server.stop()


# ----------------------------------------------------------------------
# client resilience through a hostile network
# ----------------------------------------------------------------------
class TestChaosTCP:
    def make_stack(self, **proxy_kwargs):
        server = WireServerThread(
            FakeService(),
            config=WireServerConfig(idle_timeout=5.0, read_timeout=1.0),
        ).start()
        proxy = ChaosTCPProxy("127.0.0.1", server.port, **proxy_kwargs)
        proxy.start()
        return server, proxy

    def test_passthrough_is_transparent(self):
        server, proxy = self.make_stack()
        try:
            with WireClient("127.0.0.1", proxy.port, seed=1) as client:
                result = client.request([WhereQuery(4, 5, 0.5)])
                assert result.results == [[4]]
                assert result.attempts == 1
        finally:
            proxy.stop()
            server.stop()

    def test_corrupt_in_flight_costs_a_retry_never_a_wrong_answer(self):
        server, proxy = self.make_stack(seed=5)
        try:
            with WireClient(
                "127.0.0.1", proxy.port, seed=2, request_timeout=2.0
            ) as client:
                proxy.arm(corrupt_fault())
                result = client.request([WhereQuery(6, 5, 0.5)])
                assert result.results == [[6]]
                assert result.attempts == 2
                assert proxy.injected["corrupt"] == 1
        finally:
            proxy.stop()
            server.stop()

    def test_disconnect_mid_request_reconnects_and_resubmits(self):
        server, proxy = self.make_stack(seed=6)
        try:
            with WireClient(
                "127.0.0.1", proxy.port, seed=3, request_timeout=2.0
            ) as client:
                client.ping()
                proxy.arm(disconnect_fault())
                result = client.request([WhereQuery(8, 5, 0.5)])
                assert result.results == [[8]]
                assert result.attempts >= 2
                assert client.reconnects >= 1
        finally:
            proxy.stop()
            server.stop()

    def test_truncated_frame_is_detected_and_retried(self):
        server, proxy = self.make_stack(seed=7)
        try:
            with WireClient(
                "127.0.0.1", proxy.port, seed=4, request_timeout=2.0
            ) as client:
                client.ping()
                proxy.arm(truncate_fault())
                result = client.request([WhereQuery(9, 5, 0.5)])
                assert result.results == [[9]]
                assert result.attempts >= 2
                assert proxy.injected["truncate"] == 1
        finally:
            proxy.stop()
            server.stop()

    def test_refused_connection_is_retried_with_backoff(self):
        server, proxy = self.make_stack(seed=8)
        try:
            proxy.arm(refuse_fault())
            with WireClient(
                "127.0.0.1", proxy.port, seed=5, request_timeout=2.0
            ) as client:
                assert client.request([WhereQuery(2, 5, 0.5)]).results
                assert proxy.injected["refuse"] == 1
        finally:
            proxy.stop()
            server.stop()

    def test_stall_delays_but_does_not_break(self):
        server, proxy = self.make_stack(seed=9)
        try:
            with WireClient(
                "127.0.0.1", proxy.port, seed=6, request_timeout=5.0
            ) as client:
                client.ping()
                proxy.arm(stall_fault(0.3))
                started = time.monotonic()
                result = client.request([WhereQuery(1, 5, 0.5)])
                assert result.results == [[1]]
                assert time.monotonic() - started >= 0.25
        finally:
            proxy.stop()
            server.stop()

    def test_dead_server_surfaces_closed_after_the_attempt_budget(self):
        # a port with nothing listening: connect() must retry with
        # backoff and then raise the typed transport error
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here now
        client = WireClient(
            "127.0.0.1", port, seed=7, max_attempts=2,
            backoff=RetryPolicy(backoff_base=0.001, backoff_cap=0.002),
        )
        with pytest.raises(WireClosedError, match="cannot connect"):
            client.request([WhereQuery(1, 5, 0.5)])


# ----------------------------------------------------------------------
# the real service behind the wire
# ----------------------------------------------------------------------
SHARDS = 2


@pytest.fixture(scope="module")
def wire_world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 20, seed=53, network_scale=10)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("wire")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    queries = make_queries(network, trajectories, count=12, seed=9)
    with ShardedQueryEngine(shard_paths, network=network, workers=1) as ref:
        expected = ref.run(queries)
    return network, shard_paths, queries, expected


class TestWireOverRealService:
    def test_answers_are_oracle_identical_through_tcp(self, wire_world):
        network, shard_paths, queries, expected = wire_world
        service = QueryService(
            shard_paths,
            network=network,
            workers=2,
            config=ServiceConfig(deadline=30.0, health_interval=None),
        )
        try:
            with WireServerThread(service) as server:
                with WireClient(
                    "127.0.0.1", server.port, seed=11
                ) as client:
                    result = client.request(queries)
                    assert result.results == expected
                    assert result.mode == "sharded"
        finally:
            service.close()

    def test_expired_deadline_comes_back_typed(self, wire_world):
        network, shard_paths, queries, _ = wire_world
        service = QueryService(
            shard_paths,
            network=network,
            workers=None,  # in-process: nothing to warm, fail fast
            config=ServiceConfig(deadline=30.0, health_interval=None),
        )
        try:
            with WireServerThread(service) as server:
                with WireClient(
                    "127.0.0.1", server.port, seed=12, max_attempts=1
                ) as client:
                    with pytest.raises(DeadlineExceeded):
                        client.request(queries, deadline=1e-9)
        finally:
            service.close()

    def test_chaos_sandwich_many_requests_zero_wrong_answers(
        self, wire_world
    ):
        # seeded probabilistic faults on every hop for a burst of
        # requests: whatever happens, completed answers match the oracle
        network, shard_paths, queries, expected = wire_world
        service = QueryService(
            shard_paths,
            network=network,
            workers=2,
            config=ServiceConfig(deadline=30.0, health_interval=None),
        )
        try:
            with WireServerThread(
                service,
                config=WireServerConfig(idle_timeout=5.0, read_timeout=2.0),
            ) as server:
                with ChaosTCPProxy(
                    "127.0.0.1",
                    server.port,
                    disconnect_probability=0.03,
                    corrupt_probability=0.03,
                    stall_probability=0.05,
                    stall_seconds=0.02,
                    seed=13,
                ) as proxy:
                    with WireClient(
                        "127.0.0.1",
                        proxy.port,
                        seed=14,
                        request_timeout=5.0,
                        max_attempts=6,
                    ) as client:
                        for _ in range(25):
                            result = client.request(queries)
                            assert result.results == expected
        finally:
            service.close()
