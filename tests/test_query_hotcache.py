"""Zipf-aware hot-answer cache: sketch, admission policy, engine tier.

The design pins:

* the count-min sketch only ever over-counts, and ages so yesterday's
  popularity decays;
* admission is frequency-gated — a one-hit wonder never enters, a
  cold scan never flushes the hot set;
* ``clear()`` drops answers but keeps popularity, so the hot set
  re-admits on the first re-offer after an invalidation;
* with the tier on, the engine's answers are bit-identical to a run
  without it — the cache changes cost, never results.
"""

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.query import StIUIndex, ShardedQueryEngine, save_index
from repro.query.hotcache import (
    MISS,
    CountMinSketch,
    HotTrajectoryCache,
    resolve_hotcache_entries,
)
from repro.trajectories.datasets import load_dataset

from test_query_engine import make_queries


class TestResolveEntries:
    def test_default_is_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_HOTCACHE", raising=False)
        assert resolve_hotcache_entries() == 0

    def test_env_enables(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOTCACHE", "128")
        assert resolve_hotcache_entries() == 128

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_HOTCACHE", "128")
        assert resolve_hotcache_entries(16) == 16

    def test_garbage_env_raises(self, monkeypatch):
        from repro.config import ConfigError

        monkeypatch.setenv("REPRO_HOTCACHE", "many")
        with pytest.raises(ConfigError, match="REPRO_HOTCACHE"):
            resolve_hotcache_entries()


class TestCountMinSketch:
    def test_never_undercounts(self):
        sketch = CountMinSketch(width=64, depth=4, sample_size=10**6)
        for key in range(100):
            for _ in range(key % 5 + 1):
                sketch.add(key)
        for key in range(100):
            assert sketch.estimate(key) >= key % 5 + 1

    def test_unseen_key_estimates_near_zero(self):
        sketch = CountMinSketch(width=2048, depth=4)
        sketch.add("hot")
        assert sketch.estimate("never-seen") <= 1

    def test_aging_halves_counts(self):
        sketch = CountMinSketch(width=16, depth=2, sample_size=16)
        for _ in range(12):
            sketch.add("hot")
        before = sketch.estimate("hot")
        for i in range(16):
            sketch.add(("filler", i))
        assert sketch.ages >= 1
        assert sketch.estimate("hot") < before

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(ValueError):
            CountMinSketch(width=1)
        with pytest.raises(ValueError):
            CountMinSketch(depth=0)


class TestAdmissionPolicy:
    def make(self, capacity=4):
        return HotTrajectoryCache(capacity, register=False)

    def test_one_hit_wonder_is_rejected(self):
        cache = self.make()
        assert cache.get("q") is MISS
        assert not cache.offer("q", ["answer"])
        assert cache.get("q") is MISS
        assert cache.stats()["rejections"] == 1

    def test_second_touch_admits(self):
        cache = self.make()
        cache.get("q")
        cache.get("q")
        assert cache.offer("q", ["answer"])
        assert cache.get("q") == ["answer"]
        assert cache.stats()["hits"] == 1

    def test_cached_empty_answer_is_a_hit_not_a_miss(self):
        cache = self.make()
        cache.get("q")
        cache.get("q")
        cache.offer("q", [])
        assert cache.get("q") == []
        assert cache.get("q") is not MISS

    def test_cold_scan_cannot_flush_the_hot_set(self):
        cache = self.make(capacity=2)
        for key in ("hot1", "hot2"):
            for _ in range(10):
                cache.get(key)
            assert cache.offer(key, [key])
        # a stream of once-seen keys: none admitted, nothing evicted
        for i in range(50):
            key = ("cold", i)
            cache.get(key)
            cache.get(key)  # meets the threshold, but...
            cache.offer(key, [key])  # ...must beat the LRU victim
        assert cache.get("hot1") == ["hot1"]
        assert cache.get("hot2") == ["hot2"]
        assert cache.stats()["evictions"] == 0

    def test_hotter_challenger_evicts_the_lru_victim(self):
        cache = self.make(capacity=1)
        cache.get("old")
        cache.get("old")
        cache.offer("old", ["old"])
        for _ in range(8):
            cache.get("new")
        assert cache.offer("new", ["new"])
        assert cache.stats()["evictions"] == 1
        assert cache.get("old") is MISS
        assert cache.get("new") == ["new"]

    def test_clear_drops_answers_but_keeps_popularity(self):
        cache = self.make()
        for _ in range(5):
            cache.get("q")
        cache.offer("q", ["answer"])
        cache.clear()
        assert len(cache) == 0
        assert cache.get("q") is MISS
        # popularity survived: the very next offer re-admits
        assert cache.offer("q", ["answer"])
        assert cache.get("q") == ["answer"]

    def test_metrics_collector_shape(self):
        cache = self.make()
        cache.get("q")
        names = {name for _, name, _, _ in cache.collect_metrics()}
        assert "repro_hotcache_hits_total" in names
        assert "repro_hotcache_resident" in names


# ----------------------------------------------------------------------
# the engine tier
# ----------------------------------------------------------------------
SHARDS = 2


@pytest.fixture(scope="module")
def sharded_world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 16, seed=31, network_scale=9)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("hotcache")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    queries = make_queries(network, trajectories, count=8, seed=17)
    return network, shard_paths, queries


class TestEngineHotcache:
    def test_off_by_default(self, sharded_world, monkeypatch):
        monkeypatch.delenv("REPRO_HOTCACHE", raising=False)
        network, shard_paths, _ = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=1
        ) as engine:
            assert engine.hotcache is None

    def test_cached_answers_are_oracle_identical(self, sharded_world):
        network, shard_paths, queries = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=1
        ) as oracle:
            expected = oracle.run(queries)
        with ShardedQueryEngine(
            shard_paths, network=network, workers=1, hotcache_entries=64
        ) as engine:
            # run 1 establishes popularity, run 2 admits, run 3 hits
            for _ in range(3):
                assert engine.run(queries) == expected
            stats = engine.hotcache.stats()
            assert stats["admissions"] > 0
            assert stats["hits"] > 0

    def test_hits_skip_the_worker_pool_entirely(self, sharded_world):
        network, shard_paths, queries = sharded_world

        class CountingPool:
            """Duck-typed stand-in counting shard submissions."""

            def __init__(self, inner):
                self.inner = inner
                self.submits = 0

            def submit(self, path, specs, **kwargs):
                self.submits += 1
                return self.inner.submit(path, specs, **kwargs)

            def __getattr__(self, name):
                return getattr(self.inner, name)

        with ShardedQueryEngine(
            shard_paths, network=network, workers=2, hotcache_entries=64
        ) as engine:
            counting = CountingPool(engine.pool)
            engine.pool = counting
            first = engine.run(queries)
            engine.run(queries)
            before = counting.submits
            assert engine.run(queries) == first
            assert counting.submits == before  # all answers from cache

    def test_clear_hotcache_forces_recompute(self, sharded_world):
        network, shard_paths, queries = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=1, hotcache_entries=64
        ) as engine:
            for _ in range(3):
                expected = engine.run(queries)
            engine.clear_hotcache()
            assert len(engine.hotcache) == 0
            assert engine.run(queries) == expected
