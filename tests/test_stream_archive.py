"""Appendable segment archives, the live union view, and compaction.

The acceptance test of the streaming subsystem lives here: replaying a
raw-GPS dataset through ``StreamingMapMatcher -> TripSessionizer ->
AppendableArchiveWriter`` and compacting must yield an archive whose
StIU query results match compressing the same matched dataset through
the batch pipeline — and where/when/range queries must already work on
the live (uncompacted) segment view mid-ingestion.
"""

import json

import pytest

from repro.core.compressor import UTCQCompressor
from repro.io.format import read_archive
from repro.io.reader import FileBackedArchive
from repro.mapmatching import MatcherConfig, synthesize_raw_dataset
from repro.network.generators import grid_network
from repro.query.queries import UTCQQueryProcessor
from repro.query.stiu import StIUIndex
from repro.stream import (
    AppendableArchiveWriter,
    LiveArchive,
    SessionConfig,
    StreamArchiveError,
    TripSessionizer,
    compact,
    load_manifest,
    replay,
)
from repro.trajectories.datasets import CD

MATCHER = MatcherConfig(sigma=20.0, search_radius=50.0)


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing=100.0)


@pytest.fixture(scope="module")
def feeds(network):
    return synthesize_raw_dataset(
        network, CD.generation_config(), 10, seed=51, noise_sigma=15.0
    )


@pytest.fixture(scope="module")
def streamed(network, feeds, tmp_path_factory):
    """Replay the feeds into a stream archive; returns (dir, trips)."""
    directory = tmp_path_factory.mktemp("stream") / "fleet"
    trips = []
    sessionizer = TripSessionizer(
        network, MATCHER, SessionConfig(gap_timeout=100_000.0)
    )
    with AppendableArchiveWriter(
        directory,
        network,
        default_interval=CD.default_interval,
        segment_max_trajectories=3,
    ) as writer:
        replay(sessionizer, feeds, writer=writer, on_trip=trips.append)
    return directory, trips


class TestWriter:
    def test_segments_rotate_and_manifest_tracks_them(self, streamed):
        directory, trips = streamed
        manifest = load_manifest(directory)
        assert manifest["trajectory_count"] == len(trips)
        names = [entry["name"] for entry in manifest["segments"]]
        assert len(names) == -(-len(trips) // 3)  # ceil division
        assert names == sorted(names)
        covered = []
        for entry in manifest["segments"]:
            assert (directory / "segments" / entry["name"]).exists()
            covered.extend(
                range(
                    entry["min_trajectory_id"],
                    entry["max_trajectory_id"] + 1,
                )
            )
        assert covered == [t.trajectory_id for t in trips]

    def test_each_segment_is_a_valid_archive(self, streamed):
        directory, _ = streamed
        manifest = load_manifest(directory)
        for entry in manifest["segments"]:
            with FileBackedArchive.open(
                directory / "segments" / entry["name"]
            ) as segment:
                assert segment.trajectory_count == entry["trajectory_count"]

    def test_writer_rejects_non_monotonic_ids(self, network, tmp_path):
        writer = AppendableArchiveWriter(
            tmp_path / "w", network, default_interval=10
        )
        with pytest.raises(StreamArchiveError):
            writer.append(_trip_with_id(network, -1))

    def test_reopen_resumes_appending(self, network, feeds, tmp_path):
        directory = tmp_path / "resumable"
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100_000.0)
        )
        with AppendableArchiveWriter(
            directory, network, default_interval=CD.default_interval,
            segment_max_trajectories=2,
        ) as writer:
            replay(sessionizer, feeds[:4], writer=writer)
            first_segments = writer.segment_count
        # a fresh writer on the same directory picks up where we left off
        with AppendableArchiveWriter(
            directory, network, default_interval=CD.default_interval,
            segment_max_trajectories=2,
        ) as writer:
            sealed = replay(sessionizer, feeds[4:], writer=writer)
            assert writer.segment_count > first_segments
        manifest = load_manifest(directory)
        assert manifest["trajectory_count"] == sessionizer.counters.trips_sealed
        # ids stayed strictly increasing across the restart
        ids = [
            entry["min_trajectory_id"] for entry in manifest["segments"]
        ]
        assert ids == sorted(ids)
        assert sealed.trips_sealed > 0

    def test_reopen_with_different_params_is_refused(self, network, tmp_path):
        directory = tmp_path / "locked"
        AppendableArchiveWriter(
            directory, network, default_interval=10
        ).close()
        with pytest.raises(StreamArchiveError):
            AppendableArchiveWriter(
                directory, network, default_interval=20
            )


class TestLiveArchive:
    def test_union_view_serves_queries_mid_ingestion(
        self, network, feeds, tmp_path
    ):
        """Seal part of the feed, query the live view, keep ingesting,
        refresh, and see the new segments — ingestion never stops."""
        directory = tmp_path / "live"
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100_000.0)
        )
        writer = AppendableArchiveWriter(
            directory, network, default_interval=CD.default_interval,
            segment_max_trajectories=2,
        )
        replay(sessionizer, feeds[:5], writer=writer)

        live = LiveArchive(directory)
        mid_count = live.trajectory_count
        assert mid_count > 0
        index = StIUIndex(network, live)
        processor = UTCQQueryProcessor(network, live, index)
        answered = 0
        for trajectory_id in live.trajectory_ids():
            trajectory = live.trajectory(trajectory_id)
            t = (trajectory.start_time + trajectory.end_time) // 2
            results = processor.where(trajectory_id, t, alpha=0.1)
            answered += bool(results)
        assert answered > 0

        # ingestion continues while the live view is open
        replay(sessionizer, feeds[5:], writer=writer)
        writer.close()
        added = live.refresh()
        assert added > 0
        assert live.trajectory_count > mid_count
        assert live.trajectory_count == load_manifest(directory)[
            "trajectory_count"
        ]
        live.close()

    def test_live_stats_aggregate_segments(self, streamed):
        directory, _ = streamed
        with LiveArchive(directory) as live:
            stats = live.stats
            assert stats.compressed.total > 0
            # the manifest records the same aggregate
            manifest = load_manifest(directory)
            assert stats.original.total == sum(manifest["stats"][:6])
            assert stats.compressed.total == sum(manifest["stats"][6:])

    def test_unknown_trajectory_raises_keyerror(self, streamed):
        directory, trips = streamed
        with LiveArchive(directory) as live:
            with pytest.raises(KeyError):
                live.trajectory(max(t.trajectory_id for t in trips) + 99)


class TestCompaction:
    def test_compacted_file_is_canonical_and_complete(
        self, streamed, tmp_path
    ):
        directory, trips = streamed
        output = tmp_path / "fleet.utcq"
        size, count = compact(directory, output)
        assert size == output.stat().st_size
        assert count == len(trips)
        archive = read_archive(output)  # verifies every record CRC
        assert [t.trajectory_id for t in archive.trajectories] == [
            t.trajectory_id for t in trips
        ]
        assert archive.params.default_interval == CD.default_interval

    def test_compacted_queries_match_live_view(
        self, network, streamed, tmp_path
    ):
        directory, trips = streamed
        output = tmp_path / "same.utcq"
        compact(directory, output)
        with LiveArchive(directory) as live, FileBackedArchive.open(
            output
        ) as compacted:
            live_processor = UTCQQueryProcessor(
                network, live, StIUIndex(network, live)
            )
            compacted_processor = UTCQQueryProcessor(
                network, compacted, StIUIndex(network, compacted)
            )
            for trip in trips:
                t = (trip.start_time + trip.end_time) // 2
                assert live_processor.where(
                    trip.trajectory_id, t, alpha=0.1
                ) == compacted_processor.where(
                    trip.trajectory_id, t, alpha=0.1
                )


class TestEndToEndAcceptance:
    def test_streaming_pipeline_matches_batch_pipeline(
        self, network, streamed, tmp_path
    ):
        """The issue's acceptance criterion: streaming ingest + compact
        must answer where/when/range queries identically to the batch
        pipeline run over the same matched dataset."""
        directory, trips = streamed
        output = tmp_path / "streamed.utcq"
        compact(directory, output)
        streamed_archive = read_archive(output)

        # batch pipeline over the *same* uncertain trajectories, using
        # the same params the writer fixed up front
        compressor = UTCQCompressor(
            network=network, default_interval=CD.default_interval
        )
        params = streamed_archive.params
        batch_archive = type(streamed_archive)(
            params=params,
            trajectories=[
                compressor.compress_trajectory(
                    trip, params, compressor.trajectory_rng(trip.trajectory_id)
                )
                for trip in trips
            ],
        )

        streamed_processor = UTCQQueryProcessor(
            network, streamed_archive, StIUIndex(network, streamed_archive)
        )
        batch_processor = UTCQQueryProcessor(
            network, batch_archive, StIUIndex(network, batch_archive)
        )

        from repro.network.grid import Rect

        answered_where = answered_when = 0
        for trip in trips:
            t = (trip.start_time + trip.end_time) // 2
            where_streamed = streamed_processor.where(
                trip.trajectory_id, t, alpha=0.1
            )
            assert where_streamed == batch_processor.where(
                trip.trajectory_id, t, alpha=0.1
            )
            answered_where += bool(where_streamed)

            location = trip.best_instance().locations[0]
            rd = min(
                location.ndist / network.edge_length(*location.edge), 0.999
            )
            when_streamed = streamed_processor.when(
                trip.trajectory_id, location.edge, rd, alpha=0.1
            )
            assert when_streamed == batch_processor.when(
                trip.trajectory_id, location.edge, rd, alpha=0.1
            )
            answered_when += bool(when_streamed)

            x, y = location.position(network)
            rect = Rect(x - 150, y - 150, x + 150, y + 150)
            assert streamed_processor.range(
                rect, trip.times[0], alpha=0.1
            ) == batch_processor.range(rect, trip.times[0], alpha=0.1)

        assert answered_where > 0
        assert answered_when > 0

    def test_streamed_records_are_byte_identical_to_batch(
        self, network, streamed, tmp_path
    ):
        """Stronger than query equality: with identical params the
        streaming writer's compressed records are the batch
        compressor's bytes, record for record."""
        from repro.io.format import encode_trajectory_record

        directory, trips = streamed
        output = tmp_path / "bytes.utcq"
        compact(directory, output)
        streamed_archive = read_archive(output)
        compressor = UTCQCompressor(
            network=network, default_interval=CD.default_interval
        )
        for trip, stored in zip(trips, streamed_archive.trajectories):
            expected = compressor.compress_trajectory(
                trip,
                streamed_archive.params,
                compressor.trajectory_rng(trip.trajectory_id),
            )
            assert encode_trajectory_record(
                stored
            ) == encode_trajectory_record(expected)


def _trip_with_id(network, trajectory_id):
    """A minimal valid uncertain trajectory for writer edge cases."""
    from repro.trajectories.model import (
        MappedLocation,
        TrajectoryInstance,
        UncertainTrajectory,
    )

    edge = next(iter(network.edges()))
    key = (edge.start, edge.end)
    instance = TrajectoryInstance(
        path=[key],
        locations=[MappedLocation(key, 0.0), MappedLocation(key, 1.0)],
        probability=1.0,
    )
    return UncertainTrajectory(trajectory_id, [instance], [0, 10])


def test_reopen_with_different_provenance_is_refused(network, tmp_path):
    """Params can coincide across source networks; provenance is the
    identity check that stops mixed-network archives."""
    directory = tmp_path / "mixed"
    AppendableArchiveWriter(
        directory, network, default_interval=10,
        provenance={"profile": "CD", "dataset_seed": "11"},
    ).close()
    with pytest.raises(StreamArchiveError, match="provenance"):
        AppendableArchiveWriter(
            directory, network, default_interval=10,
            provenance={"profile": "CD", "dataset_seed": "99"},
        )
    # no provenance given -> inherit the archive's and proceed
    writer = AppendableArchiveWriter(directory, network, default_interval=10)
    assert writer.provenance["dataset_seed"] == "11"
    writer.close()
