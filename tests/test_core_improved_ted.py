"""Tests for the improved TED representation (§4.1, Tables 2-3)."""

import pytest

from repro.core.improved_ted import (
    InstanceTuple,
    decode_instance,
    edge_prefix,
    encode_instance,
    path_vertices,
    restore_time_flags,
)
from repro.network.generators import grid_network
from repro.network.graph import RoadNetwork
from repro.trajectories.model import MappedLocation, TrajectoryInstance


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0)


@pytest.fixture
def paper_like_instance(network):
    """An instance with a point-free middle edge and a doubled edge,
    exercising both the 0-repeat and 0-flag cases of Table 2."""
    path = [(0, 1), (1, 2), (2, 6), (6, 7)]
    locations = [
        MappedLocation((0, 1), 87.5),
        MappedLocation((2, 6), 50.0),
        MappedLocation((2, 6), 75.0),
        MappedLocation((6, 7), 12.5),
    ]
    return TrajectoryInstance(path=path, locations=locations, probability=0.6)


class TestEncodeInstance:
    def test_edge_numbers_follow_path(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        assert encoded.start_vertex == 0
        # four path edges plus one repeat marker for the doubled edge
        assert len(encoded.edge_numbers) == 5
        assert encoded.edge_numbers[0] == network.out_number(0, 1)
        assert 0 in encoded.edge_numbers  # the repeat marker

    def test_time_flags_mark_point_entries(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        # edges: (0,1) one point, (1,2) none, (2,6) two points, (6,7) one
        assert encoded.time_flags == (1, 0, 1, 1, 1)

    def test_repeat_marker_sits_after_its_edge(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        # E = [no(0,1), no(1,2), no(2,6), 0, no(6,7)]
        assert encoded.edge_numbers[3] == 0
        assert encoded.edge_numbers[2] == network.out_number(2, 6)

    def test_distances_are_relative(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        assert encoded.relative_distances == pytest.approx(
            (0.875, 0.5, 0.75, 0.125)
        )

    def test_probability_carried(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        assert encoded.probability == 0.6


class TestInstanceTupleValidation:
    def test_flag_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            InstanceTuple(0, (1, 2), (0.5,), (1,), 1.0)

    def test_flag_count_must_match_distances(self):
        with pytest.raises(ValueError):
            InstanceTuple(0, (1, 2), (0.5,), (1, 1), 1.0)

    def test_first_flag_must_be_one(self):
        with pytest.raises(ValueError):
            InstanceTuple(0, (1, 2), (0.5,), (0, 1), 1.0)

    def test_leading_repeat_marker_rejected(self):
        with pytest.raises(ValueError):
            InstanceTuple(0, (0, 1), (0.5, 0.5), (1, 1), 1.0)

    def test_trimmed_flags_drop_first_and_last(self):
        encoded = InstanceTuple(0, (1, 2, 1), (0.5, 0.5), (1, 0, 1), 1.0)
        assert encoded.trimmed_time_flags == (0,)
        assert restore_time_flags(encoded.trimmed_time_flags) == (1, 0, 1)

    def test_point_and_edge_counts(self):
        encoded = InstanceTuple(0, (1, 2, 1), (0.5, 0.5), (1, 0, 1), 1.0)
        assert encoded.point_count == 2
        assert encoded.edge_sequence_length == 3


class TestRoundTrip:
    def test_encode_decode_round_trip(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        decoded = decode_instance(network, encoded)
        assert decoded.path == paper_like_instance.path
        assert decoded.probability == paper_like_instance.probability
        assert decoded.location_edge_indices == (
            paper_like_instance.location_edge_indices
        )
        for got, expected in zip(decoded.locations, paper_like_instance.locations):
            assert got.edge == expected.edge
            assert got.ndist == pytest.approx(expected.ndist, abs=1e-6)

    def test_round_trip_single_edge_two_points(self, network):
        instance = TrajectoryInstance(
            path=[(0, 1)],
            locations=[MappedLocation((0, 1), 10.0), MappedLocation((0, 1), 60.0)],
            probability=1.0,
        )
        encoded = encode_instance(network, instance)
        assert encoded.edge_numbers[1] == 0
        decoded = decode_instance(network, encoded)
        assert decoded.path == instance.path
        assert decoded.locations[1].ndist == pytest.approx(60.0)


class TestPartialHelpers:
    def test_path_vertices(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        vertices = path_vertices(network, encoded)
        assert vertices == [0, 1, 2, 6, 7]

    def test_edge_prefix(self, network, paper_like_instance):
        encoded = encode_instance(network, paper_like_instance)
        assert edge_prefix(network, encoded, 2) == [(0, 1), (1, 2)]
        # prefix of 4 entries includes the repeat marker: still 3 edges
        assert edge_prefix(network, encoded, 4) == [(0, 1), (1, 2), (2, 6)]
        assert edge_prefix(network, encoded, 5) == paper_like_instance.path
