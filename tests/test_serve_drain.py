"""Graceful drain, end to end: SIGTERM with requests in flight.

Two levels:

* :class:`QueryService.drain` as a unit — waits out in-flight work,
  then closes, and is idempotent;
* ``repro serve`` as a subprocess — SIGTERM lands while wire requests
  are in flight, and the contract is pinned from the outside: every
  request completes or fails *typed* (never hangs, never a wrong
  answer), the process exits 0 with a drain banner, the worker
  processes are gone, no ``repro-shm-*`` slab survives in
  ``/dev/shm``, and a post-drain connect is refused outright.
"""

import os
import signal
import socket
import subprocess
import sys
import threading
import time

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.query import StIUIndex, ShardedQueryEngine, save_index
from repro.serve import (
    ChaosProxy,
    DeadlineExceeded,
    Overloaded,
    QueryService,
    ServiceClosedError,
    ServiceConfig,
    WireClient,
    WireClosedError,
    WireServerError,
    delay_fault,
)
from repro.trajectories.datasets import load_dataset

from test_query_engine import make_queries

PROFILE, COUNT, SEED, SCALE = "CD", 16, 61, 10
SHARDS = 2


@pytest.fixture(scope="module")
def drain_world(tmp_path_factory):
    network, trajectories = load_dataset(
        PROFILE, COUNT, seed=SEED, network_scale=SCALE
    )
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("drain")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    queries = make_queries(network, trajectories, count=10, seed=5)
    with ShardedQueryEngine(shard_paths, network=network, workers=1) as ref:
        expected = ref.run(queries)
    return network, shard_paths, queries, expected


# ----------------------------------------------------------------------
# QueryService.drain as a unit
# ----------------------------------------------------------------------
class TestServiceDrain:
    def test_idle_drain_is_clean_and_closes(self, drain_world):
        network, shard_paths, queries, _ = drain_world
        service = QueryService(
            shard_paths,
            network=network,
            workers=2,
            config=ServiceConfig(deadline=30.0, health_interval=None),
        )
        assert service.drain(timeout=5.0) is True
        with pytest.raises(ServiceClosedError):
            service.submit_many(queries)
        assert service.drain(timeout=1.0) is True  # idempotent

    def test_drain_waits_for_in_flight_work(self, drain_world):
        network, shard_paths, queries, expected = drain_world
        holder = []

        def wrap(pool):
            proxy = ChaosProxy(pool)
            holder.append(proxy)
            return proxy

        service = QueryService(
            shard_paths,
            network=network,
            workers=2,
            pool_wrapper=wrap,
            config=ServiceConfig(deadline=30.0, health_interval=None),
        )
        holder[0].arm(delay_fault(0.5))
        responses = []
        worker = threading.Thread(
            target=lambda: responses.append(service.submit_many(queries)),
            daemon=True,
        )
        worker.start()
        deadline = time.monotonic() + 5.0
        while (
            service.admission.in_flight == 0
            and time.monotonic() < deadline
        ):
            time.sleep(0.005)
        assert service.admission.in_flight == 1
        assert service.drain(timeout=10.0) is True
        worker.join(timeout=10.0)
        assert not worker.is_alive()
        assert responses and responses[0].ok
        assert responses[0].results == expected


# ----------------------------------------------------------------------
# SIGTERM against the real `repro serve` process
# ----------------------------------------------------------------------
def _shm_slabs() -> set:
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {entry for entry in entries if entry.startswith("repro-shm-")}


def _children_of(pid: int) -> list:
    try:
        with open(f"/proc/{pid}/task/{pid}/children") as stream:
            return [int(child) for child in stream.read().split()]
    except OSError:
        return []


def _alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - container quirk
        return True
    # a zombie is reaped, not alive; check its state
    try:
        with open(f"/proc/{pid}/stat") as stream:
            return stream.read().split(")")[-1].split()[0] != "Z"
    except OSError:
        return False


class TestSigtermDrain:
    TYPED = (
        Overloaded,
        DeadlineExceeded,
        WireClosedError,
        WireServerError,
        ConnectionError,
        OSError,
    )

    def test_sigterm_with_requests_in_flight(self, drain_world, tmp_path):
        _, shard_paths, queries, expected = drain_world
        slabs_before = _shm_slabs()
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                *[str(path) for path in shard_paths],
                "--port", "0", "--workers", "2", "--deadline", "10",
                "--profile", PROFILE, "--dataset-seed", str(SEED),
                "--network-scale", str(SCALE),
            ],
            cwd="/root/repo",
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving" in banner, banner
            port = int(banner.split(" on ", 1)[1].split()[0].split(":")[1])
            workers = _children_of(process.pid)

            outcomes = []
            lock = threading.Lock()

            def hammer(which: int) -> None:
                try:
                    with WireClient(
                        "127.0.0.1", port,
                        client_id=f"drain-{which}",
                        request_timeout=15.0,
                        max_attempts=1,
                        seed=which,
                    ) as client:
                        result = client.request(queries)
                    with lock:
                        outcomes.append(("ok", result.results))
                except self.TYPED as error:
                    with lock:
                        outcomes.append(("typed", type(error).__name__))

            threads = [
                threading.Thread(target=hammer, args=(which,), daemon=True)
                for which in range(3)
            ]
            for thread in threads:
                thread.start()
            time.sleep(0.15)  # let requests reach the wire
            process.send_signal(signal.SIGTERM)
            for thread in threads:
                thread.join(timeout=30.0)
                assert not thread.is_alive(), "request hung through drain"

            stdout, _ = process.communicate(timeout=30.0)
            assert process.returncode == 0, stdout
            assert "drain: stopped accepting" in stdout
            assert "drained" in stdout

            # every request completed or failed typed; completed ones
            # are oracle-identical
            assert len(outcomes) == 3
            for kind, payload in outcomes:
                if kind == "ok":
                    assert payload == expected

            # no orphan workers survive the drain
            deadline = time.monotonic() + 5.0
            while (
                any(_alive(pid) for pid in workers)
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            leftovers = [pid for pid in workers if _alive(pid)]
            assert not leftovers, f"orphan workers: {leftovers}"

            # no leaked shm slabs
            assert _shm_slabs() - slabs_before == set()

            # the port is dark: connect is refused, not black-holed
            with pytest.raises(OSError):
                socket.create_connection(("127.0.0.1", port), timeout=1.0)
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate(timeout=10.0)
