"""Trip sessionization: cut policies, fleet interleaving, accounting."""

import random

import pytest

from repro.mapmatching import MatcherConfig, synthesize_raw_trajectory
from repro.network.generators import grid_network
from repro.stream import SessionConfig, TripSessionizer
from repro.trajectories.datasets import CD
from repro.trajectories.model import RawPoint, RawTrajectory

MATCHER = MatcherConfig(sigma=20.0, search_radius=50.0)


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing=100.0)


def feed_of(network, seed, *, offset=0):
    rng = random.Random(seed)
    raw = synthesize_raw_trajectory(
        network, CD.generation_config(), rng, noise_sigma=10.0
    )
    if offset:
        raw = RawTrajectory(
            tuple(RawPoint(p.x, p.y, p.t + offset) for p in raw)
        )
    return raw


class TestConfigValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SessionConfig(gap_timeout=0)
        with pytest.raises(ValueError):
            SessionConfig(max_duration=-1)
        with pytest.raises(ValueError):
            SessionConfig(min_points=0)


class TestCuts:
    def test_max_duration_cut(self, network):
        raw = feed_of(network, 41)
        span = raw.times[-1] - raw.times[0]
        assert span > 40  # the cut must actually trigger mid-feed
        sessionizer = TripSessionizer(
            network, MATCHER,
            SessionConfig(
                gap_timeout=10_000.0, max_duration=span / 2, min_points=1
            ),
        )
        sealed = []
        for point in raw:
            sealed.extend(sessionizer.observe("v", point))
        sealed.extend(sessionizer.flush())
        assert sessionizer.counters.cuts["duration"] >= 1
        assert len(sealed) >= 2
        # the pieces partition the accepted points
        total = sum(len(t.times) for t in sealed)
        assert total == len(raw)
        for trip in sealed:
            assert trip.times[-1] - trip.times[0] <= span / 2

    def test_min_points_discards_single_point_trips(self, network):
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=60.0, min_points=2)
        )
        # two fixes separated by a huge gap: each trip has one point
        sessionizer.observe("v", RawPoint(50.0, 10.0, 0))
        sealed = sessionizer.observe("v", RawPoint(250.0, 10.0, 1_000))
        assert sealed == []
        assert sessionizer.counters.trips_discarded == 1  # the gap-cut one
        assert sessionizer.flush() == []
        assert sessionizer.counters.trips_discarded == 2  # + the flushed one
        assert sessionizer.counters.cuts["gap"] == 1
        assert sessionizer.counters.cuts["flush"] == 1

    def test_min_points_one_keeps_single_point_trips(self, network):
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=60.0, min_points=1)
        )
        sessionizer.observe("v", RawPoint(50.0, 10.0, 0))
        sealed = sessionizer.flush()
        assert len(sealed) == 1
        assert len(sealed[0].times) == 1


class TestFleet:
    def test_vehicles_are_isolated(self, network):
        """Interleaving two vehicles' feeds must give the same trips as
        feeding each alone."""
        raw_a = feed_of(network, 42)
        raw_b = feed_of(network, 43, offset=raw_a.times[0] - 1000)
        config = SessionConfig(gap_timeout=100_000.0)

        interleaved = TripSessionizer(network, MATCHER, config)
        events = sorted(
            [("a", p) for p in raw_a] + [("b", p) for p in raw_b],
            key=lambda item: item[1].t,
        )
        sealed = []
        for vehicle, point in events:
            sealed.extend(interleaved.observe(vehicle, point))
        sealed.extend(interleaved.flush())
        assert len(sealed) == 2
        by_first_time = sorted(sealed, key=lambda t: t.times[0])

        for raw, trip in zip(
            sorted([raw_a, raw_b], key=lambda r: r.times[0]), by_first_time
        ):
            solo = TripSessionizer(network, MATCHER, config)
            expected = []
            for point in raw:
                expected.extend(solo.observe("x", point))
            expected.extend(solo.flush())
            assert len(expected) == 1
            assert trip.times == expected[0].times
            assert [i.signature() for i in trip.instances] == [
                i.signature() for i in expected[0].instances
            ]

    def test_ids_are_unique_and_monotonic(self, network):
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100_000.0),
            start_id=50,
        )
        for seed, vehicle in ((44, "a"), (45, "b"), (46, "c")):
            for point in feed_of(network, seed):
                sessionizer.observe(vehicle, point)
        sealed = sessionizer.flush()
        ids = [t.trajectory_id for t in sealed]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)
        assert min(ids) == 50

    def test_on_seal_callback_sees_every_trip(self, network):
        seen = []
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100_000.0),
            on_seal=seen.append,
        )
        for point in feed_of(network, 47):
            sessionizer.observe("v", point)
        sealed = sessionizer.flush()
        assert seen == sealed

    def test_estimate_tracks_active_vehicle(self, network):
        sessionizer = TripSessionizer(network, MATCHER)
        assert sessionizer.estimate("ghost") is None
        raw = feed_of(network, 48)
        for point in raw:
            sessionizer.observe("v", point)
        estimate = sessionizer.estimate("v")
        assert estimate is not None
        _, location = estimate
        assert network.edge_length(*location.edge) >= location.ndist


class TestIdleEviction:
    def test_evict_idle_seals_silent_vehicles(self, network):
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100.0)
        )
        raw = feed_of(network, 60)
        for point in raw:
            sessionizer.observe("gone", point)
        # another vehicle keeps the clock advancing far past the timeout
        late = RawPoint(50.0, 10.0, raw.times[-1] + 1_000)
        sessionizer.observe("here", late)
        sealed = sessionizer.evict_idle()
        assert [t.times for t in sealed] == [list(raw.times)]
        assert sessionizer.counters.cuts["gap"] == 1
        # the evicted vehicle's state is gone; the live one remains
        assert sessionizer.estimate("gone") is None
        assert sessionizer.estimate("here") is not None

    def test_eviction_matches_gap_cut_output(self, network):
        """Evicting then resuming must produce the same trips as the
        plain gap cut would have."""
        raw = feed_of(network, 61)
        base = feed_of(network, 62)
        # a timeout above every intra-feed delta, so only the inter-feed
        # silence cuts
        timeout = float(
            max(
                b - a
                for feed in (raw, base)
                for a, b in zip(feed.times, feed.times[1:])
            )
            + 10
        )
        resumed = feed_of(
            network, 62, offset=raw.times[-1] + int(timeout) + 200
        )

        evicting = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=timeout)
        )
        sealed_evicting = []
        for point in raw:
            evicting.observe("v", point)
        sealed_evicting.extend(
            evicting.evict_idle(raw.times[-1] + int(timeout) + 100)
        )
        for point in resumed:
            sealed_evicting.extend(evicting.observe("v", point))
        sealed_evicting.extend(evicting.flush())

        plain = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=timeout)
        )
        sealed_plain = []
        for point in list(raw) + list(resumed):
            sealed_plain.extend(plain.observe("v", point))
        sealed_plain.extend(plain.flush())

        assert [t.times for t in sealed_evicting] == [
            t.times for t in sealed_plain
        ]
        assert [
            [i.signature() for i in t.instances] for t in sealed_evicting
        ] == [[i.signature() for i in t.instances] for t in sealed_plain]

    def test_automatic_eviction_via_interval(self, network):
        sessionizer = TripSessionizer(
            network, MATCHER, SessionConfig(gap_timeout=100.0),
            evict_interval=1,
        )
        raw = feed_of(network, 63)
        trips = []
        for point in raw:
            trips.extend(sessionizer.observe("gone", point))
        # a lone fix from another vehicle, far in the future, triggers
        # the sweep that seals the silent vehicle's trip
        trips.extend(
            sessionizer.observe(
                "here", RawPoint(50.0, 10.0, raw.times[-1] + 10_000)
            )
        )
        assert len(trips) == 1
        assert trips[0].times == list(raw.times)
        assert sessionizer.active_vehicle_count == 1  # only "here"
