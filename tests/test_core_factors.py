"""Tests for referential factors, validated against the paper's examples."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits.bitio import BitReader, BitWriter
from repro.core.factors import (
    EdgeFactor,
    FlagFactor,
    apply_distance_patches,
    apply_edge_factors,
    apply_flag_factors,
    distance_patches,
    factorize_edges,
    factorize_flags,
    read_distance_patches,
    read_edge_factors,
    read_flag_stream,
    write_distance_patches,
    write_edge_factors,
    write_flag_stream,
)

# the paper's running example (Table 3)
E_TU11 = [1, 2, 1, 2, 2, 0, 4, 1, 0]  # reference Ref^1_1
E_TU12 = [1, 1, 1, 2, 2, 0, 4, 1, 0]  # Nref^1_11
E_TU13 = [1, 2, 1, 2, 2, 0, 4, 1, 2]  # Nref^1_12
E_TU14 = [3, 2, 1, 2, 2]  # §4.2 case B example


class TestPaperEdgeFactorizations:
    def test_table4_nref11(self):
        """Table 4: ComE(Nref^1_11, Ref^1_1) = <(0,1,1),(2,7)>."""
        factors = factorize_edges(E_TU12, E_TU11)
        assert factors == [
            EdgeFactor(0, 1, 1),
            EdgeFactor(2, 7, None),
        ]

    def test_table4_nref12(self):
        """Table 4: ComE(Nref^1_12, Ref^1_1) = <(0,8,2)>."""
        factors = factorize_edges(E_TU13, E_TU11)
        assert factors == [EdgeFactor(0, 8, 2)]

    def test_case_b_out_of_reference_symbol(self):
        """§4.2 case B: E(Tu^1_4) = <3,2,1,2,2> has 3 not in the reference;
        the first factor is (S=9, M=3)."""
        factors = factorize_edges(E_TU14, E_TU11)
        assert factors[0] == EdgeFactor(9, None, 3)

    def test_identical_sequences_single_factor(self):
        factors = factorize_edges(E_TU11, E_TU11)
        assert factors == [EdgeFactor(0, 9, None)]

    @pytest.mark.parametrize("target", [E_TU12, E_TU13, E_TU14, E_TU11])
    def test_factors_reconstruct_target(self, target):
        factors = factorize_edges(target, E_TU11)
        assert apply_edge_factors(factors, E_TU11) == target


class TestEdgeFactorValidation:
    def test_factor_needs_content(self):
        with pytest.raises(ValueError):
            EdgeFactor(0, None, None)

    def test_consumed_counts(self):
        assert EdgeFactor(0, 5, 1).consumed == 6
        assert EdgeFactor(0, 5, None).consumed == 5
        assert EdgeFactor(9, None, 3).consumed == 1

    def test_apply_rejects_overlong_factor(self):
        with pytest.raises(ValueError):
            apply_edge_factors([EdgeFactor(5, 10, None)], E_TU11)


class TestEdgeFactorSerialization:
    def _round_trip(self, target, reference, symbol_width=4):
        factors = factorize_edges(target, reference)
        writer = BitWriter()
        write_edge_factors(writer, factors, len(reference), symbol_width)
        reader = BitReader.from_writer(writer)
        decoded = read_edge_factors(reader, len(reference), symbol_width)
        assert reader.remaining == 0
        return decoded

    @pytest.mark.parametrize("target", [E_TU12, E_TU13, E_TU14, E_TU11])
    def test_round_trip(self, target):
        decoded = self._round_trip(target, E_TU11)
        assert apply_edge_factors(decoded, E_TU11) == target

    def test_empty_factor_list(self):
        writer = BitWriter()
        write_edge_factors(writer, [], 9, 4)
        reader = BitReader.from_writer(writer)
        assert read_edge_factors(reader, 9, 4) == []

    def test_similar_sequences_encode_smaller(self):
        similar = BitWriter()
        write_edge_factors(
            similar, factorize_edges(E_TU13, E_TU11), len(E_TU11), 4
        )
        different = BitWriter()
        write_edge_factors(
            different,
            factorize_edges([3, 3, 5, 3, 5, 3, 5, 5, 3], E_TU11),
            len(E_TU11),
            4,
        )
        assert len(similar) < len(different)


class TestFlagFactors:
    def test_identical_is_empty(self):
        """Table 4: ComT'(Nref^1_12, Ref^1_1) = empty set."""
        ref = [0, 1, 0, 1, 1, 1, 1]
        assert factorize_flags(ref, ref) == []

    def test_paper_nref11_flags(self):
        """T'(Tu^1_2) vs T'(Tu^1_1) from Table 3 (untrimmed here)."""
        ref = [0, 1, 0, 1, 1, 1, 1]
        target = [1, 0, 0, 1, 1, 1, 1]
        factors = factorize_flags(target, ref)
        assert factors is not None
        assert apply_flag_factors(factors, ref) == target

    def test_inferred_mismatch_reconstruction(self):
        ref = [1, 1, 0, 1, 0, 1]
        target = [1, 1, 1, 1, 0, 1]
        factors = factorize_flags(target, ref)
        assert factors is not None
        assert apply_flag_factors(factors, ref) == target

    def test_degenerate_case_returns_none(self):
        # ref "01", target "011": only match runs to the reference end
        assert factorize_flags([0, 1, 1], [0, 1]) is None

    def test_apply_empty_copies_reference(self):
        ref = [1, 0, 1]
        assert apply_flag_factors([], ref) == ref

    def test_apply_rejects_non_inferable_nonfinal(self):
        with pytest.raises(ValueError):
            apply_flag_factors(
                [FlagFactor(0, 3, None), FlagFactor(0, 1, None)], [1, 0, 1]
            )


class TestFlagStreamSerialization:
    @pytest.mark.parametrize(
        "target,ref",
        [
            ([0, 1, 0, 1, 1], [0, 1, 0, 1, 1]),
            ([1, 0, 0, 1, 1], [0, 1, 0, 1, 1]),
            ([0, 1, 1], [0, 1]),  # raw fallback
            ([], []),
            ([1], [0]),
            ([0, 0, 0, 0], [1, 1, 1, 1]),
        ],
    )
    def test_round_trip(self, target, ref):
        writer = BitWriter()
        write_flag_stream(writer, target, ref)
        reader = BitReader.from_writer(writer)
        assert read_flag_stream(reader, ref, len(target)) == target
        assert reader.remaining == 0

    def test_identical_flags_cost_almost_nothing(self):
        ref = [1, 0, 1, 1, 0, 1, 1, 1, 0, 1] * 4
        writer = BitWriter()
        write_flag_stream(writer, ref, ref)
        assert len(writer) < 6  # mode bit + EG(0)


class TestDistancePatches:
    def test_no_patches_when_within_eta(self):
        target = [0.5, 0.25, 0.75]
        assert distance_patches(target, target, 1 / 128) == []

    def test_patches_where_needed(self):
        reference = [0.5, 0.25, 0.75]
        target = [0.5, 0.9, 0.75]
        patches = distance_patches(target, reference, 1 / 128)
        assert len(patches) == 1
        assert patches[0][0] == 1
        assert patches[0][1] == 0.9

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            distance_patches([0.5], [0.5, 0.6], 1 / 128)

    def test_round_trip_with_serialization(self):
        reference = [0.1, 0.2, 0.3, 0.4]
        target = [0.1, 0.8, 0.3, 0.05]
        patches = distance_patches(target, reference, 1 / 128)
        writer = BitWriter()
        write_distance_patches(writer, patches, len(reference), 1 / 128)
        reader = BitReader.from_writer(writer)
        decoded_patches = read_distance_patches(reader, len(reference), 1 / 128)
        result = apply_distance_patches(reference, decoded_patches)
        for got, expected in zip(result, target):
            assert abs(got - expected) <= 1 / 128 + 1e-9

    def test_table4_paper_example(self):
        """Table 4: ComD(Nref^1_12, Ref^1_1) = <(6, 0.5)>."""
        d_ref = [0.875, 0.25, 0.5, 0.875, 0.5, 0.0, 0.875]
        d_nref = [0.875, 0.25, 0.5, 0.875, 0.5, 0.0, 0.5]
        patches = distance_patches(d_nref, d_ref, 1 / 128)
        assert patches == [(6, 0.5)]


@given(
    st.lists(st.integers(0, 7), min_size=1, max_size=40),
    st.lists(st.integers(0, 7), min_size=1, max_size=40),
)
def test_property_edge_factors_lossless(target, reference):
    factors = factorize_edges(target, reference)
    assert apply_edge_factors(factors, reference) == target
    writer = BitWriter()
    write_edge_factors(writer, factors, len(reference), 3)
    decoded = read_edge_factors(
        BitReader.from_writer(writer), len(reference), 3
    )
    assert apply_edge_factors(decoded, reference) == target


@given(
    st.lists(st.integers(0, 1), max_size=40),
    st.lists(st.integers(0, 1), max_size=40),
)
def test_property_flag_stream_lossless(target, reference):
    writer = BitWriter()
    write_flag_stream(writer, target, reference)
    reader = BitReader.from_writer(writer)
    assert read_flag_stream(reader, reference, len(target)) == target


@given(
    st.lists(st.floats(0, 0.999), min_size=1, max_size=30),
    st.data(),
)
def test_property_distance_patches_error_bounded(reference, data):
    eta = 1 / 128
    target = [
        data.draw(st.floats(0, 0.999)) if data.draw(st.booleans()) else value
        for value in reference
    ]
    patches = distance_patches(target, reference, eta)
    result = apply_distance_patches(reference, patches)
    for got, expected in zip(result, target):
        assert abs(got - expected) <= eta + 1e-9
