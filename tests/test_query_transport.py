"""Shared-memory result transport: codec, slab protocol, lifecycle.

The pins, in order of blast radius:

* the binary answer codec round-trips every result shape bit-exactly
  (``struct`` doubles are lossless) and refuses anything else;
* a descriptor is only ever trusted after full validation — stale
  generation, forged offsets, overwritten entries, and torn writes all
  raise :class:`TransportError`, never return wrong answers;
* the parent owns slab lifecycle: ``close()`` and generation
  invalidation leave ``/dev/shm`` empty, including slabs of workers
  that died without answering;
* the sharded engine produces oracle-identical answers on both
  transports.
"""

import os

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.query import StIUIndex, ShardedQueryEngine, save_index
from repro.query.queries import WhenResult, WhereResult
from repro.query.transport import (
    TRANSPORT_PICKLE,
    TRANSPORT_SHM,
    SlabReaderPool,
    SlabWriter,
    TransportError,
    UnencodableAnswers,
    decode_answers_blob,
    decode_payload,
    encode_answers,
    list_arena_slabs,
    new_arena_id,
    resolve_transport,
    slab_name,
    tag_descriptor,
    tag_inline,
)
from repro.trajectories.datasets import load_dataset

from test_query_engine import make_queries

pytestmark = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="POSIX shared memory is not file-backed here",
)


# ----------------------------------------------------------------------
# transport selection
# ----------------------------------------------------------------------
class TestResolveTransport:
    def test_default_is_shm(self, monkeypatch):
        monkeypatch.delenv("REPRO_TRANSPORT", raising=False)
        assert resolve_transport() == TRANSPORT_SHM

    def test_env_overrides_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        assert resolve_transport() == TRANSPORT_PICKLE

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRANSPORT", "pickle")
        assert resolve_transport("shm") == TRANSPORT_SHM

    def test_unknown_transport_is_typed(self):
        with pytest.raises(ValueError):
            resolve_transport("carrier-pigeon")


# ----------------------------------------------------------------------
# answer codec
# ----------------------------------------------------------------------
WHERE = [
    WhereResult(7, 0, (3, 9), 0.1, 0.5),
    WhereResult(7, 1, (-2, 11), 0.9999999999999999, 1e-300),
]
WHEN = [WhenResult(4, 2, 1234.5678, 0.25)]
RANGE = [1, 5, 9, 2**40]


class TestAnswerCodec:
    def test_round_trip_every_shape(self):
        answers = [WHERE, WHEN, RANGE, []]
        assert decode_answers_blob(encode_answers(answers)) == answers

    def test_floats_are_bit_exact(self):
        value = 0.1 + 0.2  # famously not 0.3
        blob = encode_answers([[WhereResult(1, 0, (0, 1), value, value)]])
        (decoded,) = decode_answers_blob(blob)[0:1]
        assert decoded[0].ndist == value
        assert decoded[0].probability == value

    def test_empty_batch(self):
        assert decode_answers_blob(encode_answers([])) == []

    def test_unencodable_shapes_are_refused(self):
        with pytest.raises(UnencodableAnswers):
            encode_answers([["a string answer"]])
        with pytest.raises(UnencodableAnswers):
            encode_answers(["not-a-list"])
        with pytest.raises(UnencodableAnswers):
            encode_answers([[{"dict": 1}]])

    def test_truncated_blob_is_typed(self):
        blob = encode_answers([WHERE])
        with pytest.raises(TransportError):
            decode_answers_blob(blob[: len(blob) - 4])

    def test_decodes_from_memoryview(self):
        blob = encode_answers([RANGE])
        assert decode_answers_blob(memoryview(blob)) == [RANGE]


# ----------------------------------------------------------------------
# slab writer + reader validation
# ----------------------------------------------------------------------
@pytest.fixture
def arena():
    arena = new_arena_id()
    yield arena
    for name in list_arena_slabs(arena):
        from repro.query.transport import unlink_slab

        unlink_slab(name)


def make_pair(arena, *, generation=0, size=256 * 1024, keep=4):
    writer = SlabWriter(arena, generation=generation, size=size, keep=keep)
    reader = SlabReaderPool(arena, generation=generation)
    return writer, reader


class TestSlabProtocol:
    def test_write_then_decode_round_trips(self, arena):
        writer, reader = make_pair(arena)
        try:
            answers = [WHERE, WHEN, RANGE, []]
            descriptor = writer.write(encode_answers(answers))
            assert descriptor is not None
            assert descriptor["slab"] == writer.name
            assert reader.decode(descriptor) == answers
        finally:
            writer.close()
            reader.close()

    def test_many_writes_each_descriptor_valid(self, arena):
        writer, reader = make_pair(arena)
        try:
            descriptors = []
            for i in range(writer.keep):
                descriptors.append(writer.write(encode_answers([[i]])))
            for i, descriptor in enumerate(descriptors):
                assert reader.decode(descriptor) == [[i]]
        finally:
            writer.close()
            reader.close()

    def test_torn_write_fails_crc(self, arena):
        writer, reader = make_pair(arena)
        try:
            descriptor = writer.write_torn(encode_answers([RANGE]))
            with pytest.raises(TransportError, match="CRC|torn"):
                reader.decode(descriptor)
        finally:
            writer.close()
            reader.close()

    def test_stale_generation_is_rejected(self, arena):
        writer = SlabWriter(arena, generation=0, size=256 * 1024)
        reader = SlabReaderPool(arena, generation=1)
        try:
            descriptor = writer.write(encode_answers([RANGE]))
            with pytest.raises(TransportError, match="stale"):
                reader.decode(descriptor)
        finally:
            writer.close()
            reader.close()

    def test_forged_offset_is_rejected(self, arena):
        writer, reader = make_pair(arena)
        try:
            descriptor = writer.write(encode_answers([RANGE]))
            forged = {**descriptor, "offset": writer.size + 64}
            with pytest.raises(TransportError, match="bounds"):
                reader.decode(forged)
            shifted = {**descriptor, "offset": descriptor["offset"] + 8}
            with pytest.raises(TransportError):
                reader.decode(shifted)
        finally:
            writer.close()
            reader.close()

    def test_overwritten_entry_is_detected(self, arena):
        # tiny slab, tiny keep: old entries get overwritten quickly
        writer, reader = make_pair(arena, size=64 * 1024, keep=1)
        try:
            stale = writer.write(encode_answers([RANGE]))
            blob = encode_answers([list(range(4000))])
            for _ in range(40):  # wrap the slab several times over
                assert writer.write(blob) is not None
            with pytest.raises(TransportError):
                reader.decode(stale)
        finally:
            writer.close()
            reader.close()

    def test_protected_tail_is_never_overwritten(self, arena):
        writer, reader = make_pair(arena, size=64 * 1024, keep=8)
        try:
            blob = encode_answers([list(range(500))])
            window = []
            for i in range(200):
                descriptor = writer.write(blob)
                assert descriptor is not None
                window.append(descriptor)
                window = window[-writer.keep :]
                # the most recent ``keep`` descriptors always validate
                for held in window:
                    reader.decode(held)
        finally:
            writer.close()
            reader.close()

    def test_oversized_payload_refused_not_torn(self, arena):
        writer, reader = make_pair(arena, size=64 * 1024)
        try:
            assert writer.write(b"x" * (128 * 1024)) is None
        finally:
            writer.close()
            reader.close()

    def test_malformed_descriptor_is_typed(self, arena):
        _, reader = make_pair(arena)
        try:
            with pytest.raises(TransportError):
                reader.decode({"slab": "x"})
            with pytest.raises(TransportError):
                reader.decode(None)
        finally:
            reader.close()

    def test_missing_slab_is_typed(self, arena):
        _, reader = make_pair(arena)
        try:
            with pytest.raises(TransportError, match="gone"):
                reader.decode(
                    {
                        "slab": slab_name(arena, 0, 999999),
                        "offset": 0,
                        "length": 8,
                        "generation": 0,
                        "seq": 0,
                        "crc": 0,
                    }
                )
        finally:
            reader.close()


class TestPayloadTagging:
    def test_plain_payload_passes_through(self):
        assert decode_payload([[1, 2]], None) == [[1, 2]]

    def test_inline_tag_unwraps(self):
        assert decode_payload(tag_inline([WHERE]), None) == [WHERE]

    def test_descriptor_without_reader_is_typed(self):
        with pytest.raises(TransportError, match="no slab reader"):
            decode_payload(tag_descriptor({"slab": "x"}), None)


# ----------------------------------------------------------------------
# lifecycle: /dev/shm hygiene under close, crash, and respawn
# ----------------------------------------------------------------------
class TestSlabLifecycle:
    def test_close_unlinks_every_slab(self, arena):
        writer, reader = make_pair(arena)
        descriptor = writer.write(encode_answers([RANGE]))
        reader.decode(descriptor)  # reader is attached now
        writer.close()
        assert list_arena_slabs(arena)  # alive until the parent sweeps
        reader.close()
        assert list_arena_slabs(arena) == []

    def test_close_sweeps_slabs_never_decoded(self, arena):
        # a worker that crashed before answering once: the parent never
        # attached its slab, the /dev/shm scan still reclaims it
        writer = SlabWriter(arena, generation=0, size=256 * 1024)
        writer.write(encode_answers([RANGE]))
        writer.close()
        reader = SlabReaderPool(arena, generation=0)
        assert reader.close() == 1
        assert list_arena_slabs(arena) == []

    def test_invalidate_sweeps_dead_generations_only(self, arena):
        old = SlabWriter(arena, generation=0, size=256 * 1024)
        live = SlabWriter(arena, generation=1, size=256 * 1024)
        reader = SlabReaderPool(arena, generation=0)
        try:
            stale = old.write(encode_answers([RANGE]))
            reader.decode(stale)
            assert reader.invalidate(new_generation=1) == 1
            assert list_arena_slabs(arena) == [live.name]
            # the stale descriptor can never validate again
            with pytest.raises(TransportError, match="stale"):
                reader.decode(stale)
            fresh = live.write(encode_answers([RANGE]))
            assert reader.decode(fresh) == [RANGE]
        finally:
            old.close()
            live.close()
            assert reader.close() == 1
            assert list_arena_slabs(arena) == []


# ----------------------------------------------------------------------
# the engine on both transports (real worker processes)
# ----------------------------------------------------------------------
SHARDS = 2


@pytest.fixture(scope="module")
def sharded_world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 16, seed=29, network_scale=9)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("transport")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    queries = make_queries(network, trajectories, count=8, seed=13)
    return network, shard_paths, queries


class TestEngineTransports:
    def test_both_transports_match_single_process_oracle(
        self, sharded_world
    ):
        network, shard_paths, queries = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=1
        ) as oracle:
            expected = oracle.run(queries)
        for transport in (TRANSPORT_PICKLE, TRANSPORT_SHM):
            with ShardedQueryEngine(
                shard_paths,
                network=network,
                workers=2,
                transport=transport,
            ) as engine:
                assert engine.run(queries) == expected, transport
                assert engine.run(queries) == expected, transport

    def test_engine_close_leaves_no_shm_residue(self, sharded_world):
        network, shard_paths, queries = sharded_world
        engine = ShardedQueryEngine(
            shard_paths, network=network, workers=2, transport=TRANSPORT_SHM
        )
        arena = engine.pool.transport_arena
        assert arena is not None
        engine.run(queries)
        assert list_arena_slabs(arena)  # workers materialised slabs
        engine.close()
        assert list_arena_slabs(arena) == []

    def test_worker_crash_then_restart_sweeps_and_recovers(
        self, sharded_world
    ):
        import signal
        import time

        from repro.query.engine import WorkerPoolBroken

        network, shard_paths, queries = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=2, transport=TRANSPORT_SHM
        ) as engine:
            expected = engine.run(queries)
            arena = engine.pool.transport_arena
            os.kill(engine.pool.worker_pids()[0], signal.SIGKILL)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                try:
                    engine.run(queries)
                except WorkerPoolBroken:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("killed worker never surfaced")
            engine.restart_pool()
            assert engine.run(queries) == expected
            generation = engine.pool.generation
            assert generation >= 1
            # every surviving slab belongs to the live generation
            for name in list_arena_slabs(arena):
                assert f"-g{generation}-" in name
        assert list_arena_slabs(arena) == []


# ----------------------------------------------------------------------
# abandoned executors must die even with a wedged worker
# ----------------------------------------------------------------------
def _wedge_worker(seconds):
    """Stand-in for a worker stuck mid-item (e.g. on a lock copied
    locked at fork): sleeps far past any test timeout."""
    import time

    time.sleep(seconds)
    return seconds


def _dead_or_zombie(pid: int) -> bool:
    try:
        with open(f"/proc/{pid}/stat") as handle:
            return handle.read().rsplit(")", 1)[1].split()[0] == "Z"
    except (FileNotFoundError, ProcessLookupError):
        return True


def _assert_workers_die(pids, *, timeout=10.0):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if all(_dead_or_zombie(pid) for pid in pids):
            return
        time.sleep(0.05)
    alive = [pid for pid in pids if not _dead_or_zombie(pid)]
    pytest.fail(f"worker processes survived teardown: {alive}")


class TestPoolTeardown:
    """``shutdown(wait=False)`` only asks: the executor's manager
    thread withholds exit sentinels while any item is unfinished, so a
    wedged worker would keep the manager alive and hang interpreter
    exit on its atexit join.  close() and restart() therefore SIGKILL
    the abandoned generation outright."""

    def test_close_kills_workers_stuck_on_an_item(self, sharded_world):
        import time
        from concurrent.futures import wait as futures_wait

        network, shard_paths, queries = sharded_world
        engine = ShardedQueryEngine(
            shard_paths, network=network, workers=2, transport=TRANSPORT_SHM
        )
        engine.run(queries)  # workers spawned and warm
        pids = engine.pool.worker_pids()
        assert pids
        future = engine.pool.submit_call(_wedge_worker, 600.0)
        time.sleep(0.3)  # let a worker pick the item up
        started = time.monotonic()
        engine.close()
        assert time.monotonic() - started < 5.0  # close never waits
        _assert_workers_die(pids)
        # the wedged item's future resolves (broken), it never hangs
        done, _ = futures_wait([future], timeout=10.0)
        assert future in done

    def test_restart_kills_previous_generation(self, sharded_world):
        import time

        network, shard_paths, queries = sharded_world
        with ShardedQueryEngine(
            shard_paths, network=network, workers=2, transport=TRANSPORT_SHM
        ) as engine:
            expected = engine.run(queries)
            old_pids = engine.pool.worker_pids()
            assert old_pids
            engine.pool.submit_call(_wedge_worker, 600.0)
            time.sleep(0.3)
            engine.restart_pool()
            _assert_workers_die(old_pids)
            # the respawned generation still answers correctly
            assert engine.run(queries) == expected
