"""Golden-archive regression: the compressed bytes are pinned.

Every layer of the compressor is deterministic (seeded pivot RNG,
tie-broken factorizations, exact greedy searches), so compressing the
bundled example dataset must produce the same ``.utcq`` file forever.
Any optimization that changes even one bit — a different base set, a
different factor tie-break, a reordered stream — fails here loudly
instead of silently invalidating existing archives.

If a PR *intends* to change the format, it must bump the format version
and re-pin the hash in the same change.
"""

import hashlib

import pytest

from repro.core.compressor import UTCQCompressor
from repro.core.decoder import decode_archive
from repro.io.format import read_archive, write_archive
from repro.trajectories.datasets import load_dataset, profile

# SHA-256 of the archive produced by the settings below (format v1).
GOLDEN_SHA256 = "084cea5330841e945500f3bb27710037ab3bd4d9217a0046684bc4b64f7e014d"

PROFILE = "CD"
TRAJECTORIES = 25
DATASET_SEED = 11
NETWORK_SCALE = 12
PROVENANCE = {
    "generator": "repro.load_dataset",
    "profile": PROFILE,
    "dataset_seed": str(DATASET_SEED),
    "network_scale": str(NETWORK_SCALE),
    "trajectory_count": str(TRAJECTORIES),
}


@pytest.fixture(scope="module")
def golden_setup():
    prof = profile(PROFILE)
    network, trajectories = load_dataset(
        PROFILE, TRAJECTORIES, seed=DATASET_SEED, network_scale=NETWORK_SCALE
    )
    compressor = UTCQCompressor(
        network=network,
        default_interval=prof.default_interval,
        eta_distance=1 / 128,
        eta_probability=prof.default_eta_probability,
        pivot_count=1,
        seed=17,
    )
    return network, trajectories, compressor.compress(trajectories)


def test_archive_bytes_are_pinned(golden_setup, tmp_path):
    _, _, archive = golden_setup
    path = tmp_path / "golden.utcq"
    write_archive(archive, path, provenance=PROVENANCE)
    digest = hashlib.sha256(path.read_bytes()).hexdigest()
    assert digest == GOLDEN_SHA256, (
        f"compressed output changed: sha256 {digest} != pinned "
        f"{GOLDEN_SHA256}.  If the format change is intentional, bump the "
        "archive version and re-pin."
    )


def test_golden_archive_round_trips(golden_setup, tmp_path):
    network, trajectories, archive = golden_setup
    path = tmp_path / "golden.utcq"
    write_archive(archive, path, provenance=PROVENANCE)
    decoded = decode_archive(network, read_archive(path))
    assert len(decoded) == len(trajectories)
    for original, restored in zip(trajectories, decoded):
        assert restored.trajectory_id == original.trajectory_id
        assert list(restored.times) == list(original.times)
        assert len(restored.instances) == len(original.instances)
        for a, b in zip(original.instances, restored.instances):
            assert b.path == a.path
