"""Lint guard: no bare ``print(`` in library code.

The CLI (``cli.py``) is the one user-facing surface that prints; every
other module must report through :mod:`repro.obs` — counters for
tallies, structured log events for lifecycle moments.  A stray debug
print in a worker process corrupts no output today but becomes an
operator-facing mystery line the day someone pipes the CLI.  The same
check runs in CI as a grep (the ``lint-guard`` step); this test keeps
it enforced locally too.

The pattern deliberately uses ``(^|[^A-Za-z0-9_])print\\(`` rather than
``\\bprint\\(`` so identifiers *ending* in ``print`` (for example
``archive_fingerprint(...)``) do not trip it.
"""

import pathlib
import re

PATTERN = re.compile(r"(^|[^A-Za-z0-9_])print\(")
ALLOWED = {"cli.py"}


def test_no_bare_print_outside_the_cli():
    package = pathlib.Path(__file__).parent.parent / "src" / "repro"
    offenders = []
    for path in sorted(package.rglob("*.py")):
        if path.name in ALLOWED:
            continue
        for number, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            if PATTERN.search(line):
                offenders.append(f"{path.relative_to(package)}:{number}")
    assert not offenders, (
        "bare print( in library code (use repro.obs logging/metrics, "
        "or route output through cli.py): " + ", ".join(offenders)
    )
