"""Batch / shard-parallel query engine vs the one-at-a-time processor
and the brute-force oracle.

The engine must be a pure execution strategy: on any workload its
results are *identical* to calling the query processor once per query,
and therefore within PDDP error of the uncompressed oracle — the same
accuracy contract the single-query tests pin.  Sharding (with and
without worker processes) must be invisible in the results.
"""

import random

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.query import (
    BatchQueryEngine,
    BruteForceOracle,
    QueryEngineError,
    RangeQuery,
    ShardedQueryEngine,
    StIUIndex,
    UTCQQueryProcessor,
    WhenQuery,
    WhereQuery,
    query_from_dict,
    save_index,
    when_accuracy,
    where_accuracy,
)
from repro.trajectories.datasets import load_dataset
from repro.workloads.harness import build_query_workload

SHARDS = 3


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 40, seed=47, network_scale=12)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("engine")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    return network, trajectories, archive, shard_paths


def make_queries(network, trajectories, *, count, seed, alpha_zero=False):
    workload = build_query_workload(
        network, trajectories, count=count, seed=seed
    )
    if alpha_zero:
        return (
            [WhereQuery(tid, t, 0.0) for tid, t, _ in workload.where_queries]
            + [
                WhenQuery(tid, edge, rd, 0.0)
                for tid, edge, rd, _ in workload.when_queries
            ]
            + [RangeQuery(rect, t, 0.3) for rect, t, _ in workload.range_queries]
        )
    return (
        [WhereQuery(*args) for args in workload.where_queries]
        + [WhenQuery(*args) for args in workload.when_queries]
        + [RangeQuery(*args) for args in workload.range_queries]
    )


def run_one_at_a_time(processor, queries):
    results = []
    for query in queries:
        if isinstance(query, WhereQuery):
            results.append(
                processor.where(query.trajectory_id, query.t, query.alpha)
            )
        elif isinstance(query, WhenQuery):
            results.append(
                processor.when(
                    query.trajectory_id,
                    query.edge,
                    query.relative_distance,
                    query.alpha,
                )
            )
        else:
            results.append(processor.range(query.rect, query.t, query.alpha))
    return results


class TestBatchEngine:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_matches_one_at_a_time_exactly(self, world, seed):
        network, trajectories, archive, _ = world
        queries = make_queries(network, trajectories, count=30, seed=seed)
        rng = random.Random(seed)
        rng.shuffle(queries)
        index = StIUIndex(network, archive)
        expected = run_one_at_a_time(
            UTCQQueryProcessor(network, archive, index), queries
        )
        got = BatchQueryEngine(network, archive, index).run(queries)
        assert got == expected

    def test_matches_brute_force_oracle(self, world):
        network, trajectories, archive, _ = world
        queries = make_queries(
            network, trajectories, count=20, seed=9, alpha_zero=True
        )
        index = StIUIndex(network, archive)
        engine = BatchQueryEngine(network, archive, index)
        oracle = BruteForceOracle(network, trajectories)
        results = engine.run(queries)
        range_mismatches = 0
        for query, result in zip(queries, results):
            if isinstance(query, WhereQuery):
                expected = oracle.where(
                    query.trajectory_id, query.t, query.alpha
                )
                assert where_accuracy(
                    network, expected, result
                ).f1 == pytest.approx(1.0)
            elif isinstance(query, WhenQuery):
                expected = oracle.when(
                    query.trajectory_id,
                    query.edge,
                    query.relative_distance,
                    query.alpha,
                )
                assert when_accuracy(expected, result).recall == pytest.approx(
                    1.0
                )
            else:
                expected = oracle.range(query.rect, query.t, query.alpha)
                # PDDP rounding can flip borderline trajectories
                range_mismatches += len(set(expected) ^ set(result))
        assert range_mismatches <= 3

    def test_duplicates_answered_once(self, world):
        network, trajectories, archive, _ = world
        trajectory = trajectories[0]
        query = WhereQuery(
            trajectory.trajectory_id,
            (trajectory.start_time + trajectory.end_time) // 2,
            0.0,
        )
        engine = BatchQueryEngine(network, archive, StIUIndex(network, archive))
        results = engine.run([query, query, query])
        assert results[0] == results[1] == results[2]
        assert results[0] is results[1]  # one execution, shared answer

    def test_unknown_trajectory_yields_empty(self, world):
        network, _, archive, _ = world
        engine = BatchQueryEngine(network, archive, StIUIndex(network, archive))
        assert engine.run([WhereQuery(10**9, 1000, 0.0)]) == [[]]

    def test_rejects_non_queries(self, world):
        network, _, archive, _ = world
        engine = BatchQueryEngine(network, archive, StIUIndex(network, archive))
        with pytest.raises(QueryEngineError):
            engine.run(["where?"])


class TestShardedEngine:
    @pytest.mark.parametrize("workers", [1, 2])
    def test_matches_single_archive_engine(self, world, workers):
        network, trajectories, archive, shard_paths = world
        queries = make_queries(network, trajectories, count=25, seed=17)
        # repeats exercise the cross-process dedupe path
        queries = queries + queries[::3]
        expected = BatchQueryEngine(
            network, archive, StIUIndex(network, archive)
        ).run(queries)
        with ShardedQueryEngine(
            shard_paths, network=network, workers=workers
        ) as engine:
            got = engine.run(queries)
        assert got == expected

    def test_network_resolved_from_provenance(self, tmp_path):
        """Shards written by the CLI path carry enough provenance to
        rebuild the network inside each worker."""
        from repro.pipeline.batch import save_archive_with_index

        network, trajectories = load_dataset(
            "CD", 10, seed=31, network_scale=12
        )
        archive = compress_dataset(network, trajectories, default_interval=10)
        path = tmp_path / "prov.utcq"
        save_archive_with_index(
            archive,
            path,
            network,
            provenance={
                "profile": "CD",
                "dataset_seed": "31",
                "network_scale": "12",
            },
        )
        trajectory = trajectories[0]
        query = WhereQuery(
            trajectory.trajectory_id,
            (trajectory.start_time + trajectory.end_time) // 2,
            0.0,
        )
        with ShardedQueryEngine([path], workers=1) as engine:
            got = engine.run([query])
        index = StIUIndex(network, archive)
        expected = UTCQQueryProcessor(network, archive, index).where(
            query.trajectory_id, query.t, query.alpha
        )
        assert got == [expected]

    def test_duplicate_trajectory_ids_rejected(self, world, tmp_path):
        network, _, archive, shard_paths = world
        clone = tmp_path / "clone.utcq"
        archive.save(clone)
        with pytest.raises(QueryEngineError):
            ShardedQueryEngine(
                [shard_paths[0], clone], network=network, workers=1
            )

    def test_closed_engine_rejects_runs(self, world):
        network, _, _, shard_paths = world
        engine = ShardedQueryEngine(
            shard_paths, network=network, workers=1
        )
        engine.close()
        with pytest.raises(QueryEngineError):
            engine.run([])


class TestShardedEngineLifecycle:
    def test_worker_death_raises_typed_and_restart_recovers(self, world):
        import os
        import signal
        import time

        from repro.query import WorkerPoolBroken

        network, trajectories, archive, shard_paths = world
        queries = make_queries(network, trajectories, count=15, seed=21)
        expected = BatchQueryEngine(
            network, archive, StIUIndex(network, archive)
        ).run(queries)
        with ShardedQueryEngine(
            shard_paths, network=network, workers=2
        ) as engine:
            assert engine.run(queries) == expected  # pool is warm
            victims = engine.pool.worker_pids()
            assert victims
            os.kill(victims[0], signal.SIGKILL)
            deadline = time.monotonic() + 30
            observed = None
            while time.monotonic() < deadline:
                try:
                    engine.run(queries)
                except WorkerPoolBroken as error:
                    observed = error
                    break
                time.sleep(0.05)
            assert isinstance(observed, WorkerPoolBroken)
            engine.restart_pool()
            assert engine.run(queries) == expected

    def test_close_is_idempotent(self, world):
        network, _, _, shard_paths = world
        engine = ShardedQueryEngine(shard_paths, network=network, workers=1)
        engine.run(make_queries(*world[:2], count=3, seed=1))
        engine.close()
        engine.close()  # second close must be a no-op, not an error
        assert engine.closed

    def test_run_after_close_raises_typed_subclass(self, world):
        from repro.query import EngineClosedError

        network, _, _, shard_paths = world
        engine = ShardedQueryEngine(shard_paths, network=network, workers=1)
        engine.close()
        with pytest.raises(EngineClosedError):
            engine.run([])
        with pytest.raises(EngineClosedError):
            engine.run_local(shard_paths[0], [])
        with pytest.raises(EngineClosedError):
            engine.restart_pool()

    def test_exit_does_not_mask_body_exception(self, world, monkeypatch):
        network, _, _, shard_paths = world
        engine = ShardedQueryEngine(shard_paths, network=network, workers=1)

        def explode() -> None:
            raise OSError("teardown went sideways")

        monkeypatch.setattr(engine, "close", explode)
        with pytest.raises(ValueError, match="the real failure"):
            with engine:
                raise ValueError("the real failure")

    def test_exit_still_raises_teardown_error_on_clean_body(
        self, world, monkeypatch
    ):
        network, _, _, shard_paths = world
        engine = ShardedQueryEngine(shard_paths, network=network, workers=1)

        def explode() -> None:
            raise OSError("teardown went sideways")

        monkeypatch.setattr(engine, "close", explode)
        with pytest.raises(OSError, match="teardown"):
            with engine:
                pass


class TestQuerySpecs:
    def test_round_trip_from_dicts(self):
        where = query_from_dict(
            {"kind": "where", "trajectory": 3, "time": 41000, "alpha": 0.2}
        )
        assert where == WhereQuery(3, 41000, 0.2)
        when = query_from_dict(
            {"kind": "when", "trajectory": 3, "edge": [5, 6], "rd": 0.25}
        )
        assert when == WhenQuery(3, (5, 6), 0.25, 0.0)
        range_ = query_from_dict(
            {"kind": "range", "rect": [0, 0, 10, 10], "time": 7, "alpha": 0.5}
        )
        assert range_ == RangeQuery(range_.rect, 7, 0.5)
        assert (range_.rect.min_x, range_.rect.max_y) == (0.0, 10.0)

    def test_bad_specs_rejected(self):
        with pytest.raises(QueryEngineError):
            query_from_dict({"kind": "teleport"})
        with pytest.raises(QueryEngineError):
            query_from_dict({"kind": "where", "trajectory": 1})
        with pytest.raises(QueryEngineError):
            query_from_dict({"kind": "when", "trajectory": 1, "edge": [1]})
        with pytest.raises(QueryEngineError):
            query_from_dict(
                {"kind": "range", "rect": [0, 0, 1], "time": 0}
            )

    def test_malformed_values_rejected_not_crashed(self):
        # non-sequence edge / rect, unparseable numbers, non-dict input:
        # all surface as QueryEngineError, never a raw TypeError
        with pytest.raises(QueryEngineError):
            query_from_dict({"kind": "when", "trajectory": 1, "edge": 5})
        with pytest.raises(QueryEngineError):
            query_from_dict({"kind": "range", "rect": 7, "time": 0})
        with pytest.raises(QueryEngineError):
            query_from_dict(
                {"kind": "where", "trajectory": "three", "time": 0}
            )
        with pytest.raises(QueryEngineError):
            query_from_dict([1, 2])
