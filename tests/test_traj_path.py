"""Tests for chainage arithmetic and constant-speed interpolation."""

import pytest

from repro.network.generators import grid_network
from repro.trajectories.model import MappedLocation, TrajectoryInstance
from repro.trajectories.path import InstanceChainage, PathChainage


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0)


@pytest.fixture
def chain(network):
    return PathChainage(network, [(0, 1), (1, 2), (2, 6)])


class TestPathChainage:
    def test_total_length(self, chain):
        assert chain.total_length == pytest.approx(300.0)

    def test_edge_start(self, chain):
        assert chain.edge_start(0) == 0.0
        assert chain.edge_start(2) == pytest.approx(200.0)

    def test_chainage_of(self, chain):
        assert chain.chainage_of(1, 40.0) == pytest.approx(140.0)

    def test_chainage_out_of_path(self, chain):
        with pytest.raises(IndexError):
            chain.chainage_of(3, 0.0)

    def test_position_at_round_trip(self, chain):
        position = chain.position_at(140.0)
        assert position.edge_index == 1
        assert position.edge == (1, 2)
        assert position.ndist == pytest.approx(40.0)

    def test_position_at_clamps(self, chain):
        assert chain.position_at(-5.0).edge_index == 0
        end = chain.position_at(500.0)
        assert end.edge_index == 2
        assert end.ndist == pytest.approx(100.0)

    def test_position_at_edge_boundary(self, chain):
        position = chain.position_at(100.0)
        # boundary belongs to the next edge with ndist 0
        assert position.edge_index == 1
        assert position.ndist == pytest.approx(0.0)

    def test_subpath_between(self, chain):
        assert chain.subpath_between(50.0, 150.0) == [(0, 1), (1, 2)]
        assert chain.subpath_between(150.0, 50.0) == [(0, 1), (1, 2)]
        assert chain.subpath_between(10.0, 20.0) == [(0, 1)]

    def test_empty_path_rejected(self, network):
        with pytest.raises(ValueError):
            PathChainage(network, [])


@pytest.fixture
def instance_chain(network):
    instance = TrajectoryInstance(
        path=[(0, 1), (1, 2), (2, 6)],
        locations=[
            MappedLocation((0, 1), 0.0),
            MappedLocation((1, 2), 0.0),
            MappedLocation((2, 6), 100.0),
        ],
        probability=1.0,
    )
    return InstanceChainage(network, instance)


class TestInstanceChainage:
    def test_location_chainages(self, instance_chain):
        assert instance_chain.location_chainages == pytest.approx(
            [0.0, 100.0, 300.0]
        )

    def test_position_at_time_midpoint(self, instance_chain):
        times = [0, 100, 300]
        position = instance_chain.position_at_time(times, 50)
        assert position.edge == (0, 1)
        assert position.ndist == pytest.approx(50.0)

    def test_position_at_time_second_segment(self, instance_chain):
        times = [0, 100, 300]
        # segment 2 covers 200 m over 200 s -> at t=150 we are 50 m in
        position = instance_chain.position_at_time(times, 150)
        assert position.edge == (1, 2)
        assert position.ndist == pytest.approx(50.0)

    def test_position_at_time_edge_boundary_goes_to_next_edge(self, instance_chain):
        times = [0, 100, 300]
        position = instance_chain.position_at_time(times, 200)
        assert position.edge == (2, 6)
        assert position.ndist == pytest.approx(0.0)

    def test_position_outside_span_is_none(self, instance_chain):
        times = [0, 100, 300]
        assert instance_chain.position_at_time(times, -1) is None
        assert instance_chain.position_at_time(times, 301) is None

    def test_position_at_exact_last_time(self, instance_chain):
        times = [0, 100, 300]
        position = instance_chain.position_at_time(times, 300)
        assert position.edge == (2, 6)
        assert position.ndist == pytest.approx(100.0)

    def test_time_at_chainage_inverts_position(self, instance_chain):
        times = [0, 100, 300]
        assert instance_chain.time_at_chainage(times, 50.0) == pytest.approx(50.0)
        assert instance_chain.time_at_chainage(times, 200.0) == pytest.approx(200.0)

    def test_time_at_chainage_outside_is_none(self, instance_chain):
        times = [0, 100, 300]
        assert instance_chain.time_at_chainage(times, 300.5) is None

    def test_times_at_position(self, instance_chain):
        times = [0, 100, 300]
        hits = instance_chain.times_at_position(times, (1, 2), 100.0)
        assert hits == [pytest.approx(200.0)]

    def test_times_at_position_not_on_path(self, instance_chain):
        times = [0, 100, 300]
        assert instance_chain.times_at_position(times, (5, 6), 10.0) == []

    def test_times_at_position_repeated_edge(self, network):
        instance = TrajectoryInstance(
            path=[(0, 1), (1, 0), (0, 1)],
            locations=[
                MappedLocation((0, 1), 0.0),
                MappedLocation((0, 1), 100.0),
            ],
            probability=1.0,
            location_edge_indices=[0, 2],
        )
        chain = InstanceChainage(network, instance)
        times = [0, 300]
        hits = chain.times_at_position(times, (0, 1), 50.0)
        assert len(hits) == 2
        assert hits[0] == pytest.approx(50.0)
        assert hits[1] == pytest.approx(250.0)

    def test_idling_returns_earlier_time(self, network):
        instance = TrajectoryInstance(
            path=[(0, 1)],
            locations=[
                MappedLocation((0, 1), 50.0),
                MappedLocation((0, 1), 50.0),
            ],
            probability=1.0,
        )
        chain = InstanceChainage(network, instance)
        assert chain.time_at_chainage([10, 20], 50.0) == pytest.approx(10.0)
