"""Crash recovery for the stream tier, proven by fault injection.

Every durability-relevant operation (fsync, rename, unlink) the writer,
compaction, and GC perform goes through the injectable
:class:`~repro.stream.manifest.Filesystem` seam.  The suite first runs
each workload cleanly to *count* those boundaries, then replays it once
per boundary with a :class:`FaultingFilesystem` that dies there —
before and after the operation — and asserts that a restart recovers a
consistent manifest, loses no sealed trip, strands no file, and that
the eventual one-shot ``compact()`` output is byte-identical to the
never-crashed run.
"""

import hashlib

import pytest

from repro.network.generators import grid_network
from repro.stream import (
    AppendableArchiveWriter,
    LiveArchive,
    compact,
    load_manifest,
)
from repro.stream.compaction import SizeTieredPolicy, gc_segments, merge_segments
from repro.stream.manifest import Filesystem, ManifestStore, recover
from repro.trajectories.model import (
    MappedLocation,
    TrajectoryInstance,
    UncertainTrajectory,
)

TRIPS = 5
SEGMENT_MAX = 2


class InjectedFault(RuntimeError):
    """The simulated process kill."""


class FaultingFilesystem(Filesystem):
    """Counts durability boundaries; raises at the chosen one.

    ``mode="before"`` kills just before the operation (it never
    happens), ``mode="after"`` just after (it is durable, but nothing
    later is).  With ``fail_at=None`` it only counts, which is how the
    tests learn how many boundaries a clean run crosses.
    """

    def __init__(self, fail_at: int | None = None, mode: str = "before"):
        assert mode in ("before", "after")
        self.fail_at = fail_at
        self.mode = mode
        self.ops = 0
        self.trace: list[tuple[str, str]] = []

    def _boundary(self, kind: str, label: str, run) -> None:
        self.ops += 1
        self.trace.append((kind, label))
        mine = self.ops == self.fail_at
        if mine and self.mode == "before":
            raise InjectedFault(f"killed before {kind} {label} (op {self.ops})")
        run()
        if mine and self.mode == "after":
            raise InjectedFault(f"killed after {kind} {label} (op {self.ops})")

    def fsync_fileno(self, fileno: int, label: str) -> None:
        self._boundary(
            "fsync", label, lambda: Filesystem.fsync_fileno(self, fileno, label)
        )

    def replace(self, source, target) -> None:
        self._boundary(
            "rename",
            str(target),
            lambda: Filesystem.replace(self, source, target),
        )

    def unlink(self, path) -> None:
        self._boundary(
            "unlink", str(path), lambda: Filesystem.unlink(self, path)
        )


@pytest.fixture(scope="module")
def network():
    return grid_network(4, 4, spacing=100.0)


def _trip(network, trajectory_id):
    """A minimal trip whose time span tracks its id (distinct per trip)."""
    edge = next(iter(network.edges()))
    key = (edge.start, edge.end)
    instance = TrajectoryInstance(
        path=[key],
        locations=[MappedLocation(key, 0.0), MappedLocation(key, 1.0)],
        probability=1.0,
    )
    t0 = trajectory_id * 100
    return UncertainTrajectory(trajectory_id, [instance], [t0, t0 + 10])


def _open_writer(directory, network, fs=None, segment_max=SEGMENT_MAX):
    return AppendableArchiveWriter(
        directory,
        network,
        default_interval=10,
        segment_max_trajectories=segment_max,
        fs=fs,
    )


def _ingest(directory, network, fs=None):
    """The workload under test: create, append TRIPS trips, close."""
    writer = _open_writer(directory, network, fs=fs)
    for i in range(TRIPS):
        writer.append(_trip(network, i))
    writer.close()


def _archive_sha(directory, output) -> str:
    compact(directory, output)
    return hashlib.sha256(output.read_bytes()).hexdigest()


def _assert_directory_consistent(directory, store):
    """The manifest and the filesystem agree exactly: every referenced
    segment exists, nothing unreferenced or half-written survives."""
    referenced = {s.name for s in store.segments()}
    on_disk = {p.name for p in (directory / "segments").iterdir()}
    assert not [name for name in on_disk if name.endswith(".tmp")]
    assert not list(directory.glob("*.tmp"))
    segments = {name for name in on_disk if name.endswith(".utcq")}
    sidecars = {name[: -len(".stiu")] for name in on_disk if name.endswith(".stiu")}
    assert segments == referenced
    assert sidecars <= referenced


@pytest.fixture(scope="module")
def clean_ingest(network, tmp_path_factory):
    """(boundary count, oracle sha) of the never-crashed ingest run."""
    base = tmp_path_factory.mktemp("clean")
    fs = FaultingFilesystem()
    directory = base / "fleet"
    _ingest(directory, network, fs=fs)
    assert fs.ops > 0
    return fs.ops, _archive_sha(directory, base / "oracle.utcq")


class TestWriterCrashAtEveryBoundary:
    @pytest.mark.parametrize("mode", ["before", "after"])
    def test_restart_recovers_and_output_is_byte_identical(
        self, mode, network, clean_ingest, tmp_path
    ):
        total_ops, oracle_sha = clean_ingest
        for fail_at in range(1, total_ops + 1):
            workdir = tmp_path / f"{mode}-{fail_at}"
            directory = workdir / "fleet"
            fs = FaultingFilesystem(fail_at=fail_at, mode=mode)
            with pytest.raises(InjectedFault):
                _ingest(directory, network, fs=fs)
            # restart: the fresh writer reconciles the directory, then
            # upstream (sessionizer replay) re-sends whatever was lost
            writer = _open_writer(directory, network)
            for i in range(writer.next_trajectory_id, TRIPS):
                writer.append(_trip(network, i))
            writer.close()
            context = f"fault {mode} op {fail_at}/{total_ops}"
            assert writer.sealed_trajectory_count == TRIPS, context
            _assert_directory_consistent(directory, writer.store)
            assert (
                _archive_sha(directory, workdir / "compacted.utcq")
                == oracle_sha
            ), context
            # recovery is idempotent: a second pass finds nothing
            assert recover(writer.store).clean, context


class TestRotationOrphanAdoption:
    def test_orphan_segment_after_rotation_is_adopted(self, network, tmp_path):
        """Regression for the double-rotation window: a restart landing
        between segment rename and manifest commit used to strand the
        rotated ``.utcq`` forever; recovery must adopt it — those trips
        were sealed, durable, and acknowledged."""
        directory = tmp_path / "fleet"
        fs = FaultingFilesystem()
        writer = _open_writer(directory, network, fs=fs)
        writer.append(_trip(network, 0))
        # die right after the segment lands under its final name:
        # next ops are fsync(segment tmp), rename(segment) — fault the
        # rename in "after" mode
        fs.fail_at, fs.mode = fs.ops + 2, "after"
        with pytest.raises(InjectedFault):
            writer.append(_trip(network, 1))  # triggers rotation
        assert (directory / "segments" / "seg-00000.utcq").exists()
        assert load_manifest(directory)["segments"] == []

        reopened = _open_writer(directory, network)
        assert reopened.last_recovery is not None
        assert reopened.last_recovery.adopted == ["seg-00000.utcq"]
        assert reopened.sealed_trajectory_count == 2
        assert reopened.next_trajectory_id == 2
        # the adopted segment is back in the manifest with its stats
        manifest = load_manifest(directory)
        assert manifest["trajectory_count"] == 2
        assert sum(manifest["stats"][6:]) > 0
        _assert_directory_consistent(directory, reopened.store)
        reopened.close()
        with LiveArchive(directory) as live:
            assert live.trajectory_count == 2

    def test_orphan_overlapping_sealed_ids_is_swept(self, network, tmp_path):
        """An unreferenced segment whose ids do NOT extend the manifest
        (an interrupted compaction output) must be deleted, not adopted
        — adopting it would duplicate trajectories."""
        directory = tmp_path / "fleet"
        writer = _open_writer(directory, network, segment_max=1)
        for i in range(2):
            writer.append(_trip(network, i))
        writer.close()
        # hand-plant a copy of segment 0 under an unreferenced name
        segments = directory / "segments"
        (segments / "seg-00077.utcq").write_bytes(
            (segments / "seg-00000.utcq").read_bytes()
        )
        reopened = _open_writer(directory, network)
        assert reopened.last_recovery.deleted_segments == ["seg-00077.utcq"]
        assert not (segments / "seg-00077.utcq").exists()
        assert reopened.sealed_trajectory_count == 2
        reopened.close()


def _seed(directory, network, count=4):
    writer = _open_writer(directory, network, segment_max=1)
    for i in range(count):
        writer.append(_trip(network, i))
    writer.close()


class TestCompactionCrashAtEveryBoundary:
    @pytest.fixture(scope="class")
    def clean_merge(self, network, tmp_path_factory):
        base = tmp_path_factory.mktemp("clean-merge")
        directory = base / "fleet"
        _seed(directory, network)
        fs = FaultingFilesystem()
        store = ManifestStore.open(directory, fs=fs)
        policy = SizeTieredPolicy(min_merge=2, max_merge=4)
        merge_segments(store, policy.plan(store.segments()))
        assert fs.ops > 0
        return fs.ops, _archive_sha(directory, base / "oracle.utcq")

    @pytest.mark.parametrize("mode", ["before", "after"])
    def test_recovery_after_interrupted_merge(
        self, mode, network, clean_merge, tmp_path
    ):
        total_ops, oracle_sha = clean_merge
        policy = SizeTieredPolicy(min_merge=2, max_merge=4)
        for fail_at in range(1, total_ops + 1):
            workdir = tmp_path / f"{mode}-{fail_at}"
            directory = workdir / "fleet"
            _seed(directory, network)
            fs = FaultingFilesystem(fail_at=fail_at, mode=mode)
            store = ManifestStore.open(directory, fs=fs)
            with pytest.raises(InjectedFault):
                merge_segments(store, policy.plan(store.segments()))
            # restart: either the swap generation landed (merged segment
            # wins, leftover sources are swept) or it did not (sources
            # win, the uncommitted merge output is swept) — never both,
            # never neither
            reopened = _open_writer(directory, network, segment_max=1)
            context = f"fault {mode} op {fail_at}/{total_ops}"
            assert reopened.sealed_trajectory_count == 4, context
            ids = sorted(
                i
                for segment in reopened.segments()
                for i in range(
                    segment.min_trajectory_id, segment.max_trajectory_id + 1
                )
            )
            assert ids == [0, 1, 2, 3], context
            _assert_directory_consistent(directory, reopened.store)
            assert (
                _archive_sha(directory, workdir / "compacted.utcq")
                == oracle_sha
            ), context
            assert recover(reopened.store).clean, context
            reopened.close()


class TestGcCrash:
    def test_crash_between_drop_commit_and_unlink_is_swept(
        self, network, tmp_path
    ):
        directory = tmp_path / "fleet"
        _seed(directory, network)  # segment times: 0-10, 100-110, ...
        fs = FaultingFilesystem()
        store = ManifestStore.open(directory, fs=fs)
        # gc commits the drop (3 ops), then unlinks; die before the
        # first unlink so both doomed segments survive on disk
        fs.fail_at, fs.mode = 4, "before"
        with pytest.raises(InjectedFault):
            gc_segments(store, drop_before=150)
        assert (directory / "segments" / "seg-00000.utcq").exists()

        reopened = _open_writer(directory, network, segment_max=1)
        assert reopened.last_recovery.deleted_segments == [
            "seg-00000.utcq",
            "seg-00001.utcq",
        ]
        assert reopened.sealed_trajectory_count == 2
        assert {s.name for s in reopened.segments()} == {
            "seg-00002.utcq",
            "seg-00003.utcq",
        }
        _assert_directory_consistent(directory, reopened.store)
        reopened.close()
