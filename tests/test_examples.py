"""Smoke tests for the example scripts.

The quickstart runs end to end in-process; the heavier examples are
compile-checked and their entry points imported (their full runs are
exercised manually / by CI at benchmark cadence).
"""

import os
import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"
SRC_DIR = pathlib.Path(__file__).parent.parent / "src"

# examples run in subprocesses, which don't inherit pytest's
# pythonpath ini setting — prepend src/ explicitly
SUBPROCESS_ENV = {
    **os.environ,
    "PYTHONPATH": str(SRC_DIR)
    + (os.pathsep + os.environ["PYTHONPATH"] if "PYTHONPATH" in os.environ else ""),
}
ALL_EXAMPLES = [
    "quickstart.py",
    "taxi_fleet_compression.py",
    "query_without_decompression.py",
    "map_matching_pipeline.py",
    "persist_and_query.py",
    "stream_replay.py",
]


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_compiles(name):
    py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)


def test_quickstart_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "compression ratios" in result.stdout
    assert "round-trip check passed" in result.stdout


def test_persist_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "persist_and_query.py")],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "lazy loading works" in result.stdout
    assert "wrote" in result.stdout


def test_query_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "query_without_decompression.py")],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "StIU index" in result.stdout
    assert "where(" in result.stdout


def test_stream_replay_example_runs():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / "stream_replay.py")],
        capture_output=True,
        text=True,
        env=SUBPROCESS_ENV,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr
    assert "querying while ingesting" in result.stdout
    assert "points/sec sustained" in result.stdout
    assert "live and compacted query results agree" in result.stdout
