"""The consolidated ``REPRO_*`` environment contract.

One module (:mod:`repro.config`) parses every knob, and the contract
is the same everywhere: unset/empty → default, well-formed → parsed
and clamped to the documented floor, malformed → one-line
:class:`ConfigError` naming the variable — surfaced by the CLI as a
one-line ``error:`` with exit status 2, never a traceback and never a
silent fallback to the default.
"""

import os
import subprocess
import sys

import pytest

from repro.config import ConfigError, env_choice, env_float, env_int, env_raw


@pytest.fixture(autouse=True)
def clean_env(monkeypatch):
    for name in list(os.environ):
        if name.startswith("REPRO_"):
            monkeypatch.delenv(name)
    return monkeypatch


class TestEnvRaw:
    def test_unset_is_none(self):
        assert env_raw("REPRO_TEST_KNOB") is None

    def test_empty_and_whitespace_are_none(self, monkeypatch):
        for value in ("", "   ", "\t"):
            monkeypatch.setenv("REPRO_TEST_KNOB", value)
            assert env_raw("REPRO_TEST_KNOB") is None

    def test_value_is_stripped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "  shm  ")
        assert env_raw("REPRO_TEST_KNOB") == "shm"


class TestEnvInt:
    def test_unset_yields_default(self):
        assert env_int("REPRO_TEST_KNOB", 8) == 8

    def test_well_formed_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "32")
        assert env_int("REPRO_TEST_KNOB", 8) == 32

    def test_clamped_to_floor_not_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0")
        assert env_int("REPRO_TEST_KNOB", 8, minimum=1) == 1

    def test_clamped_to_ceiling(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "1000000")
        assert env_int("REPRO_TEST_KNOB", 8, maximum=64) == 64

    def test_malformed_raises_named_one_liner(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "many")
        with pytest.raises(ConfigError) as caught:
            env_int("REPRO_TEST_KNOB", 8)
        message = str(caught.value)
        assert "REPRO_TEST_KNOB" in message
        assert "'many'" in message
        assert "\n" not in message

    def test_config_error_is_a_value_error(self, monkeypatch):
        # legacy call sites guard with `except ValueError` — keep them
        monkeypatch.setenv("REPRO_TEST_KNOB", "nope")
        with pytest.raises(ValueError):
            env_int("REPRO_TEST_KNOB", 8)


class TestEnvFloat:
    def test_unset_yields_default(self):
        assert env_float("REPRO_TEST_KNOB", 1.5) == 1.5

    def test_well_formed_is_parsed(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "0.25")
        assert env_float("REPRO_TEST_KNOB", 1.5) == 0.25

    def test_clamped(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "-3.0")
        assert env_float("REPRO_TEST_KNOB", 1.5, minimum=0.0) == 0.0

    def test_malformed_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "fast")
        with pytest.raises(ConfigError, match="REPRO_TEST_KNOB"):
            env_float("REPRO_TEST_KNOB", 1.5)


class TestEnvChoice:
    CHOICES = ("shm", "pickle")

    def test_unset_yields_default(self):
        assert env_choice("REPRO_TEST_KNOB", "shm", self.CHOICES) == "shm"

    def test_case_folded_match(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "PICKLE")
        assert (
            env_choice("REPRO_TEST_KNOB", "shm", self.CHOICES) == "pickle"
        )

    def test_unknown_value_lists_the_choices(self, monkeypatch):
        monkeypatch.setenv("REPRO_TEST_KNOB", "carrier-pigeon")
        with pytest.raises(ConfigError) as caught:
            env_choice("REPRO_TEST_KNOB", "shm", self.CHOICES)
        message = str(caught.value)
        assert "pickle" in message and "shm" in message
        assert "carrier-pigeon" in message


class TestConsumersUseTheContract:
    """Spot-check the real knob resolvers behind the shared parser."""

    def test_transport_knob(self, monkeypatch):
        from repro.query.transport import resolve_transport

        monkeypatch.setenv("REPRO_TRANSPORT", "SHM")
        assert resolve_transport() == "shm"
        monkeypatch.setenv("REPRO_TRANSPORT", "udp")
        with pytest.raises(ConfigError, match="REPRO_TRANSPORT"):
            resolve_transport()

    def test_slab_bytes_floor(self, monkeypatch):
        from repro.query.transport import _MIN_SLAB_BYTES, resolve_slab_bytes

        monkeypatch.setenv("REPRO_SLAB_BYTES", "1")
        assert resolve_slab_bytes() == _MIN_SLAB_BYTES

    def test_dispatch_window_knob(self, monkeypatch):
        from repro.query.engine import resolve_dispatch_window

        monkeypatch.setenv("REPRO_DISPATCH_WINDOW", "three")
        with pytest.raises(ConfigError, match="REPRO_DISPATCH_WINDOW"):
            resolve_dispatch_window()
        assert resolve_dispatch_window(3) == 3  # explicit wins, no env

    def test_frontier_cache_knob(self, monkeypatch):
        from repro.network.shortest_path import resolve_frontier_cache_size

        monkeypatch.setenv("REPRO_FRONTIER_CACHE", "0")
        assert resolve_frontier_cache_size() == 1  # floor is 1, not 0

    def test_cli_maps_config_error_to_exit_2(self, tmp_path):
        # end to end: a garbage knob must exit 2 with a one-line
        # `error:` naming the variable, not a traceback
        from repro.core.compressor import compress_dataset
        from repro.trajectories.datasets import load_dataset

        network, trajectories = load_dataset(
            "CD", 4, seed=1, network_scale=8
        )
        archive_path = tmp_path / "tiny.utcq"
        compress_dataset(
            network, trajectories, default_interval=10
        ).save(archive_path)
        query_path = tmp_path / "queries.json"
        query_path.write_text(
            '{"kind": "where", "trajectory": 0, "time": 10}\n'
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, ["src", env.get("PYTHONPATH")])
        )
        env["REPRO_TRANSPORT"] = "carrier-pigeon"
        done = subprocess.run(
            [
                sys.executable, "-m", "repro", "query", "batch",
                str(archive_path), "--input", str(query_path),
                "--workers", "2", "--profile", "CD",
                "--dataset-seed", "1", "--network-scale", "8",
            ],
            cwd="/root/repo",
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert done.returncode == 2, done.stdout + done.stderr
        assert "error:" in done.stderr
        assert "REPRO_TRANSPORT" in done.stderr
        assert "Traceback" not in done.stderr
