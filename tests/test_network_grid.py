"""Tests for grid partitioning (StIU regions) and rectangles."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.network.generators import grid_network
from repro.network.graph import BoundingBox
from repro.network.grid import GridPartition, Rect


@pytest.fixture
def unit_grid() -> GridPartition:
    return GridPartition(BoundingBox(0.0, 0.0, 8.0, 8.0), 4)


class TestRect:
    def test_contains(self):
        rect = Rect(0, 0, 2, 2)
        assert rect.contains(1, 1)
        assert rect.contains(0, 0)
        assert not rect.contains(3, 1)

    def test_degenerate_rejected(self):
        with pytest.raises(ValueError):
            Rect(1, 0, 0, 1)

    def test_intersects(self):
        assert Rect(0, 0, 2, 2).intersects(Rect(1, 1, 3, 3))
        assert not Rect(0, 0, 1, 1).intersects(Rect(2, 2, 3, 3))
        # touching edges count as intersecting
        assert Rect(0, 0, 1, 1).intersects(Rect(1, 1, 2, 2))

    def test_contains_rect(self):
        assert Rect(0, 0, 4, 4).contains_rect(Rect(1, 1, 2, 2))
        assert not Rect(0, 0, 4, 4).contains_rect(Rect(1, 1, 5, 2))


class TestGridPartition:
    def test_cell_count(self, unit_grid):
        assert unit_grid.cell_count == 16

    def test_cell_of_point_corners(self, unit_grid):
        assert unit_grid.cell_of_point(0.1, 0.1) == 0
        assert unit_grid.cell_of_point(7.9, 0.1) == 3
        assert unit_grid.cell_of_point(0.1, 7.9) == 12
        assert unit_grid.cell_of_point(7.9, 7.9) == 15

    def test_points_outside_clamp(self, unit_grid):
        assert unit_grid.cell_of_point(-5, -5) == 0
        assert unit_grid.cell_of_point(50, 50) == 15

    def test_cell_rect_round_trip(self, unit_grid):
        for cell in range(unit_grid.cell_count):
            rect = unit_grid.cell_rect(cell)
            cx = (rect.min_x + rect.max_x) / 2
            cy = (rect.min_y + rect.max_y) / 2
            assert unit_grid.cell_of_point(cx, cy) == cell

    def test_cell_rect_out_of_range(self, unit_grid):
        with pytest.raises(ValueError):
            unit_grid.cell_rect(16)

    def test_invalid_cells_per_side(self):
        with pytest.raises(ValueError):
            GridPartition(BoundingBox(0, 0, 1, 1), 0)

    def test_cells_of_rect_covers_intersections(self, unit_grid):
        cells = unit_grid.cells_of_rect(Rect(1.0, 1.0, 3.0, 3.0))
        assert set(cells) == {0, 1, 4, 5}

    def test_cells_of_rect_single_cell(self, unit_grid):
        assert unit_grid.cells_of_rect(Rect(0.5, 0.5, 1.0, 1.0)) == [0]

    def test_cells_of_segment_horizontal(self, unit_grid):
        cells = unit_grid.cells_of_segment(0.5, 1.0, 7.5, 1.0)
        assert cells == [0, 1, 2, 3]

    def test_cells_of_segment_diagonal_is_connectedish(self, unit_grid):
        cells = unit_grid.cells_of_segment(0.5, 0.5, 7.5, 7.5)
        assert cells[0] == 0 and cells[-1] == 15
        assert {0, 5, 10, 15}.issubset(set(cells))

    def test_cells_of_point_segment(self, unit_grid):
        assert unit_grid.cells_of_segment(1.0, 1.0, 1.0, 1.0) == [0]

    def test_rect_of_cells(self, unit_grid):
        rect = unit_grid.rect_of_cells([0, 5])
        assert (rect.min_x, rect.min_y) == (0.0, 0.0)
        assert (rect.max_x, rect.max_y) == (4.0, 4.0)

    def test_rect_of_cells_empty_rejected(self, unit_grid):
        with pytest.raises(ValueError):
            unit_grid.rect_of_cells([])

    def test_for_network(self):
        network = grid_network(4, 4, spacing=50.0)
        grid = GridPartition.for_network(network, 8)
        for vertex in network.vertices():
            cell = grid.cell_of_point(vertex.x, vertex.y)
            assert 0 <= cell < grid.cell_count

    def test_cells_of_edge(self):
        network = grid_network(3, 3, spacing=100.0)
        grid = GridPartition.for_network(network, 4)
        cells = grid.cells_of_edge(network, 0, 1)
        assert len(cells) >= 1

    def test_degenerate_box_is_expanded(self):
        grid = GridPartition(BoundingBox(1.0, 1.0, 1.0, 1.0), 2)
        assert grid.box.width > 0 and grid.box.height > 0


@given(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.integers(1, 32),
)
def test_property_point_maps_into_its_cell_rect(x, y, cells):
    grid = GridPartition(BoundingBox(0.0, 0.0, 100.0, 100.0), cells)
    cell = grid.cell_of_point(x, y)
    rect = grid.cell_rect(cell)
    eps = 1e-6
    assert rect.min_x - eps <= x <= rect.max_x + eps
    assert rect.min_y - eps <= y <= rect.max_y + eps


@given(
    st.floats(5, 95), st.floats(5, 95), st.floats(5, 95), st.floats(5, 95),
    st.integers(1, 16),
)
def test_property_rect_cells_cover_rect_corners(x0, y0, x1, y1, cells):
    grid = GridPartition(BoundingBox(0.0, 0.0, 100.0, 100.0), cells)
    rect = Rect(min(x0, x1), min(y0, y1), max(x0, x1), max(y0, y1))
    covered = set(grid.cells_of_rect(rect))
    for cx, cy in [
        (rect.min_x, rect.min_y),
        (rect.max_x, rect.min_y),
        (rect.min_x, rect.max_y),
        (rect.max_x, rect.max_y),
    ]:
        assert grid.cell_of_point(cx, cy) in covered
