"""Property tests for Algorithm 1 over arbitrary score matrices."""

from hypothesis import given
from hypothesis import strategies as st

from repro.core.refselect import select_references


def matrices(max_n=8):
    return st.integers(1, max_n).flatmap(
        lambda n: st.lists(
            st.lists(
                st.floats(min_value=0.0, max_value=1.0),
                min_size=n,
                max_size=n,
            ),
            min_size=n,
            max_size=n,
        ).map(lambda m: _zero_diagonal(m))
    )


def _zero_diagonal(matrix):
    for i in range(len(matrix)):
        matrix[i][i] = 0.0
    return matrix


@given(matrices())
def test_property_every_instance_is_covered_exactly_once(matrix):
    n = len(matrix)
    selection = select_references(matrix)
    selection.validate(n)
    refs = set(selection.references)
    nonrefs = selection.non_references
    assert refs.isdisjoint(nonrefs)
    assert refs | set(nonrefs) == set(range(n))
    assert len(nonrefs) == len(set(nonrefs))  # one reference each


@given(matrices())
def test_property_single_order_compression(matrix):
    """No instance is both a reference and represented by another."""
    selection = select_references(matrix)
    for reference, members in selection.assignments.items():
        assert reference in selection.references
        for member in members:
            assert member not in selection.references
            assert member not in selection.assignments


@given(matrices())
def test_property_assignments_have_positive_scores(matrix):
    selection = select_references(matrix)
    for reference, members in selection.assignments.items():
        for member in members:
            assert matrix[reference][member] > 0.0


@given(matrices())
def test_property_zero_rows_become_standalone(matrix):
    """An instance with all-zero row and column ends up standalone."""
    n = len(matrix)
    selection = select_references(matrix)
    for i in range(n):
        row_zero = all(matrix[i][j] == 0.0 for j in range(n))
        col_zero = all(matrix[j][i] == 0.0 for j in range(n))
        if row_zero and col_zero:
            assert i in selection.references
            assert selection.assignments[i] == []


@given(matrices(max_n=6))
def test_property_first_pick_is_global_maximum(matrix):
    """The first assignment follows the greedy rule: the best non-zero
    score becomes a (reference, member) pair."""
    best = 0.0
    best_pair = None
    n = len(matrix)
    for w in range(n):
        for v in range(n):
            if w != v and matrix[w][v] > best:
                best = matrix[w][v]
                best_pair = (w, v)
    selection = select_references(matrix)
    if best_pair is None:
        assert all(not m for m in selection.assignments.values())
    else:
        w, v = best_pair
        assert v in selection.assignments[w]
