"""Streaming map matching: edge cases and batch equivalence.

The streaming matcher shares the per-step beam operations with the
batch matcher, so its sealed output must be *identical* to a batch
``match()`` over the same accepted points — these tests pin that down,
including the feed shapes the ingestion path hits in production: a
single-point feed, out-of-order timestamps, and gaps long enough to
split trips.
"""

import random

import pytest

from repro.mapmatching import (
    MatcherConfig,
    ProbabilisticMapMatcher,
    synthesize_raw_dataset,
    synthesize_raw_trajectory,
)
from repro.network.generators import grid_network
from repro.stream import SessionConfig, StreamingMapMatcher, TripSessionizer
from repro.stream.ingest import ObserveStatus
from repro.trajectories.datasets import CD
from repro.trajectories.model import RawPoint, RawTrajectory


@pytest.fixture(scope="module")
def network():
    return grid_network(8, 8, spacing=100.0)


@pytest.fixture(scope="module")
def matcher(network):
    return ProbabilisticMapMatcher(
        network, MatcherConfig(sigma=20.0, search_radius=50.0)
    )


def assert_equal_trajectories(streamed, batched):
    assert (streamed is None) == (batched is None)
    if streamed is None:
        return
    assert streamed.times == batched.times
    assert streamed.instance_count == batched.instance_count
    for a, b in zip(streamed.instances, batched.instances):
        assert a.signature() == b.signature()
        assert a.probability == b.probability
        assert a.path == b.path
        assert a.location_edge_indices == b.location_edge_indices


class TestBatchEquivalence:
    def test_streaming_matches_batch_on_synthetic_feeds(
        self, network, matcher
    ):
        raws = synthesize_raw_dataset(
            network, CD.generation_config(), 8, seed=31, noise_sigma=25.0
        )
        for raw in raws:
            streaming = StreamingMapMatcher(matcher=matcher)
            for point in raw:
                assert streaming.observe(point) is ObserveStatus.ACCEPTED
            assert_equal_trajectories(streaming.finish(), matcher.match(raw))

    def test_single_point_feed(self, network, matcher):
        streaming = StreamingMapMatcher(matcher=matcher)
        point = RawPoint(150.0, 40.0, 100)
        assert streaming.observe(point) is ObserveStatus.ACCEPTED
        streamed = streaming.finish()
        batched = matcher.match(RawTrajectory((point,)))
        assert_equal_trajectories(streamed, batched)
        assert streamed.times == [100]

    def test_out_of_order_timestamps_are_dropped(self, network, matcher):
        rng = random.Random(33)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        points = list(raw)
        # inject a stale fix (timestamp in the past) mid-feed
        stale = RawPoint(points[2].x, points[2].y, points[0].t)
        feed = points[:3] + [stale, RawPoint(points[3].x, points[3].y, points[3].t)] + points[4:]
        streaming = StreamingMapMatcher(matcher=matcher)
        statuses = [streaming.observe(p) for p in feed]
        assert statuses.count(ObserveStatus.STALE) == 1
        assert streaming.counters.stale == 1
        # output equals batch over the accepted (in-order) subsequence
        assert_equal_trajectories(streaming.finish(), matcher.match(raw))

    def test_duplicate_timestamp_is_stale(self, matcher):
        streaming = StreamingMapMatcher(matcher=matcher)
        assert streaming.observe(RawPoint(50.0, 10.0, 5)) is ObserveStatus.ACCEPTED
        assert streaming.observe(RawPoint(60.0, 10.0, 5)) is ObserveStatus.STALE
        assert streaming.point_count == 1

    def test_finish_resets_for_the_next_trip(self, network, matcher):
        rng = random.Random(34)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        streaming = StreamingMapMatcher(matcher=matcher)
        for point in raw:
            streaming.observe(point)
        first = streaming.finish()
        assert first is not None
        assert streaming.point_count == 0
        # same feed again: the second trip must match batch too
        for point in raw:
            streaming.observe(point)
        assert_equal_trajectories(streaming.finish(), matcher.match(raw))

    def test_empty_feed_finishes_to_none(self, matcher):
        assert StreamingMapMatcher(matcher=matcher).finish() is None


class TestGapSplitting:
    def test_long_gap_splits_into_batch_equivalent_trips(
        self, network, matcher
    ):
        """A silence beyond gap_timeout cuts the trip; each piece must
        equal batch matching of its own points."""
        rng = random.Random(35)
        first = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        second = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=10.0
        )
        gap = 10_000
        offset = first.times[-1] + gap
        shifted = RawTrajectory(
            tuple(RawPoint(p.x, p.y, p.t + offset) for p in second)
        )
        sessionizer = TripSessionizer(
            network,
            MatcherConfig(sigma=20.0, search_radius=50.0),
            SessionConfig(gap_timeout=300.0),
        )
        sealed = []
        for point in list(first) + list(shifted):
            sealed.extend(sessionizer.observe("cab-7", point))
        sealed.extend(sessionizer.flush())
        assert sessionizer.counters.cuts["gap"] == 1
        assert len(sealed) == 2
        assert_equal_trajectories(sealed[0], matcher.match(first))
        assert_equal_trajectories(sealed[1], matcher.match(shifted))
        assert [t.trajectory_id for t in sealed] == [0, 1]


class TestFixedLag:
    def test_agreed_prefix_and_estimate(self, network, matcher):
        rng = random.Random(36)
        raw = synthesize_raw_trajectory(
            network, CD.generation_config(), rng, noise_sigma=15.0
        )
        streaming = StreamingMapMatcher(matcher=matcher, fixed_lag=2)
        assert streaming.fixed_lag_estimate() is None
        for point in raw:
            streaming.observe(point)
            estimate = streaming.fixed_lag_estimate()
            assert estimate is not None
            index, location = estimate
            assert 0 <= index < streaming.point_count
            assert index >= streaming.point_count - 1 - 2
            length = network.edge_length(*location.edge)
            assert 0.0 <= location.ndist <= length
        assert 0 <= streaming.agreed_prefix_length() <= streaming.point_count
