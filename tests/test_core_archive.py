"""Tests for archive containers and compression-ratio accounting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.archive import (
    ComponentBits,
    CompressionParams,
    CompressionStats,
)


class TestComponentBits:
    def test_total_sums_all_fields(self):
        bits = ComponentBits(
            time=1, edge=2, distance=4, flags=8, probability=16, overhead=32
        )
        assert bits.total == 63

    def test_add_accumulates(self):
        a = ComponentBits(time=10, edge=20)
        b = ComponentBits(time=1, edge=2, probability=5)
        a.add(b)
        assert a.time == 11
        assert a.edge == 22
        assert a.probability == 5

    def test_default_is_zero(self):
        assert ComponentBits().total == 0


class TestCompressionStats:
    def test_ratios(self):
        stats = CompressionStats(
            original=ComponentBits(time=320, edge=640),
            compressed=ComponentBits(time=32, edge=64),
        )
        assert stats.time_ratio == 10.0
        assert stats.edge_ratio == 10.0
        assert stats.total_ratio == 10.0

    def test_zero_compressed_component(self):
        stats = CompressionStats(original=ComponentBits(time=100))
        assert stats.time_ratio == float("inf")

    def test_zero_both_is_ratio_one(self):
        stats = CompressionStats()
        assert stats.flags_ratio == 1.0

    def test_as_row_keys(self):
        row = CompressionStats().as_row()
        assert list(row) == ["Total", "T", "E", "D", "T'", "p"]

    def test_add_merges_both_sides(self):
        a = CompressionStats(
            original=ComponentBits(time=100), compressed=ComponentBits(time=10)
        )
        b = CompressionStats(
            original=ComponentBits(time=50), compressed=ComponentBits(time=40)
        )
        a.add(b)
        assert a.original.time == 150
        assert a.compressed.time == 50
        assert a.time_ratio == 3.0


class TestCompressionParams:
    def test_defaults(self):
        params = CompressionParams(
            eta_distance=1 / 128,
            eta_probability=1 / 512,
            default_interval=10,
            symbol_width=3,
        )
        assert params.t0_bits == 17
        assert params.pivot_count == 1

    def test_frozen(self):
        params = CompressionParams(1 / 128, 1 / 512, 10, 3)
        with pytest.raises(AttributeError):
            params.symbol_width = 5


@given(
    st.lists(
        st.tuples(
            st.integers(0, 10**6),
            st.integers(0, 10**6),
        ),
        min_size=1,
        max_size=20,
    )
)
def test_property_stats_addition_is_sum(parts):
    total = CompressionStats()
    for original, compressed in parts:
        total.add(
            CompressionStats(
                original=ComponentBits(edge=original),
                compressed=ComponentBits(edge=compressed),
            )
        )
    assert total.original.edge == sum(o for o, _ in parts)
    assert total.compressed.edge == sum(c for _, c in parts)
