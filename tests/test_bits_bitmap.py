"""Tests for the word-aligned bitmap codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.bits import bitmap
from repro.bits.bitio import BitReader


def round_trip(bits, word_size=bitmap.DEFAULT_WORD_SIZE):
    writer = bitmap.compress(bits, word_size)
    reader = BitReader.from_writer(writer)
    return bitmap.decompress(reader, word_size)


class TestBitmapRoundTrip:
    def test_empty(self):
        assert round_trip([]) == []

    def test_all_ones(self):
        bits = [1] * 100
        assert round_trip(bits) == bits

    def test_all_zeros(self):
        bits = [0] * 100
        assert round_trip(bits) == bits

    def test_mixed(self):
        bits = [1, 0] * 37 + [1]
        assert round_trip(bits) == bits

    def test_non_multiple_of_word_size(self):
        bits = [1] * 13
        assert round_trip(bits) == bits

    def test_alternating_fills_and_literals(self):
        bits = [1] * 32 + [0, 1, 1, 0, 1, 0, 0, 1] + [0] * 64 + [1, 1, 1]
        assert round_trip(bits) == bits

    def test_custom_word_size(self):
        bits = [0] * 20 + [1] * 20
        assert round_trip(bits, word_size=4) == bits

    def test_word_size_validation(self):
        with pytest.raises(ValueError):
            bitmap.compress([1, 0], word_size=1)
        with pytest.raises(ValueError):
            bitmap.decompress(BitReader(b"", 0), word_size=0)


class TestBitmapCompression:
    def test_long_fills_compress_well(self):
        bits = [1] * 4096
        assert bitmap.compressed_size(bits) < len(bits) / 10

    def test_random_data_does_not_explode(self):
        import random

        rng = random.Random(0)
        bits = [rng.randint(0, 1) for _ in range(512)]
        # literal overhead is 1 flag bit per 8-bit word plus the header
        assert bitmap.compressed_size(bits) <= len(bits) * 1.2 + 32

    def test_sparse_flag_strings_compress(self):
        # T'-like strings: mostly ones with occasional zeros
        bits = ([1] * 31 + [0]) * 16
        assert bitmap.compressed_size(bits) < len(bits)


@given(st.lists(st.integers(0, 1), max_size=600))
def test_property_round_trip(bits):
    assert round_trip(bits) == bits


@given(
    st.lists(st.integers(0, 1), max_size=200),
    st.integers(min_value=2, max_value=16),
)
def test_property_round_trip_any_word_size(bits, word_size):
    assert round_trip(bits, word_size) == bits


@given(st.integers(1, 2000), st.integers(0, 1))
def test_property_uniform_fill_logarithmic(length, fill):
    bits = [fill] * length
    # one fill word encodes the whole run: size grows ~log(length)
    assert bitmap.compressed_size(bits) <= 40 + 2 * length.bit_length() + length % 8
