"""Chaos suite for the always-on query service.

Every scenario injects a real fault — a worker killed mid-query, a
response delayed past its budget, a shard corrupted on disk — and pins
the service's contract under it:

* every *completed* request returns results identical to a healthy
  single-process engine (degradation changes throughput, never
  answers);
* no request outlives its deadline by more than scheduling slack;
* failures are *typed* (``Overloaded`` / ``DeadlineExceeded`` /
  ``ShardQuarantined``), never hangs, partial answers, or crashes of
  the service itself.

The moving parts (token bucket, admission, breaker, retry policy,
supervisor) also get direct unit tests with fake clocks and fake
pools, which is where the state machines are pinned cheaply.
"""

import threading
import time
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.core.archive import CompressedArchive
from repro.core.compressor import compress_dataset
from repro.query import StIUIndex, ShardedQueryEngine, save_index
from repro.query.engine import WhereQuery
from repro.serve import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    AdmissionController,
    ChaosProxy,
    CircuitBreaker,
    DeadlineExceeded,
    Overloaded,
    QueryService,
    RetryPolicy,
    ServiceClosedError,
    ServiceConfig,
    ShardQuarantined,
    TokenBucket,
    WorkerPoolUnavailable,
    WorkerSupervisor,
    corrupt_shard,
    delay_fault,
    kill_fault,
    restore_shard,
)
from repro.serve.service import MODE_BATCH, MODE_SHARDED, MODE_SINGLE
from repro.trajectories.datasets import load_dataset

from test_query_engine import make_queries

SHARDS = 3


@pytest.fixture(scope="module")
def world(tmp_path_factory):
    network, trajectories = load_dataset("CD", 24, seed=47, network_scale=10)
    archive = compress_dataset(network, trajectories, default_interval=10)
    root = tmp_path_factory.mktemp("serve")
    shard_paths = []
    total = len(archive.trajectories)
    for shard in range(SHARDS):
        lo = shard * total // SHARDS
        hi = (shard + 1) * total // SHARDS
        part = CompressedArchive(
            params=archive.params, trajectories=archive.trajectories[lo:hi]
        )
        path = root / f"shard-{shard}.utcq"
        part.save(path)
        save_index(StIUIndex(network, part), path)
        shard_paths.append(path)
    queries = make_queries(network, trajectories, count=15, seed=3)
    with ShardedQueryEngine(shard_paths, network=network, workers=1) as ref:
        expected = ref.run(queries)
    return network, shard_paths, queries, expected


def make_service(world, *, config=None, **kwargs):
    """A QueryService with a chaos proxy around its real worker pool."""
    network, shard_paths, _, _ = world
    holder = []

    def wrap(pool):
        proxy = ChaosProxy(pool)
        holder.append(proxy)
        return proxy

    service = QueryService(
        shard_paths,
        network=network,
        workers=2,
        pool_wrapper=wrap,
        config=config
        or ServiceConfig(deadline=30.0, health_interval=None),
        **kwargs,
    )
    return service, holder[0]


# ----------------------------------------------------------------------
# chaos scenarios (real processes, injected faults)
# ----------------------------------------------------------------------
class TestChaosScenarios:
    def test_healthy_service_matches_reference(self, world):
        _, _, queries, expected = world
        service, _ = make_service(world)
        with service:
            response = service.submit_many(queries)
            assert response.ok
            assert response.results == expected
            assert response.mode == MODE_SHARDED
            assert service.stats.snapshot()["served_sharded"] == 1

    def test_worker_killed_mid_query_recovers_identically(self, world):
        _, _, queries, expected = world
        service, proxy = make_service(world)
        with service:
            proxy.arm(kill_fault())
            response = service.submit_many(queries)
            assert response.ok
            assert response.results == expected
            stats = service.supervisor.stats.snapshot()
            assert stats["worker_deaths"] >= 1
            assert stats["respawns"] >= 1
            # the service survives and keeps serving afterwards
            again = service.submit_many(queries)
            assert again.ok and again.results == expected

    def test_slow_worker_is_hedged_or_retried_within_deadline(self, world):
        _, _, queries, expected = world
        service, proxy = make_service(world)
        with service:
            proxy.arm(delay_fault(1.5))
            started = time.monotonic()
            response = service.submit_many(queries)
            elapsed = time.monotonic() - started
            assert response.ok
            assert response.results == expected
            assert elapsed < 1.5  # did not serialize behind the sleeper
            stats = service.supervisor.stats.snapshot()
            assert stats["hedges_launched"] + stats["attempt_timeouts"] >= 1

    def test_deadline_exhaustion_fails_typed_and_bounded(self, world):
        _, _, queries, _ = world
        config = ServiceConfig(
            deadline=0.6,
            health_interval=None,
            ladder=(MODE_SHARDED,),  # no fallback: the pool must answer
            retry=RetryPolicy(attempt_timeout=0.2, hedge_delay=0.05),
        )
        service, proxy = make_service(world, config=config)
        with service:
            # every submission (retries and hedges included) sleeps past
            # the whole deadline
            proxy.arm(*[delay_fault(3.0)] * 12)
            started = time.monotonic()
            response = service.submit_many(queries)
            elapsed = time.monotonic() - started
            assert not response.ok
            assert response.kind in ("deadline", "failed")
            assert isinstance(
                response.error, (DeadlineExceeded, WorkerPoolUnavailable)
            )
            assert elapsed < 0.6 + 0.5  # bounded: deadline + slack
            proxy.clear()

    def test_breaker_opens_and_ladder_serves_degraded(self, world):
        _, _, queries, expected = world
        config = ServiceConfig(
            deadline=30.0,
            health_interval=None,
            breaker_failures=1,
            breaker_reset=0.2,
            retry=RetryPolicy(
                attempt_timeout=0.2, max_attempts=2, hedge_delay=0.05
            ),
        )
        service, proxy = make_service(world, config=config)
        with service:
            # kill every pool submission: the sharded rung burns its
            # attempts, the breaker opens, the ladder still answers
            proxy.arm(*[kill_fault()] * 30)
            response = service.submit_many(queries)
            assert response.ok
            assert response.results == expected
            assert response.mode in (MODE_BATCH, MODE_SINGLE)
            assert service.breaker.opens >= 1
            proxy.clear()
            snapshot = service.stats.snapshot()
            assert (
                snapshot["served_degraded_batch"]
                + snapshot["served_degraded_single"]
                >= 1
            )
            # while open, requests skip the pool entirely (still correct)
            if service.breaker.state == OPEN:
                degraded = service.submit_many(queries)
                assert degraded.ok and degraded.results == expected
                assert degraded.mode in (MODE_BATCH, MODE_SINGLE)
            # after the reset window the half-open probe heals it
            time.sleep(0.25)
            healed = service.submit_many(queries)
            assert healed.ok and healed.results == expected
            assert healed.mode == MODE_SHARDED
            assert service.breaker.state == CLOSED

    def test_corrupt_shard_quarantined_then_readmitted(self, world):
        network, shard_paths, queries, expected = world
        config = ServiceConfig(
            deadline=30.0, health_interval=None, quarantine_reprobe=0.2
        )
        service, proxy = make_service(world, config=config)
        with service:
            target = str(shard_paths[1])
            pristine = corrupt_shard(target)
            try:
                # flush warm workers so fresh ones re-read the bad bytes
                proxy.arm(kill_fault())
                response = service.submit_many(queries)
                assert not response.ok
                assert response.kind == "quarantined"
                assert isinstance(response.error, ShardQuarantined)
                assert service.quarantined_shards() == [target]

                # requests that do not touch the bad shard still work;
                # pick a where query routed to a healthy shard
                healthy = next(
                    query
                    for query in queries
                    if hasattr(query, "trajectory_id")
                    and service.engine.shard_for(query.trajectory_id)
                    not in (None, target)
                )
                ok_response = service.submit(healthy)
                assert ok_response.ok
                assert (
                    ok_response.result
                    == expected[queries.index(healthy)]
                )

                # a range query needs every shard: typed refusal, never
                # a partial union
                range_query = next(
                    query for query in queries if hasattr(query, "rect")
                )
                refused = service.submit(range_query)
                assert not refused.ok
                assert refused.kind == "quarantined"
            finally:
                restore_shard(target, pristine)
            time.sleep(0.25)  # past the re-probe window
            healed = service.submit_many(queries)
            assert healed.ok
            assert healed.results == expected
            assert service.quarantined_shards() == []
            assert service.stats.snapshot()["shards_readmitted"] == 1

    def test_close_is_idempotent_and_submit_after_close_is_typed(
        self, world
    ):
        service, _ = make_service(world)
        service.close()
        service.close()  # idempotent
        with pytest.raises(ServiceClosedError):
            service.submit_many(world[2])

    def test_pipelined_dispatch_overlaps_shard_roundtrips(self, world):
        _, _, queries, expected = world
        # long attempt budget and hedge delay: the measured overlap is
        # the dispatch pipeline's, not the hedging machinery's
        config = ServiceConfig(
            deadline=30.0,
            health_interval=None,
            retry=RetryPolicy(attempt_timeout=10.0, hedge_delay=10.0),
        )
        service, proxy = make_service(world, config=config)
        with service:
            # every shard sub-batch sleeps 0.6s; three shards on two
            # workers take ~1.2s pipelined vs 1.8s serialized
            proxy.arm(*[delay_fault(0.6)] * SHARDS)
            started = time.monotonic()
            response = service.submit_many(queries)
            elapsed = time.monotonic() - started
            assert response.ok
            assert response.results == expected
            assert response.mode == MODE_SHARDED
            assert elapsed < 0.6 * SHARDS  # strictly beats serial

    def test_worker_killed_mid_slab_write_never_torn_read(self, world):
        from repro.query.transport import list_arena_slabs
        from repro.serve import midwrite_kill_fault

        _, _, queries, expected = world
        service, proxy = make_service(world)
        with service:
            arena = service.engine.pool.transport_arena
            assert arena is not None  # shm is the default transport
            proxy.arm(midwrite_kill_fault())
            response = service.submit_many(queries)
            # the torn entry is never decoded: the worker died before
            # returning a descriptor, the supervisor respawned, and the
            # answers are still oracle-identical
            assert response.ok
            assert response.results == expected
            stats = service.supervisor.stats.snapshot()
            assert stats["worker_deaths"] >= 1
            assert stats["respawns"] >= 1
            assert proxy.injected["midwrite_kill"] == 1
            # the dead generation's slabs were swept on respawn
            generation = service.engine.pool.generation
            assert generation >= 1
            for name in list_arena_slabs(arena):
                assert f"-g{generation}-" in name
            again = service.submit_many(queries)
            assert again.ok and again.results == expected
        assert list_arena_slabs(arena) == []

    def test_hotcache_serves_hits_and_quarantine_clears_it(self, world):
        network, shard_paths, queries, expected = world
        config = ServiceConfig(
            deadline=30.0,
            health_interval=None,
            quarantine_reprobe=0.2,
            hotcache_entries=64,
        )
        service, proxy = make_service(world, config=config)
        with service:
            cache = service.engine.hotcache
            assert cache is not None
            # run 1 establishes popularity, run 2 admits, run 3 hits —
            # every run oracle-identical
            for _ in range(3):
                response = service.submit_many(queries)
                assert response.ok and response.results == expected
            assert cache.stats()["hits"] > 0
            assert len(cache) > 0

            target = str(shard_paths[1])
            pristine = corrupt_shard(target)
            try:
                # a query the cache has never seen, routed at the bad
                # shard: the pool must be consulted, so the corruption
                # is observed (cached answers alone never touch it)
                probe = next(
                    WhereQuery(q.trajectory_id, q.t + 1, q.alpha)
                    for q in queries
                    if hasattr(q, "trajectory_id")
                    and service.engine.shard_for(q.trajectory_id)
                    == target
                )
                proxy.arm(kill_fault())  # flush warm workers
                refused = service.submit(probe)
                assert refused.kind == "quarantined"
                # quarantine invalidated every cached answer: nothing
                # is served from behind the quarantine, cached or not
                assert len(cache) == 0
                blocked = service.submit_many(queries)
                assert blocked.kind == "quarantined"
            finally:
                restore_shard(target, pristine)
            time.sleep(0.25)
            healed = service.submit_many(queries)
            assert healed.ok and healed.results == expected


# ----------------------------------------------------------------------
# admission control (fake clock)
# ----------------------------------------------------------------------
class FakeClock:
    def __init__(self) -> None:
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestAdmission:
    def test_token_bucket_spends_and_refills(self):
        clock = FakeClock()
        bucket = TokenBucket(rate_per_second=2.0, burst=2.0, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        assert bucket.seconds_until() == pytest.approx(0.5)
        clock.advance(0.5)
        assert bucket.try_take()
        clock.advance(100.0)  # refill caps at burst
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()

    def test_in_flight_window_sheds_then_recovers(self):
        controller = AdmissionController(max_in_flight=2)
        first = controller.admit("a")
        second = controller.admit("b")
        with pytest.raises(Overloaded):
            controller.admit("c")
        first.release()
        with controller.admit("c"):
            pass
        second.release()
        assert controller.in_flight == 0

    def test_rate_limit_is_per_client(self):
        clock = FakeClock()
        controller = AdmissionController(
            max_in_flight=10, rate_per_second=1.0, burst=1.0, clock=clock
        )
        controller.admit("hot").release()
        with pytest.raises(Overloaded) as excinfo:
            controller.admit("hot")
        assert excinfo.value.retry_after > 0
        # a different client is untouched by the hot client's bucket
        controller.admit("cold").release()

    def test_service_sheds_typed_overload_end_to_end(self, world):
        _, _, queries, _ = world
        config = ServiceConfig(
            deadline=30.0,
            health_interval=None,
            rate_per_second=0.001,
            burst=1.0,
        )
        service, _ = make_service(world, config=config)
        with service:
            first = service.submit(queries[0], client="greedy")
            assert first.ok
            shed = service.submit(queries[0], client="greedy")
            assert not shed.ok and shed.kind == "overloaded"
            assert isinstance(shed.error, Overloaded)
            other = service.submit(queries[0], client="patient")
            assert other.ok
            assert service.stats.snapshot()["overloaded"] == 1


# ----------------------------------------------------------------------
# circuit breaker (fake clock)
# ----------------------------------------------------------------------
class TestBreaker:
    def test_full_cycle(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=2, reset_timeout=5.0, clock=clock
        )
        assert breaker.state == CLOSED and breaker.allow()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # everyone else keeps falling back
        breaker.record_success()
        assert breaker.state == CLOSED and breaker.allow()

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout=1.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == OPEN
        assert breaker.opens == 2


# ----------------------------------------------------------------------
# supervisor (fake pool, no processes)
# ----------------------------------------------------------------------
class FakePool:
    """ShardWorkerPool stand-in: scripted outcomes, instant futures."""

    def __init__(self, outcomes) -> None:
        self.outcomes = list(outcomes)  # "ok" | exception | "hang"
        self.generation = 0
        self.workers = 2
        self.submits = 0
        self.restarts = 0
        self.futures: list = []

    def submit(self, path, specs):
        self.submits += 1
        future = Future()
        self.futures.append(future)
        outcome = (
            self.outcomes.pop(0) if self.outcomes else "ok"
        )
        if outcome == "ok":
            future.set_result(["answer"])
        elif outcome == "hang":
            pass  # never completes
        else:
            future.set_exception(outcome)
        return future

    def restart(self) -> int:
        self.restarts += 1
        self.generation += 1
        return self.generation


class TestSupervisor:
    POLICY = RetryPolicy(
        attempt_timeout=0.05,
        max_attempts=3,
        backoff_base=0.0,
        backoff_multiplier=0.0,
        hedge_delay=0.01,
    )

    def test_answer_passes_through(self):
        pool = FakePool(["ok"])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        assert supervisor.call(
            "shard", [], deadline_at=time.monotonic() + 5
        ) == ["answer"]

    def test_broken_pool_respawns_then_succeeds(self):
        pool = FakePool([BrokenProcessPool("boom"), "ok"])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        assert supervisor.call(
            "shard", [], deadline_at=time.monotonic() + 5
        ) == ["answer"]
        assert pool.restarts == 1
        assert supervisor.stats.snapshot()["worker_deaths"] == 1

    def test_deterministic_error_is_never_retried(self):
        pool = FakePool([ValueError("bad spec"), "ok"])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        with pytest.raises(ValueError):
            supervisor.call("shard", [], deadline_at=time.monotonic() + 5)
        assert pool.submits == 1  # no second attempt

    def test_hang_times_out_hedges_and_exhausts_typed(self):
        pool = FakePool(["hang"] * 20)
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        started = time.monotonic()
        with pytest.raises(WorkerPoolUnavailable):
            supervisor.call("shard", [], deadline_at=started + 5)
        stats = supervisor.stats.snapshot()
        assert stats["attempt_timeouts"] == 3
        assert stats["hedges_launched"] >= 1

    def test_abandoned_futures_are_never_cancelled(self):
        # Future.cancel() against a process pool can crash the
        # executor's manager thread on 3.11 (terminate_broken calls
        # set_exception on the cancelled future and dies with workers
        # still alive); the supervisor must abandon stragglers instead
        pool = FakePool(["hang"] * 20)
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        with pytest.raises(WorkerPoolUnavailable):
            supervisor.call("shard", [], deadline_at=time.monotonic() + 5)
        assert pool.futures
        assert not any(future.cancelled() for future in pool.futures)

    def test_hedge_loser_is_abandoned_not_cancelled(self):
        pool = FakePool(["hang", "ok"])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        assert supervisor.call(
            "shard", [], deadline_at=time.monotonic() + 5
        ) == ["answer"]
        assert supervisor.stats.snapshot()["hedges_won"] == 1
        assert not any(future.cancelled() for future in pool.futures)

    def test_deadline_bounds_the_whole_loop(self):
        pool = FakePool(["hang"] * 20)
        supervisor = WorkerSupervisor(
            pool,
            policy=RetryPolicy(
                attempt_timeout=5.0, max_attempts=50, hedge_delay=0.01
            ),
        )
        started = time.monotonic()
        with pytest.raises(DeadlineExceeded):
            supervisor.call("shard", [], deadline_at=started + 0.2)
        assert time.monotonic() - started < 0.2 + 0.3

    def test_hedge_win_is_counted(self):
        pool = FakePool(["hang", "ok"])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        assert supervisor.call(
            "shard", [], deadline_at=time.monotonic() + 5
        ) == ["answer"]
        assert supervisor.stats.snapshot()["hedges_won"] == 1

    def test_generation_gate_prevents_double_respawn(self):
        pool = FakePool([])
        supervisor = WorkerSupervisor(pool, policy=self.POLICY)
        generation = pool.generation
        supervisor.respawn(seen_generation=generation)
        supervisor.respawn(seen_generation=generation)  # stale: no-op
        assert pool.restarts == 1

    def test_health_loop_respawns_broken_pool(self, world):
        network, shard_paths, _, _ = world
        service, proxy = make_service(world)
        with service:
            supervisor = service.supervisor
            # break the pool for real: kill a worker, then health-check
            proxy.arm(kill_fault())
            with pytest.raises(Exception):
                proxy.submit(str(shard_paths[0]), []).result(timeout=30)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                if supervisor.check_health():
                    break
                time.sleep(0.05)
            assert supervisor.check_health()
            assert supervisor.stats.snapshot()["respawns"] >= 1
