"""Concurrent readers against one ``FileBackedArchive``.

The archive serves record reads with positional ``pread`` calls, so a
single shared handle has no seek cursor to race on; the LRU is guarded
by a lock.  These tests hammer one archive from a thread pool — with a
cache big enough to hold everything and with a pathologically tiny one
that forces constant eviction and re-reads — and require every returned
record to be identical to a serially-loaded reference.
"""

import random
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.compressor import compress_dataset
from repro.io.format import write_archive
from repro.io.reader import ArchiveClosedError, FileBackedArchive
from repro.trajectories.datasets import load_dataset

THREADS = 8
ROUNDS = 60


@pytest.fixture(scope="module")
def archive_path(tmp_path_factory):
    network, trajectories = load_dataset("CD", 20, seed=13, network_scale=12)
    archive = compress_dataset(network, trajectories, default_interval=10)
    path = tmp_path_factory.mktemp("concurrency") / "archive.utcq"
    write_archive(archive, path)
    return path


@pytest.fixture(scope="module")
def reference(archive_path):
    with FileBackedArchive.open(archive_path, cache_size=1000) as archive:
        return {
            trajectory_id: archive.trajectory(trajectory_id)
            for trajectory_id in archive.trajectory_ids()
        }


def _records_equal(a, b):
    return (
        a.trajectory_id == b.trajectory_id
        and a.time_payload == b.time_payload
        and a.time_payload_bits == b.time_payload_bits
        and a.point_count == b.point_count
        and len(a.instances) == len(b.instances)
        and all(
            x.payload == y.payload and x.payload_bits == y.payload_bits
            for x, y in zip(a.instances, b.instances)
        )
    )


@pytest.mark.parametrize("cache_size", [1000, 2])
def test_thread_pool_hammer(archive_path, reference, cache_size):
    ids = sorted(reference)
    with FileBackedArchive.open(archive_path, cache_size=cache_size) as archive:

        def worker(seed):
            rng = random.Random(seed)
            bad = 0
            for _ in range(ROUNDS):
                trajectory_id = rng.choice(ids)
                loaded = archive.trajectory(trajectory_id)
                if not _records_equal(loaded, reference[trajectory_id]):
                    bad += 1
            return bad

        with ThreadPoolExecutor(max_workers=THREADS) as pool:
            corrupt = sum(pool.map(worker, range(THREADS)))
    assert corrupt == 0


def test_concurrent_iteration_and_random_access(archive_path, reference):
    ids = sorted(reference)
    with FileBackedArchive.open(archive_path, cache_size=3) as archive:

        def iterate(_):
            return sum(1 for _ in archive.trajectories)

        def poke(seed):
            rng = random.Random(seed)
            for _ in range(ROUNDS):
                archive.trajectory(rng.choice(ids))
            return len(ids)

        with ThreadPoolExecutor(max_workers=6) as pool:
            counts = list(pool.map(iterate, range(3)))
            counts += list(pool.map(poke, range(3)))
    assert all(count == len(ids) for count in counts)


def test_closed_archive_raises_for_all_threads(archive_path, reference):
    ids = sorted(reference)
    archive = FileBackedArchive.open(archive_path, cache_size=4)
    archive.close()

    def read(_):
        try:
            archive.trajectory(ids[0])
        except ArchiveClosedError:
            return True
        return False

    with ThreadPoolExecutor(max_workers=4) as pool:
        outcomes = list(pool.map(read, range(8)))
    assert all(outcomes)
