"""Word-level bitmap ``compress()`` vs the original per-bit reference.

The optimized encoder compares whole words with C-level ``bytes``
equality instead of scanning ``all(b == word[0] ...)`` bit by bit.  The
reference implementation below reproduces the seed's per-bit scan
verbatim; the property tests require bit-identical output streams for
the same inputs, across word sizes and run shapes.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.bits import bitmap, expgolomb
from repro.bits.bitio import BitReader, BitWriter


def reference_compress(bits, word_size=bitmap.DEFAULT_WORD_SIZE):
    """The seed's per-bit fill detection (reference semantics)."""
    writer = BitWriter()
    expgolomb.encode_unsigned(writer, len(bits))
    full_words = len(bits) // word_size
    index = 0
    word_index = 0
    while word_index < full_words:
        word = bits[index : index + word_size]
        if all(b == word[0] for b in word):
            fill_value = word[0]
            run = 1
            while word_index + run < full_words:
                nxt = bits[index + run * word_size : index + (run + 1) * word_size]
                if all(b == fill_value for b in nxt):
                    run += 1
                else:
                    break
            writer.write_bit(1)
            writer.write_bit(fill_value)
            expgolomb.encode_unsigned(writer, run - 1)
            index += run * word_size
            word_index += run
        else:
            writer.write_bit(0)
            writer.write_bits(word)
            index += word_size
            word_index += 1
    tail = bits[full_words * word_size :]
    writer.write_bits(tail)
    return writer


def assert_streams_equal(bits, word_size):
    expected = reference_compress(bits, word_size)
    got = bitmap.compress(bits, word_size)
    assert len(got) == len(expected)
    assert got.getvalue() == expected.getvalue()


@given(st.lists(st.integers(0, 1), max_size=600))
def test_compress_matches_reference(bits):
    assert_streams_equal(bits, bitmap.DEFAULT_WORD_SIZE)


@given(
    st.lists(st.integers(0, 1), max_size=300),
    st.integers(min_value=2, max_value=17),
)
def test_compress_matches_reference_any_word_size(bits, word_size):
    assert_streams_equal(bits, word_size)


@given(
    st.lists(
        st.tuples(st.integers(0, 1), st.integers(1, 70)), max_size=12
    ),
    st.integers(min_value=2, max_value=12),
)
def test_compress_matches_reference_on_runs(runs, word_size):
    """Run-structured inputs exercise the fill-extension scan."""
    bits = [bit for bit, count in runs for _ in range(count)]
    assert_streams_equal(bits, word_size)


@given(st.lists(st.integers(0, 1), max_size=400))
def test_optimized_stream_still_round_trips(bits):
    writer = bitmap.compress(bits)
    assert bitmap.decompress(BitReader.from_writer(writer)) == bits
