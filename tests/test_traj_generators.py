"""Tests for uncertain-trajectory generation and dataset profiles."""

import random

import pytest

from repro.network.generators import dataset_network, grid_network
from repro.trajectories.datasets import (
    CD,
    DK,
    HZ,
    filter_min_edges,
    filter_min_instances,
    load_dataset,
    profile,
    subsample_instances,
    truncate_trajectory,
)
from repro.trajectories.generators import (
    GenerationConfig,
    draw_count,
    draw_deviation,
    draw_time_sequence,
    generate_dataset,
    generate_uncertain_trajectory,
    make_detour_instance,
    make_tail_switch_instance,
    place_locations,
)
from repro.trajectories.model import TrajectoryInstance


@pytest.fixture(scope="module")
def network():
    return dataset_network("CD", scale=12)


@pytest.fixture(scope="module")
def config():
    return CD.generation_config()


@pytest.fixture(scope="module")
def trajectories(network, config):
    return generate_dataset(network, config, 30, seed=5)


class TestDeviations:
    def test_deviation_keeps_interval_positive(self, config):
        rng = random.Random(0)
        for _ in range(500):
            deviation = draw_deviation(config, rng)
            assert config.default_interval + deviation >= 1

    def test_dk_deviations_mostly_small(self):
        rng = random.Random(1)
        dk_config = DK.generation_config()
        draws = [abs(draw_deviation(dk_config, rng)) for _ in range(2000)]
        small = sum(1 for d in draws if d <= 1) / len(draws)
        assert small > 0.85  # paper: 93% within 1 second

    def test_hz_deviations_less_stable_than_dk(self):
        rng = random.Random(2)
        dk_small = sum(
            1 for _ in range(2000)
            if abs(draw_deviation(DK.generation_config(), rng)) <= 1
        )
        hz_small = sum(
            1 for _ in range(2000)
            if abs(draw_deviation(HZ.generation_config(), rng)) <= 1
        )
        assert hz_small < dk_small

    def test_time_sequence_increases(self, config):
        rng = random.Random(3)
        times = draw_time_sequence(config, 20, rng)
        assert len(times) == 20
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_fractions_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GenerationConfig(
                default_interval=10,
                deviation_fractions=(0.5, 0.1, 0.1, 0.1, 0.1),
                mean_instances=3,
                max_instances=5,
                mean_edges=10,
                max_edges=20,
            )


class TestDrawCount:
    def test_respects_bounds(self):
        rng = random.Random(4)
        for _ in range(200):
            count = draw_count(5.0, 2, 10, rng)
            assert 2 <= count <= 10

    def test_mean_is_approximately_right(self):
        rng = random.Random(5)
        draws = [draw_count(9.0, 2, 40, rng) for _ in range(4000)]
        assert 6.0 <= sum(draws) / len(draws) <= 12.0

    def test_degenerate_range(self):
        rng = random.Random(6)
        assert draw_count(5.0, 3, 3, rng) == 3


class TestPlaceLocations:
    def test_first_and_last_edges_carry_points(self, network):
        rng = random.Random(7)
        from repro.network.shortest_path import random_walk_path

        path = random_walk_path(network, next(network.vertex_ids()), 6, rng.choice)
        locations, indices = place_locations(network, path, 5, rng)
        assert indices[0] == 0
        assert indices[-1] == len(path) - 1
        assert len(locations) == 5

    def test_locations_fit_their_edges(self, network):
        rng = random.Random(8)
        from repro.network.shortest_path import random_walk_path

        path = random_walk_path(network, next(network.vertex_ids()), 8, rng.choice)
        locations, _ = place_locations(network, path, 6, rng)
        for location in locations:
            assert 0.0 <= location.ndist <= network.edge_length(*location.edge)

    def test_minimum_two_points(self, network):
        rng = random.Random(9)
        with pytest.raises(ValueError):
            place_locations(network, [(0, 1)], 1, rng)


class TestVariants:
    def _base(self, network):
        rng = random.Random(10)
        from repro.network.shortest_path import random_walk_path

        for _ in range(50):
            source = rng.choice(list(network.vertex_ids()))
            path = random_walk_path(network, source, 8, rng.choice)
            if len(path) == 8:
                locations, indices = place_locations(network, path, 6, rng)
                return TrajectoryInstance(
                    path=path,
                    locations=locations,
                    probability=1.0,
                    location_edge_indices=indices,
                )
        pytest.skip("could not build a base path on this network")

    def test_detour_produces_valid_distinct_instance(self, network):
        base = self._base(network)
        rng = random.Random(11)
        for _ in range(20):
            variant = make_detour_instance(network, base, rng)
            if variant is not None:
                assert variant.signature() != base.signature()
                assert variant.point_count == base.point_count
                assert variant.start_vertex == base.start_vertex
                return
        pytest.skip("network offered no detour here")

    def test_tail_switch_changes_last_edge_only(self, network):
        base = self._base(network)
        rng = random.Random(12)
        variant = make_tail_switch_instance(network, base, rng)
        if variant is None:
            pytest.skip("no alternative final edge")
        assert variant.path[:-1] == base.path[:-1]
        assert variant.path[-1] != base.path[-1]
        assert variant.point_count == base.point_count


class TestGenerateUncertain:
    def test_generated_trajectory_is_consistent(self, network, config):
        rng = random.Random(13)
        trajectory = generate_uncertain_trajectory(network, config, 7, rng)
        assert trajectory.trajectory_id == 7
        assert trajectory.instance_count >= 1
        probabilities = [i.probability for i in trajectory.instances]
        assert sum(probabilities) == pytest.approx(1.0, abs=1e-6)
        assert probabilities[0] == max(probabilities)

    def test_dataset_is_reproducible(self, network, config):
        a = generate_dataset(network, config, 5, seed=42)
        b = generate_dataset(network, config, 5, seed=42)
        for ta, tb in zip(a, b):
            assert ta.times == tb.times
            assert [i.signature() for i in ta.instances] == [
                i.signature() for i in tb.instances
            ]

    def test_instances_are_distinct(self, trajectories):
        for trajectory in trajectories:
            signatures = {i.signature() for i in trajectory.instances}
            assert len(signatures) == trajectory.instance_count


class TestDatasets:
    def test_profile_lookup(self):
        assert profile("dk") is DK
        assert profile("CD") is CD
        with pytest.raises(ValueError):
            profile("nope")

    def test_load_dataset_smoke(self):
        network, trajectories = load_dataset("CD", 10, seed=3, network_scale=10)
        assert len(trajectories) == 10
        for trajectory in trajectories:
            for instance in trajectory.instances:
                assert network.validate_path(instance.path)

    def test_filters(self, trajectories):
        filtered = filter_min_instances(trajectories, 3)
        assert all(t.instance_count >= 3 for t in filtered)
        long_ones = filter_min_edges(trajectories, 10)
        assert all(len(t.best_instance().path) >= 10 for t in long_ones)

    def test_subsample_instances(self, trajectories):
        trajectory = max(trajectories, key=lambda t: t.instance_count)
        if trajectory.instance_count < 2:
            pytest.skip("no multi-instance trajectory generated")
        reduced = subsample_instances(trajectory, 0.5, seed=1)
        assert 1 <= reduced.instance_count <= trajectory.instance_count
        total = sum(i.probability for i in reduced.instances)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_subsample_fraction_validation(self, trajectories):
        with pytest.raises(ValueError):
            subsample_instances(trajectories[0], 0.0)

    def test_truncate_trajectory(self, network, trajectories):
        trajectory = max(trajectories, key=lambda t: len(t.times))
        truncated = truncate_trajectory(network, trajectory, 0.5)
        assert truncated is not None
        assert len(truncated.times) <= len(trajectory.times)
        assert len(truncated.times) >= 2
        total = sum(i.probability for i in truncated.instances)
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_truncate_full_fraction_is_identity(self, network, trajectories):
        trajectory = trajectories[0]
        assert truncate_trajectory(network, trajectory, 1.0) is trajectory

    def test_hz_has_more_instances_than_cd(self):
        _, cd = load_dataset("CD", 40, seed=9, network_scale=12)
        _, hz = load_dataset("HZ", 40, seed=9, network_scale=12)
        cd_mean = sum(t.instance_count for t in cd) / len(cd)
        hz_mean = sum(t.instance_count for t in hz) / len(hz)
        assert hz_mean > cd_mean
