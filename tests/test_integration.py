"""Cross-module integration tests: pipelines, engine agreement, and
failure injection on corrupted archives."""

import pytest

from repro.core.archive import CompressedInstance
from repro.core.compressor import compress_dataset
from repro.core.decoder import decode_archive, decode_reference_tuple
from repro.network.grid import Rect
from repro.query import (
    BruteForceOracle,
    StIUIndex,
    UTCQQueryProcessor,
)
from repro.ted import TEDCompressor, TedQueryIndex, decode_ted_trajectory
from repro.trajectories.datasets import load_dataset, profile


@pytest.fixture(scope="module")
def world():
    network, trajectories = load_dataset("CD", 20, seed=81, network_scale=12)
    utcq = compress_dataset(network, trajectories, default_interval=10)
    ted = TEDCompressor(network=network, default_interval=10).compress(
        trajectories
    )
    return network, trajectories, utcq, ted


class TestEnginesDecodeIdentically:
    """UTCQ and TED both decode to the same trajectories (same eta)."""

    def test_paths_agree(self, world):
        network, trajectories, utcq, ted = world
        utcq_decoded = decode_archive(network, utcq)
        for original, u, t in zip(
            trajectories, utcq_decoded, ted.trajectories
        ):
            ted_decoded = decode_ted_trajectory(network, ted, t)
            for orig_inst, u_inst, t_inst in zip(
                original.instances, u.instances, ted_decoded.instances
            ):
                assert u_inst.path == orig_inst.path
                assert t_inst.path == orig_inst.path

    def test_times_agree(self, world):
        network, trajectories, utcq, ted = world
        utcq_decoded = decode_archive(network, utcq)
        for original, u, t in zip(
            trajectories, utcq_decoded, ted.trajectories
        ):
            ted_decoded = decode_ted_trajectory(network, ted, t)
            assert u.times == list(original.times)
            assert ted_decoded.times == list(original.times)

    def test_utcq_strictly_smaller(self, world):
        _, _, utcq, ted = world
        assert utcq.stats.compressed.total < ted.stats.compressed.total
        # identical original-side accounting: both count the same input
        assert utcq.stats.original.edge == ted.stats.original.edge
        assert utcq.stats.original.distance == ted.stats.original.distance
        assert utcq.stats.original.probability == ted.stats.original.probability


class TestQueryEnginesAgree:
    """The two query stacks answer identically on the same workload."""

    def test_where_agreement(self, world):
        network, trajectories, utcq, ted = world
        index = StIUIndex(network, utcq, grid_cells_per_side=16)
        processor = UTCQQueryProcessor(network, utcq, index)
        ted_index = TedQueryIndex(network, ted)
        for trajectory in trajectories[:10]:
            t = (trajectory.start_time + trajectory.end_time) // 2
            got_u = processor.where(trajectory.trajectory_id, t, alpha=0.0)
            got_t = ted_index.where(trajectory.trajectory_id, t, alpha=0.0)
            keys_u = {(r.instance_index, r.edge) for r in got_u}
            keys_t = {(r.instance_index, r.edge) for r in got_t}
            assert keys_u == keys_t

    def test_range_agreement(self, world):
        network, trajectories, utcq, ted = world
        index = StIUIndex(network, utcq, grid_cells_per_side=16)
        processor = UTCQQueryProcessor(network, utcq, index)
        ted_index = TedQueryIndex(network, ted)
        oracle = BruteForceOracle(network, trajectories)
        disagreements = 0
        for trajectory in trajectories[:8]:
            t = (trajectory.start_time + trajectory.end_time) // 2
            instance = trajectory.best_instance()
            x, y = instance.locations[0].position(network)
            region = Rect(x - 200, y - 200, x + 200, y + 200)
            got_u = set(processor.range(region, t, alpha=0.3))
            got_t = set(ted_index.range(region, t, alpha=0.3))
            disagreements += len(got_u ^ got_t)
        assert disagreements <= 1  # borderline PDDP rounding only


class TestFailureInjection:
    """Corrupted archives fail loudly, never silently mis-decode."""

    def _corrupt(self, instance: CompressedInstance) -> CompressedInstance:
        payload = bytearray(instance.payload)
        if not payload:
            pytest.skip("empty payload")
        payload[len(payload) // 2] ^= 0xFF
        return CompressedInstance(
            is_reference=instance.is_reference,
            payload=bytes(payload),
            payload_bits=instance.payload_bits,
            start_vertex=instance.start_vertex,
            reference_ordinal=instance.reference_ordinal,
            edge_offset=instance.edge_offset,
            flags_offset=instance.flags_offset,
            distance_offset=instance.distance_offset,
            probability_offset=instance.probability_offset,
            distance_positions=instance.distance_positions,
            factor_positions=instance.factor_positions,
            probability=instance.probability,
        )

    def test_truncated_reference_payload_raises(self, world):
        network, _, utcq, _ = world
        reference = utcq.trajectories[0].references()[0]
        truncated = CompressedInstance(
            is_reference=True,
            payload=reference.payload[: max(len(reference.payload) // 4, 1)],
            payload_bits=max(reference.payload_bits // 4, 8),
            start_vertex=reference.start_vertex,
            reference_ordinal=reference.reference_ordinal,
            edge_offset=reference.edge_offset,
            flags_offset=reference.flags_offset,
            distance_offset=reference.distance_offset,
            probability_offset=reference.probability_offset,
            distance_positions=reference.distance_positions,
            factor_positions=reference.factor_positions,
            probability=reference.probability,
        )
        with pytest.raises((EOFError, ValueError)):
            decode_reference_tuple(truncated, utcq.params)

    def test_flipped_bits_detected_or_decoded_differently(self, world):
        """A corrupted payload either raises or decodes to different data —
        it must never silently reproduce the original."""
        network, trajectories, utcq, _ = world
        reference = utcq.trajectories[0].references()[0]
        original = decode_reference_tuple(reference, utcq.params)
        corrupted = self._corrupt(reference)
        try:
            decoded = decode_reference_tuple(corrupted, utcq.params)
        except (EOFError, ValueError, KeyError):
            return
        assert (
            decoded.edge_numbers != original.edge_numbers
            or decoded.relative_distances != original.relative_distances
            or decoded.time_flags != original.time_flags
            or decoded.probability != original.probability
        )


class TestFullPipeline:
    def test_mapmatch_compress_index_query(self):
        """raw GPS -> matcher -> compress -> StIU -> query, end to end."""
        from repro.mapmatching import (
            MatcherConfig,
            ProbabilisticMapMatcher,
            synthesize_raw_dataset,
        )
        from repro.network.generators import dataset_network
        from repro.trajectories.datasets import CD

        network = dataset_network("CD", scale=12, seed=5)
        raws = synthesize_raw_dataset(
            network, CD.generation_config(), 10, seed=6, noise_sigma=20.0
        )
        matcher = ProbabilisticMapMatcher(
            network, MatcherConfig(sigma=20.0, search_radius=60.0)
        )
        matched = matcher.match_many(raws)
        assert matched
        archive = compress_dataset(network, matched, default_interval=10)
        index = StIUIndex(network, archive, grid_cells_per_side=16)
        processor = UTCQQueryProcessor(network, archive, index)
        oracle = BruteForceOracle(network, matched)
        for trajectory in matched[:5]:
            t = (trajectory.start_time + trajectory.end_time) // 2
            got = processor.where(trajectory.trajectory_id, t, alpha=0.0)
            expected = oracle.where(trajectory.trajectory_id, t, alpha=0.0)
            assert {r.instance_index for r in got} == {
                r.instance_index for r in expected
            }
