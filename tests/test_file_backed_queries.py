"""Acceptance: queries over a file-backed archive match the in-memory path."""

import pytest

from repro import StIUIndex, UTCQQueryProcessor
from repro.core import compress_dataset
from repro.io import FileBackedArchive, write_archive
from repro.network.grid import Rect
from repro.trajectories.datasets import CD, load_dataset


@pytest.fixture(scope="module")
def setup(tmp_path_factory):
    network, trajectories = load_dataset("CD", 20, seed=21, network_scale=12)
    archive = compress_dataset(
        network, trajectories, default_interval=CD.default_interval
    )
    path = tmp_path_factory.mktemp("archives") / "cd.utcq"
    write_archive(archive, path)
    return network, trajectories, archive, path


@pytest.fixture(scope="module")
def processors(setup):
    network, trajectories, archive, path = setup
    memory_index = StIUIndex(network, archive)
    memory = UTCQQueryProcessor(network, archive, memory_index)
    lazy = FileBackedArchive.open(path, cache_size=2)
    file_index = StIUIndex(network, lazy)
    file_backed = UTCQQueryProcessor(network, lazy, file_index)
    yield memory, file_backed, trajectories
    lazy.close()


def test_over_file_classmethod(setup):
    network, _, archive, path = setup
    index = StIUIndex.over_file(network, path, cache_size=4)
    try:
        assert isinstance(index.archive, FileBackedArchive)
        memory_index = StIUIndex(network, archive)
        assert index.temporal.keys() == memory_index.temporal.keys()
        assert index.size_bytes() == memory_index.size_bytes()
    finally:
        index.archive.close()


def test_where_matches_in_memory(processors):
    memory, file_backed, trajectories = processors
    for trajectory in trajectories[:8]:
        t = (trajectory.start_time + trajectory.end_time) // 2
        expected = memory.where(trajectory.trajectory_id, t, alpha=0.1)
        actual = file_backed.where(trajectory.trajectory_id, t, alpha=0.1)
        assert actual == expected
        assert expected, f"empty where result for {trajectory.trajectory_id}"


def test_when_matches_in_memory(processors):
    memory, file_backed, trajectories = processors
    answered = 0
    for trajectory in trajectories[:8]:
        t = (trajectory.start_time + trajectory.end_time) // 2
        for location in memory.where(trajectory.trajectory_id, t, alpha=0.1):
            expected = memory.when(
                trajectory.trajectory_id, location.edge, 0.5, alpha=0.1
            )
            actual = file_backed.when(
                trajectory.trajectory_id, location.edge, 0.5, alpha=0.1
            )
            assert actual == expected
            answered += len(expected)
            break
    assert answered > 0


def test_range_matches_in_memory(setup, processors):
    network, _, _, _ = setup
    memory, file_backed, trajectories = processors
    box = network.bounding_box()
    rect = Rect(box.min_x, box.min_y, box.max_x, box.max_y)
    t = trajectories[0].times[len(trajectories[0].times) // 2]
    expected = memory.range(rect, t, alpha=0.2)
    actual = file_backed.range(rect, t, alpha=0.2)
    assert actual == expected
    assert expected, "whole-network range query returned nothing"


def test_lazy_cache_stays_bounded(processors):
    _, file_backed, trajectories = processors
    for trajectory in trajectories:
        t = (trajectory.start_time + trajectory.end_time) // 2
        file_backed.where(trajectory.trajectory_id, t, alpha=0.5)
    assert file_backed.archive.cached_trajectory_count() <= 2


def test_lifecycle_hygiene(setup):
    """Regression: double close and use-after-close raise a clear
    ArchiveClosedError, not a cryptic I/O failure."""
    from repro.io import ArchiveClosedError

    _, _, _, path = setup
    archive = FileBackedArchive.open(path)
    first_id = archive.trajectory_ids()[0]
    archive.trajectory(first_id)
    assert not archive.closed
    archive.close()
    assert archive.closed
    with pytest.raises(ArchiveClosedError, match="closed"):
        archive.trajectory(first_id)
    with pytest.raises(ArchiveClosedError, match="closed"):
        list(archive.trajectories)
    with pytest.raises(ArchiveClosedError, match="already closed"):
        archive.close()


def test_context_manager_tolerates_inner_close(setup):
    """Closing inside a with-block must not make __exit__ blow up."""
    _, _, _, path = setup
    with FileBackedArchive.open(path) as archive:
        archive.close()
    assert archive.closed
