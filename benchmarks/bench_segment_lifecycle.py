"""Long-haul soak of the segment lifecycle: ingest, compact, GC, query.

Round after round of fleet feed is replayed into one stream archive
while a :class:`CompactionDaemon` merges rotated segments in the
background and a TTL GC drops whole cold segments — the steady state a
real deployment lives in.  Each round samples resident set size (via
``/proc/self/status``) and live-view query latency; the suite asserts
the storage-engine promises: live segment count, RSS, and query
latency all stay bounded however long the soak runs.

``REPRO_SOAK_SECONDS`` caps the soak's wall-clock budget (default 60,
the CI quick mode); rows land in
``results/BENCH_stream_throughput.json`` next to the ingest-throughput
table so both stream-tier trajectories travel in one artifact.
"""

import os
import random
import resource
import time

import pytest
from conftest import RESULTS_DIR, merge_results_json, record_experiment

from repro.mapmatching.noise import synthesize_raw_dataset
from repro.network.generators import dataset_network
from repro.stream import (
    AppendableArchiveWriter,
    CompactionDaemon,
    LiveArchive,
    SessionConfig,
    SizeTieredPolicy,
    TripSessionizer,
    gc_segments,
    replay,
)
from repro.trajectories.datasets import profile
from repro.trajectories.model import RawPoint, RawTrajectory
from repro.workloads.reporting import ExperimentLog

PROFILE = "CD"
VEHICLES = 6
NETWORK_SCALE = 12
SEGMENT_MAX = 8
#: feed time distance between rounds; GC keeps ~RETAIN_ROUNDS of them
ROUND_FEED_SECONDS = 200_000
RETAIN_ROUNDS = 3
SOAK_SECONDS = float(os.environ.get("REPRO_SOAK_SECONDS", "60"))
MIN_ROUNDS = 4
MAX_ROUNDS = 400

HEADERS = [
    "round", "trips", "live trips", "segments", "generation",
    "merges", "dropped", "disk KiB", "rss KiB", "query ms",
]

_ROWS: list[list] = []


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    yield
    if not _ROWS:
        return
    title = "Segment lifecycle soak (ingest + compaction + GC + queries)"
    record_experiment(title, HEADERS, _ROWS)
    log = ExperimentLog()
    log.record("segment_lifecycle_soak", HEADERS, _ROWS)
    merge_results_json(RESULTS_DIR / "BENCH_stream_throughput.json", log)


def _rss_kib() -> int:
    """Current RSS in KiB (Linux), else the peak RSS getrusage reports."""
    try:
        with open("/proc/self/status", encoding="ascii") as stream:
            for line in stream:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _shifted(feeds, offset: int):
    """The same fleet feed, replayed ``offset`` seconds later."""
    return [
        RawTrajectory(
            tuple(RawPoint(p.x, p.y, p.t + offset) for p in raw.points)
        )
        for raw in feeds
    ]


def _sample_query_ms(live, network, rng) -> float:
    processor = live.query_processor(network)
    ids = live.trajectory_ids()
    if not ids:
        return 0.0
    picks = rng.sample(ids, min(16, len(ids)))
    started = time.perf_counter()
    for trajectory_id in picks:
        trajectory = live.trajectory(trajectory_id)
        t = (trajectory.start_time + trajectory.end_time) // 2
        processor.where(trajectory_id, t, alpha=0.1)
    return (time.perf_counter() - started) * 1000 / len(picks)


def test_segment_lifecycle_soak(tmp_path):
    prof = profile(PROFILE)
    network = dataset_network(PROFILE, scale=NETWORK_SCALE, seed=7)
    base_feeds = synthesize_raw_dataset(
        network, prof.generation_config(), VEHICLES, seed=7
    )
    sessionizer = TripSessionizer(
        network, config=SessionConfig(gap_timeout=3600.0)
    )
    rng = random.Random(11)
    writer = AppendableArchiveWriter(
        tmp_path / "fleet",
        network,
        default_interval=prof.default_interval,
        segment_max_trajectories=SEGMENT_MAX,
    )
    daemon = CompactionDaemon(
        writer, policy=SizeTieredPolicy(min_merge=3, max_merge=6),
        interval=0.05,
    )
    live = LiveArchive(tmp_path / "fleet")
    trips_total = 0
    dropped_total = 0
    deadline = time.monotonic() + SOAK_SECONDS
    with daemon, live:
        for round_index in range(MAX_ROUNDS):
            if round_index >= MIN_ROUNDS and time.monotonic() >= deadline:
                break
            feeds = _shifted(base_feeds, round_index * ROUND_FEED_SECONDS)
            report = replay(
                sessionizer, feeds, writer=writer, daemon=daemon
            )
            trips_total += report.trips_sealed
            dropped = gc_segments(
                writer.store,
                ttl_seconds=RETAIN_ROUNDS * ROUND_FEED_SECONDS,
            )
            dropped_total += sum(s.trajectory_count for s in dropped)
            live.refresh()
            query_ms = _sample_query_ms(live, network, rng)
            disk_kib = sum(s.file_bytes for s in writer.segments()) // 1024
            _ROWS.append(
                [
                    round_index,
                    trips_total,
                    live.trajectory_count,
                    writer.segment_count,
                    writer.generation,
                    daemon.stats.merges,
                    dropped_total,
                    disk_kib,
                    _rss_kib(),
                    round(query_ms, 2),
                ]
            )
        writer.close()

    assert len(_ROWS) >= MIN_ROUNDS
    assert trips_total > 0
    assert daemon.stats.merges > 0, "the daemon never merged anything"
    assert dropped_total > 0, "GC never dropped a cold segment"
    # every live index assembly came from sidecars, never a rebuild
    assert live.sidecar_misses == 0

    # bounded state: retention caps live trips/segments/disk, so the
    # last round must not exceed the high-water mark of the warmup
    # rounds by more than noise
    warmup = _ROWS[: MIN_ROUNDS]
    final = _ROWS[-1]
    max_live_trips = max(row[2] for row in warmup)
    max_segments = max(row[3] for row in warmup)
    max_disk = max(row[7] for row in warmup)
    assert final[2] <= max_live_trips * 2
    assert final[3] <= max_segments * 2 + 2
    assert final[7] <= max_disk * 2 + 64

    # bounded memory: RSS growth beyond the warmed-up process stays
    # small (slack covers allocator noise and interpreter pools)
    warm_rss = warmup[-1][8]
    assert final[8] <= warm_rss + 192 * 1024, (
        f"RSS grew {final[8] - warm_rss} KiB over the soak"
    )

    # flat query latency: the final round answers in the same ballpark
    # as the warmup rounds (generous bound; absolute values are logged)
    warm_ms = max(row[9] for row in warmup if row[9] > 0) or 1.0
    assert final[9] <= warm_ms * 5 + 5.0
