"""Fig. 11 — effect of the PDDP error bounds on query accuracy.

Sweeps eta_D (1/128 .. 1/8) measuring the average difference between
query answers on original vs compressed data (meters for where, seconds
for when), and eta_p (1/2048 .. 1/128) measuring the F1 score of
alpha-thresholded results.  The paper: differences stay small at the
default bounds and F1 stays close to 1.
"""

import pytest
from conftest import record_experiment

from repro.query import (
    BruteForceOracle,
    StIUIndex,
    UTCQQueryProcessor,
    when_accuracy,
    where_accuracy,
)
from repro.trajectories.datasets import profile
from repro.workloads.harness import build_query_workload, run_utcq_compression

ETA_DISTANCES = (1 / 128, 1 / 64, 1 / 32, 1 / 16, 1 / 8)
ETA_PROBABILITIES = (1 / 2048, 1 / 1024, 1 / 512, 1 / 256, 1 / 128)
DATASETS_USED = ("CD", "HZ")


def _build_processor(network, trajectories, prof, eta_d, eta_p):
    run = run_utcq_compression(
        network,
        trajectories,
        prof,
        eta_distance=eta_d,
        eta_probability=eta_p,
    )
    index = StIUIndex(
        network,
        run.archive,
        grid_cells_per_side=32,
        time_partition_seconds=1800,
    )
    return UTCQQueryProcessor(network, run.archive, index)


def test_fig11a_distance_error_bound(benchmark, datasets):
    rows = []

    def work():
        rows.clear()
        for name in DATASETS_USED:
            network, trajectories = datasets[name]
            prof = profile(name)
            oracle = BruteForceOracle(network, trajectories)
            workload = build_query_workload(
                network, trajectories, count=20, seed=29, alpha=0.0
            )
            for eta_d in ETA_DISTANCES:
                processor = _build_processor(
                    network, trajectories, prof, eta_d,
                    prof.default_eta_probability,
                )
                where_diffs = []
                when_diffs = []
                for trajectory_id, t, alpha in workload.where_queries:
                    report = where_accuracy(
                        network,
                        oracle.where(trajectory_id, t, alpha),
                        processor.where(trajectory_id, t, alpha),
                    )
                    if report.matched:
                        where_diffs.append(report.average_difference)
                for trajectory_id, edge, rd, alpha in workload.when_queries:
                    report = when_accuracy(
                        oracle.when(trajectory_id, edge, rd, alpha),
                        processor.when(trajectory_id, edge, rd, alpha),
                    )
                    if report.matched:
                        when_diffs.append(report.average_difference)
                rows.append(
                    [
                        name,
                        f"1/{round(1 / eta_d)}",
                        sum(where_diffs) / max(len(where_diffs), 1),
                        sum(when_diffs) / max(len(when_diffs), 1),
                    ]
                )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 11a — average difference vs eta_D "
        "(paper: small at the default 1/128, grows with the bound)",
        ["dataset", "eta_D", "where diff (m)", "when diff (s)"],
        rows,
    )
    for name in DATASETS_USED:
        dataset_rows = [r for r in rows if r[0] == name]
        # the tightest bound must not be less accurate than the loosest
        assert dataset_rows[0][2] <= dataset_rows[-1][2] + 1.0


def test_fig11b_probability_error_bound(benchmark, datasets):
    rows = []

    def work():
        rows.clear()
        for name in DATASETS_USED:
            network, trajectories = datasets[name]
            prof = profile(name)
            oracle = BruteForceOracle(network, trajectories)
            workload = build_query_workload(
                network, trajectories, count=20, seed=31, alpha=0.3
            )
            for eta_p in ETA_PROBABILITIES:
                processor = _build_processor(
                    network, trajectories, prof, 1 / 128, eta_p
                )
                f1_where = []
                f1_when = []
                for trajectory_id, t, alpha in workload.where_queries:
                    report = where_accuracy(
                        network,
                        oracle.where(trajectory_id, t, alpha),
                        processor.where(trajectory_id, t, alpha),
                    )
                    f1_where.append(report.f1)
                for trajectory_id, edge, rd, alpha in workload.when_queries:
                    report = when_accuracy(
                        oracle.when(trajectory_id, edge, rd, alpha),
                        processor.when(trajectory_id, edge, rd, alpha),
                    )
                    f1_when.append(report.f1)
                rows.append(
                    [
                        name,
                        f"1/{round(1 / eta_p)}",
                        sum(f1_where) / max(len(f1_where), 1),
                        sum(f1_when) / max(len(f1_when), 1),
                    ]
                )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 11b — F1 score vs eta_p (paper: always close to 1)",
        ["dataset", "eta_p", "where F1", "when F1"],
        rows,
    )
    for row in rows:
        assert row[2] > 0.9, f"where F1 too low at {row[1]} on {row[0]}"
        assert row[3] > 0.85, f"when F1 too low at {row[1]} on {row[0]}"
