"""Fig. 9 — spatial/temporal partition granularity vs range queries.

Sweeps the StIU grid from 8x8 to 128x128 cells and the temporal
partition from 10 to 60 minutes: finer partitions cut range-query time
at the cost of a larger index; UTCQ's index stays smaller than TED's
archive-side index and its queries run faster.
"""

import pytest
from conftest import record_experiment

from repro.query import StIUIndex, UTCQQueryProcessor
from repro.ted import TedQueryIndex
from repro.trajectories.datasets import profile
from repro.workloads.harness import (
    build_query_workload,
    run_ted_compression,
    run_utcq_compression,
    time_ted_queries,
    time_utcq_queries,
)

GRID_SIDES = (8, 16, 32, 64, 128)
TIME_PARTITIONS_MIN = (10, 20, 30, 40, 50, 60)
DATASET = "CD"


@pytest.fixture(scope="module")
def compressed(datasets):
    network, trajectories = datasets[DATASET]
    prof = profile(DATASET)
    utcq = run_utcq_compression(network, trajectories, prof)
    ted = run_ted_compression(network, trajectories, prof)
    workload = build_query_workload(network, trajectories, count=25, seed=11)
    return network, trajectories, utcq.archive, ted.archive, workload


def test_fig9_grid_granularity(benchmark, compressed):
    network, _, archive, ted_archive, workload = compressed
    rows = []

    def work():
        rows.clear()
        for side in GRID_SIDES:
            index = StIUIndex(
                network,
                archive,
                grid_cells_per_side=side,
                time_partition_seconds=1800,
            )
            processor = UTCQQueryProcessor(network, archive, index)
            utcq_times = time_utcq_queries(processor, workload)
            ted_index = TedQueryIndex(
                network, ted_archive, time_partition_seconds=1800
            )
            ted_times = time_ted_queries(ted_index, workload)
            rows.append(
                [
                    f"{side}x{side}",
                    index.spatial_size_bytes() / 1024,
                    index.temporal_size_bytes() / 1024,
                    ted_index.size_bytes() / 1024,
                    utcq_times.range_ms,
                    ted_times.range_ms,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 9a/b — range queries vs grid cells "
        "(paper: finer grids -> larger s-size, faster queries; UTCQ faster "
        "than TED)",
        [
            "grid",
            "UTCQ s-size (KB)",
            "UTCQ t-size (KB)",
            "TED size (KB)",
            "UTCQ range (ms)",
            "TED range (ms)",
        ],
        rows,
    )
    # spatial index grows with grid resolution
    assert rows[-1][1] > rows[0][1]
    # UTCQ's range queries beat TED's at the default resolution or finer
    assert min(row[4] for row in rows[2:]) < max(row[5] for row in rows[2:])


def test_fig9_time_partition(benchmark, compressed):
    network, _, archive, _, workload = compressed
    rows = []

    def work():
        rows.clear()
        for minutes in TIME_PARTITIONS_MIN:
            index = StIUIndex(
                network,
                archive,
                grid_cells_per_side=32,
                time_partition_seconds=minutes * 60,
            )
            processor = UTCQQueryProcessor(network, archive, index)
            utcq_times = time_utcq_queries(processor, workload)
            rows.append(
                [
                    minutes,
                    index.temporal_size_bytes() / 1024,
                    utcq_times.range_ms,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 9c/d — range queries vs time partition duration "
        "(paper: shorter partitions -> larger t-size, faster queries)",
        ["partition (min)", "UTCQ t-size (KB)", "UTCQ range (ms)"],
        rows,
    )
    # coarser partitions shrink (or keep) the temporal index
    assert rows[0][1] >= rows[-1][1]
