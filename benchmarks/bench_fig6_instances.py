"""Fig. 6 — effect of the number of instances on compression.

The paper filters trajectories with at least 20 instances and varies the
kept fraction from 20% to 100%: UTCQ's ratio improves with more
instances (more referential sharing), TED's stays flat, and both times
and TED's memory grow.  We use instance-rich datasets (>= 8 instances)
at benchmark scale.
"""

import pytest
from conftest import record_experiment

from repro.trajectories.datasets import (
    filter_min_instances,
    profile,
    subsample_instances,
)
from repro.workloads.harness import run_ted_compression, run_utcq_compression

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)
_ROWS: dict[str, list] = {}


@pytest.mark.parametrize("name", ["DK", "HZ"])
def test_fig6_instance_sweep(benchmark, rich_instance_datasets, name):
    network, trajectories = rich_instance_datasets[name]
    trajectories = filter_min_instances(trajectories, 8)
    assert trajectories, "instance-rich generation produced no candidates"
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for fraction in FRACTIONS:
            subset = [
                subsample_instances(t, fraction, seed=3) for t in trajectories
            ]
            utcq = run_utcq_compression(network, subset, prof)
            ted = run_ted_compression(network, subset, prof)
            rows.append(
                [
                    name,
                    int(fraction * 100),
                    utcq.stats.total_ratio,
                    ted.stats.total_ratio,
                    utcq.seconds,
                    ted.seconds,
                    utcq.peak_memory_mb,
                    ted.peak_memory_mb,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    _ROWS[name] = list(rows)
    record_experiment(
        f"Fig. 6 ({name}) — compression vs number of instances "
        "(paper: UTCQ's CR grows with instances, TED's is flat; TED uses "
        "1-2 orders more memory)",
        [
            "dataset",
            "instances %",
            "UTCQ CR",
            "TED CR",
            "UTCQ time (s)",
            "TED time (s)",
            "UTCQ peak MB",
            "TED peak MB",
        ],
        rows,
    )
    # UTCQ's ratio improves (weakly) with more instances available to share
    assert rows[-1][2] >= rows[0][2] * 0.95
    full_gain = rows[-1][2] - rows[0][2]
    ted_gain = rows[-1][3] - rows[0][3]
    assert full_gain > ted_gain - 0.5  # TED gains less from extra instances
    # UTCQ beats TED at every point of the sweep
    for row in rows:
        assert row[2] > row[3]
