"""Table 8 — compression ratio and time, UTCQ vs TED, on all datasets.

The paper's headline numbers: UTCQ beats TED by more than 2x on total
compression ratio, on every component, and by 1-2 orders of magnitude on
compression time (absolute magnitudes differ on our Python substrate;
the comparisons are what we reproduce).

On compression *time*, the paper's gap comes from TED preparing
dataset-wide matrices before any base can be chosen.  Since the
hot-path PR pruned our reconstruction of that base search (identical
bases and bits, no quadratic rows x candidates scan), the wall-clock
ordering is no longer reproducible at laptop scale — TED's remaining
structural cost is *memory residency* (all E codes loaded before
matrix transformation, which Fig. 6/12 annotate) rather than time, so
this table reports both times without asserting their order.
"""

import pytest
from conftest import record_experiment

from repro.trajectories.datasets import profile
from repro.workloads.harness import run_ted_compression, run_utcq_compression

_RESULTS: dict[str, dict[str, object]] = {}


@pytest.mark.parametrize("name", ["DK", "CD", "HZ"])
@pytest.mark.parametrize("method", ["UTCQ", "TED"])
def test_table8_compression(benchmark, datasets, name, method):
    network, trajectories = datasets[name]
    prof = profile(name)
    pivots = 2 if name == "DK" else 1  # the paper's default pivot counts

    def work():
        if method == "UTCQ":
            return run_utcq_compression(
                network, trajectories, prof, pivot_count=pivots
            )
        return run_ted_compression(network, trajectories, prof)

    run = benchmark.pedantic(work, rounds=1, iterations=1)
    _RESULTS.setdefault(name, {})[method] = run

    if len(_RESULTS) == 3 and all(len(v) == 2 for v in _RESULTS.values()):
        rows = []
        for dataset_name in ("DK", "CD", "HZ"):
            for method_name in ("UTCQ", "TED"):
                entry = _RESULTS[dataset_name][method_name]
                ratios = entry.ratio_row()
                rows.append(
                    [
                        dataset_name,
                        method_name,
                        ratios["Total"],
                        ratios["T"],
                        ratios["E"],
                        ratios["D"],
                        ratios["T'"],
                        ratios["p"],
                        entry.seconds,
                        entry.peak_memory_mb,
                    ]
                )
        record_experiment(
            "Table 8 — compression ratios and time "
            "(paper: UTCQ total 14.3/11.9/13.8 vs TED 4.4/4.3/4.0; "
            "UTCQ 1-2 orders faster)",
            [
                "dataset",
                "method",
                "Total",
                "T",
                "E",
                "D",
                "T'",
                "p",
                "time (s)",
                "peak MB",
            ],
            rows,
        )
        # the paper's claims, as assertions over the regenerated table
        for dataset_name in ("DK", "CD", "HZ"):
            utcq = _RESULTS[dataset_name]["UTCQ"]
            ted = _RESULTS[dataset_name]["TED"]
            assert utcq.stats.total_ratio > 1.5 * ted.stats.total_ratio
            assert utcq.stats.time_ratio > ted.stats.time_ratio
            assert utcq.stats.edge_ratio > ted.stats.edge_ratio
            assert utcq.stats.flags_ratio > ted.stats.flags_ratio
            assert utcq.stats.distance_ratio > ted.stats.distance_ratio
            assert utcq.seconds > 0 and ted.seconds > 0
