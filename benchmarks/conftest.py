"""Shared fixtures and reporting hooks for the experiment benchmarks.

Every benchmark records the paper-style table it regenerates into
``repro.workloads.reporting.EXPERIMENT_LOG``; a terminal-summary hook
prints all tables at the end of the run and writes them to
``benchmarks/results/experiments.txt`` so the output survives pytest's
capture settings.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.trajectories.datasets import load_dataset, profile
from repro.workloads.reporting import EXPERIMENT_LOG

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

#: benchmark-scale dataset sizes (the paper's corpora scaled to laptop runs)
BENCH_TRAJECTORIES = 120
BENCH_NETWORK_SCALE = 14


@pytest.fixture(scope="session")
def datasets():
    """(network, trajectories) per dataset profile, generated once."""
    return {
        name: load_dataset(
            name,
            BENCH_TRAJECTORIES,
            seed=7,
            network_scale=BENCH_NETWORK_SCALE,
        )
        for name in ("DK", "CD", "HZ")
    }


@pytest.fixture(scope="session")
def rich_instance_datasets():
    """Datasets with many instances per trajectory (Fig. 6's filter)."""
    result = {}
    for name in ("DK", "HZ"):
        prof = profile(name).scaled(mean_instances=12, max_instances=16)
        network, trajectories = load_dataset(
            name,
            60,
            seed=19,
            network_scale=BENCH_NETWORK_SCALE,
        )
        # regenerate with the boosted profile on the same network
        from repro.trajectories.generators import generate_dataset

        trajectories = generate_dataset(
            network, prof.generation_config(), 60, seed=19
        )
        result[name] = (network, trajectories)
    return result


@pytest.fixture(scope="session")
def long_trajectory_datasets():
    """Datasets biased toward long trajectories (Fig. 7's filter)."""
    result = {}
    for name in ("CD", "HZ"):
        prof = profile(name).scaled(mean_edges=24, max_edges=40)
        network, _ = load_dataset(
            name, 1, seed=23, network_scale=BENCH_NETWORK_SCALE
        )
        from repro.trajectories.generators import generate_dataset

        trajectories = generate_dataset(
            network, prof.generation_config(), 60, seed=23
        )
        result[name] = (network, trajectories)
    return result


def record_experiment(title, headers, rows):
    """Record one table; returns the rendered text."""
    return EXPERIMENT_LOG.record(title, headers, rows)


def merge_results_json(path, log):
    """Write ``log`` into ``path``, keeping other modules' tables.

    Several benchmark modules share one results file (e.g. the ingest
    throughput and the segment-lifecycle soak both land in
    ``BENCH_stream_throughput.json``); a plain ``write_json`` from each
    would clobber the other's tables.  Same-title perf-trajectory
    tables (those keyed by leading ``label``/``benchmark`` columns)
    merge row-wise — a re-run with an existing label replaces its rows
    instead of duplicating them; other same-title tables are replaced
    whole, and everything else is preserved.
    """
    import json

    from repro.workloads.reporting import merge_tables

    path = pathlib.Path(path)
    existing = []
    if path.exists():
        try:
            existing = json.loads(path.read_text())["tables"]
        except (json.JSONDecodeError, KeyError, OSError):
            existing = []
    document = {
        "format": "repro-bench",
        "version": 1,
        "tables": merge_tables(
            existing, [table.as_dict() for table in log.tables]
        ),
    }
    path.parent.mkdir(exist_ok=True)
    path.write_text(json.dumps(document, indent=2) + "\n")


def pytest_terminal_summary(terminalreporter):
    if not EXPERIMENT_LOG.tables:
        return
    output = EXPERIMENT_LOG.dump()
    terminalreporter.write_sep("=", "paper-style experiment tables")
    terminalreporter.write_line(output)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "experiments.txt").write_text(output + "\n")
    EXPERIMENT_LOG.write_json(RESULTS_DIR / "experiments.json")
