"""Fig. 10 — probabilistic where and when query performance, UTCQ vs TED.

UTCQ answers both via the StIU temporal index (resuming the time stream
mid-way) and Lemma 1's p_max filter; the TED baseline must fully decode
every candidate instance.  The paper reports UTCQ faster on both, with
the when-query margin dependent on the dataset's pruning opportunities.
"""

import pytest
from conftest import record_experiment

from repro.query import StIUIndex, UTCQQueryProcessor
from repro.ted import TedQueryIndex
from repro.trajectories.datasets import profile
from repro.workloads.harness import (
    build_query_workload,
    run_ted_compression,
    run_utcq_compression,
    time_ted_queries,
    time_utcq_queries,
)

_ROWS: list = []


@pytest.mark.parametrize("name", ["DK", "CD", "HZ"])
def test_fig10_where_when(benchmark, datasets, name):
    network, trajectories = datasets[name]
    prof = profile(name)
    utcq_run = run_utcq_compression(network, trajectories, prof)
    ted_run = run_ted_compression(network, trajectories, prof)
    workload = build_query_workload(network, trajectories, count=30, seed=13)

    index = StIUIndex(
        network,
        utcq_run.archive,
        grid_cells_per_side=32,
        time_partition_seconds=1800,
    )
    processor = UTCQQueryProcessor(network, utcq_run.archive, index)
    ted_index = TedQueryIndex(
        network, ted_run.archive, time_partition_seconds=1800
    )

    def work():
        utcq_times = time_utcq_queries(processor, workload)
        ted_times = time_ted_queries(ted_index, workload)
        return utcq_times, ted_times

    utcq_times, ted_times = benchmark.pedantic(work, rounds=1, iterations=1)
    _ROWS.append(
        [
            name,
            utcq_times.where_ms,
            ted_times.where_ms,
            utcq_times.when_ms,
            ted_times.when_ms,
        ]
    )
    if len(_ROWS) == 3:
        record_experiment(
            "Fig. 10 — where/when query time (ms/query) "
            "(paper: UTCQ faster on both; the when margin varies by dataset)",
            [
                "dataset",
                "UTCQ where",
                "TED where",
                "UTCQ when",
                "TED when",
            ],
            _ROWS,
        )
        # the headline: UTCQ's repeated-query latency beats TED's on average
        utcq_total = sum(r[1] + r[3] for r in _ROWS)
        ted_total = sum(r[2] + r[4] for r in _ROWS)
        assert utcq_total < ted_total
