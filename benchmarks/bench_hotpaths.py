"""Hot-path microbenchmarks: bit I/O, HMM matching, TED bases, queries.

A pytest wrapper around :mod:`repro.workloads.hotpath_bench` (the same
suite ``repro bench`` runs) so the hot-path numbers appear in the
paper-style experiment tables alongside the figure benchmarks, and in
``results/BENCH_core_hotpaths.json``.  The canonical cross-PR perf
trajectory lives in ``BENCH_core_hotpaths.json`` at the repo root,
written by ``repro bench --append``.
"""

import pytest
from conftest import RESULTS_DIR, record_experiment

from repro.workloads.hotpath_bench import (
    BENCH_HEADERS,
    bench_bit_io,
    bench_compression_suite,
    bench_map_matching,
    bench_stiu_queries,
    bench_ted_rows,
    write_bench_json,
)

_RESULTS = []

_BENCHMARKS = {
    "bit_io": bench_bit_io,
    "map_matching": bench_map_matching,
    "ted_base_search": bench_ted_rows,
    "compression": bench_compression_suite,
    "stiu_queries": bench_stiu_queries,
}


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Record whatever rows ran — subset runs and failures included."""
    yield
    if not _RESULTS:
        return
    rows = [result.row("bench") for result in _RESULTS]
    record_experiment(
        "Hot-path microbenchmarks (word-level bit I/O, shared-frontier "
        "HMM, pruned TED bases)",
        list(BENCH_HEADERS),
        rows,
    )
    RESULTS_DIR.mkdir(exist_ok=True)
    write_bench_json(
        _RESULTS, RESULTS_DIR / "BENCH_core_hotpaths.json", label="bench"
    )


@pytest.mark.parametrize("name", sorted(_BENCHMARKS))
def test_hotpath_benchmark(name):
    outcome = _BENCHMARKS[name]()
    results = outcome if isinstance(outcome, list) else [outcome]
    for result in results:
        assert result.work > 0
        assert result.seconds >= 0
        _RESULTS.append(result)
