"""Streaming ingestion throughput: sustained points/sec per profile.

The batch benchmarks report compression ratios; this one reports how
fast the *online* path (incremental HMM matching -> sessionization ->
segment sealing) ingests a fleet feed.  Results are recorded both in
the paper-style table log and machine-readably in
``results/BENCH_stream_throughput.json``, so the perf trajectory of the
ingestion path is tracked across PRs.
"""

import pytest
from conftest import RESULTS_DIR, merge_results_json, record_experiment

from repro.mapmatching.noise import synthesize_raw_dataset
from repro.network.generators import dataset_network
from repro.stream import (
    AppendableArchiveWriter,
    SessionConfig,
    TripSessionizer,
    replay,
)
from repro.trajectories.datasets import profile
from repro.workloads.reporting import ExperimentLog

VEHICLES = 40
NETWORK_SCALE = 12
HEADERS = [
    "dataset", "vehicles", "points", "trips", "segments",
    "feed s", "wall s", "points/s",
]

_ROWS: list[list] = []


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Record whatever rows ran — subset runs and failures included."""
    yield
    if not _ROWS:
        return
    title = (
        "Streaming ingestion throughput (online match -> seal -> segment)"
    )
    record_experiment(title, HEADERS, _ROWS)
    log = ExperimentLog()
    log.record("stream_throughput", HEADERS, _ROWS)
    merge_results_json(RESULTS_DIR / "BENCH_stream_throughput.json", log)


@pytest.mark.parametrize("name", ["DK", "CD", "HZ"])
def test_stream_throughput(tmp_path, name):
    prof = profile(name)
    network = dataset_network(name, scale=NETWORK_SCALE, seed=7)
    feeds = synthesize_raw_dataset(
        network, prof.generation_config(), VEHICLES, seed=7
    )
    sessionizer = TripSessionizer(
        network, config=SessionConfig(gap_timeout=3600.0)
    )
    with AppendableArchiveWriter(
        tmp_path / name,
        network,
        default_interval=prof.default_interval,
        segment_max_trajectories=16,
    ) as writer:
        report = replay(sessionizer, feeds, writer=writer)
        segments = writer.segment_count

    assert report.points > 0
    assert report.trips_sealed > 0
    _ROWS.append(
        [
            name,
            VEHICLES,
            report.points,
            report.trips_sealed,
            segments,
            report.feed_seconds,
            round(report.elapsed_seconds, 3),
            round(report.points_per_second, 1),
        ]
    )
