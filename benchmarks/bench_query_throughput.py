"""Query-serving throughput: the read-path perf trajectory.

Runs the ``repro serve-bench`` scenarios (warm archive opens, batch
query throughput, shard-parallel throughput) in both the legacy and the
fast mode on the quick workload, records the paper-style table, and
writes ``results/BENCH_query_throughput.json`` so the serving path is
tracked across PRs alongside the repo-root trajectory file.
"""

import pytest
from conftest import RESULTS_DIR, merge_results_json, record_experiment

from repro.workloads.query_bench import (
    BENCH_HEADERS,
    BENCH_TABLE_TITLE,
    run_query_bench,
)
from repro.workloads.reporting import ExperimentLog

_ROWS: list[list] = []


@pytest.fixture(scope="module", autouse=True)
def _write_results():
    """Record whatever rows ran — subset runs and failures included."""
    yield
    if not _ROWS:
        return
    title = "Query serving throughput (sidecar opens, batch + shards)"
    record_experiment(title, list(BENCH_HEADERS), _ROWS)
    log = ExperimentLog()
    log.record(BENCH_TABLE_TITLE, BENCH_HEADERS, _ROWS)
    merge_results_json(RESULTS_DIR / "BENCH_query_throughput.json", log)


@pytest.mark.parametrize("mode", ["legacy", "fast"])
def test_query_serving_throughput(mode):
    results = run_query_bench(mode=mode, quick=True, workers=2)
    assert [result.name for result in results[:3]] == [
        "warm_open",
        "batch_queries",
        "sharded_queries",
    ]
    for result in results[:3]:
        assert result.seconds > 0
        assert result.work > 0
    mismatch_rows = [
        result
        for result in results
        if result.name == "sharded_oracle_mismatches"
    ]
    for result in mismatch_rows:
        assert result.rate == 0.0, "sharded answers diverged from oracle"
    for result in results:
        _ROWS.append(result.row(mode))
