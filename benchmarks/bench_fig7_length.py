"""Fig. 7 — effect of trajectory length on compression.

The paper keeps trajectories with >= 20 edges and truncates them to
20-100% of their length: UTCQ's ratio first rises (time coding amortizes)
then drops (longer sequences diverge more, referential factors grow),
TED's drops slightly, and time/memory grow with length.  We use
long-trajectory datasets (>= 12 edges) at benchmark scale.
"""

import pytest
from conftest import record_experiment

from repro.trajectories.datasets import (
    filter_min_edges,
    profile,
    truncate_trajectory,
)
from repro.workloads.harness import run_ted_compression, run_utcq_compression

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("name", ["CD", "HZ"])
def test_fig7_length_sweep(benchmark, long_trajectory_datasets, name):
    network, trajectories = long_trajectory_datasets[name]
    trajectories = filter_min_edges(trajectories, 12)
    assert trajectories, "long-trajectory generation produced no candidates"
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for fraction in FRACTIONS:
            subset = [
                truncate_trajectory(network, t, fraction)
                for t in trajectories
            ]
            subset = [t for t in subset if t is not None]
            utcq = run_utcq_compression(network, subset, prof)
            ted = run_ted_compression(network, subset, prof)
            rows.append(
                [
                    name,
                    int(fraction * 100),
                    utcq.stats.total_ratio,
                    ted.stats.total_ratio,
                    utcq.seconds,
                    ted.seconds,
                    utcq.peak_memory_mb,
                    ted.peak_memory_mb,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        f"Fig. 7 ({name}) — compression vs trajectory length "
        "(paper: UTCQ CR rises then falls; UTCQ uses 1-3 orders less "
        "memory and 1-2 orders less time)",
        [
            "dataset",
            "length %",
            "UTCQ CR",
            "TED CR",
            "UTCQ time (s)",
            "TED time (s)",
            "UTCQ peak MB",
            "TED peak MB",
        ],
        rows,
    )
    for row in rows:
        assert row[2] > row[3], "UTCQ must beat TED at every length"
    # compression time grows with length for both methods
    assert rows[-1][4] >= rows[0][4] * 0.8
    assert rows[-1][5] >= rows[0][5] * 0.8
