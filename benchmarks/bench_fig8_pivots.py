"""Fig. 8 — effect of the number of pivots on compression.

More pivots sharpen the FJD similarity estimate, so the compression
ratio (weakly) improves while compression time grows roughly linearly in
the pivot count.  The paper picks 1 pivot for CD/HZ and 2 for DK as the
ratio/efficiency sweet spots.
"""

import pytest
from conftest import record_experiment

from repro.trajectories.datasets import profile
from repro.workloads.harness import run_utcq_compression

PIVOT_COUNTS = (1, 2, 3, 4, 5)


@pytest.mark.parametrize("name", ["DK", "CD", "HZ"])
def test_fig8_pivot_sweep(benchmark, datasets, name):
    network, trajectories = datasets[name]
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for pivots in PIVOT_COUNTS:
            run = run_utcq_compression(
                network, trajectories, prof, pivot_count=pivots
            )
            rows.append(
                [
                    name,
                    pivots,
                    run.stats.total_ratio,
                    run.stats.edge_ratio,
                    run.seconds,
                    run.peak_memory_mb,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        f"Fig. 8 ({name}) — compression vs pivot count "
        "(paper: CR rises with pivots, time rises too)",
        ["dataset", "pivots", "total CR", "E CR", "time (s)", "peak MB"],
        rows,
    )
    ratios = [row[2] for row in rows]
    times = [row[4] for row in rows]
    # ratio must not collapse as pivots increase; time grows with pivots
    assert min(ratios) > 0.9 * ratios[0]
    assert times[-1] > times[0]
