"""Fig. 4 — dataset statistics that motivate SIAR and referential coding.

Regenerates (a) the sample-interval deviation fractions and (b) the
within/between-trajectory edit-distance buckets for the three synthetic
dataset profiles, and checks they match the published statistics'
qualitative shape (DK most stable; within-trajectory distances small,
between-trajectory distances large).
"""

from conftest import record_experiment

from repro.trajectories.datasets import profile
from repro.trajectories.stats import (
    DEVIATION_BUCKETS,
    EDIT_BUCKETS,
    between_trajectory_similarity,
    dataset_summary,
    interval_statistics,
    within_trajectory_similarity,
)


def test_fig4a_sample_interval_deviations(benchmark, datasets):
    rows = []

    def work():
        rows.clear()
        for name in ("DK", "CD", "HZ"):
            _, trajectories = datasets[name]
            stats = interval_statistics(
                trajectories, profile(name).default_interval
            )
            rows.append(
                [name]
                + [stats.fractions[bucket] for bucket in DEVIATION_BUCKETS]
                + [stats.within_one_second, stats.change_every]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 4a — sample-interval deviation fractions "
        "(paper: 93% / 62% / 54% within 1s; changes every 6.80/2.32/1.97)",
        ["dataset", *DEVIATION_BUCKETS, "within 1s", "change every"],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    # DK is the most stable dataset; its <=1s mass must dominate
    assert by_name["DK"][-2] > by_name["CD"][-2]
    assert by_name["DK"][-2] > by_name["HZ"][-2]
    assert by_name["DK"][-2] > 0.80
    # interval runs: DK's intervals persist the longest
    assert by_name["DK"][-1] > by_name["CD"][-1] > 1.0


def test_fig4b_similarity(benchmark, datasets):
    rows = []

    def work():
        rows.clear()
        for name in ("DK", "CD", "HZ"):
            _, trajectories = datasets[name]
            within = within_trajectory_similarity(trajectories)
            between = between_trajectory_similarity(trajectories)
            rows.append(
                [name, "within"] + [within[bucket] for bucket in EDIT_BUCKETS]
            )
            rows.append(
                [name, "between"]
                + [between[bucket] for bucket in EDIT_BUCKETS]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Fig. 4b — edit-distance buckets of E(.) within one uncertain "
        "trajectory vs between trajectories (paper: within <=5 for 83-94%)",
        ["dataset", "pairing", *EDIT_BUCKETS],
        rows,
    )
    for name_index in range(3):
        within_row = rows[2 * name_index]
        between_row = rows[2 * name_index + 1]
        within_small = within_row[2] + within_row[3]  # <=5 edits
        between_large = between_row[5]  # >=9 edits
        assert within_small > 0.7, f"{within_row[0]}: within-similarity too low"
        assert between_large > between_row[2], (
            f"{between_row[0]}: between-trajectory distances should skew large"
        )


def test_table5_dataset_summary(benchmark, datasets):
    rows = []

    def work():
        rows.clear()
        for name in ("DK", "CD", "HZ"):
            _, trajectories = datasets[name]
            summary = dataset_summary(trajectories)
            rows.append(
                [
                    name,
                    summary["trajectories"],
                    summary["avg_instances"],
                    summary["max_instances"],
                    summary["avg_edges"],
                    summary["avg_points"],
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Table 5 (scaled) — generated dataset summary "
        "(paper: avg instances 9/3/13, avg edges 14/11/13)",
        [
            "dataset",
            "trajectories",
            "avg instances",
            "max instances",
            "avg edges",
            "avg points",
        ],
        rows,
    )
    by_name = {row[0]: row for row in rows}
    assert by_name["CD"][2] < by_name["DK"][2]  # CD has the fewest instances
    assert by_name["CD"][2] < by_name["HZ"][2]
