"""Ablations of UTCQ's design choices (DESIGN.md §6 call-outs).

Not a paper table, but the paper's design arguments made measurable:

* **SIAR + improved Exp-Golomb vs TED's boundary pairs** on the time
  component alone — SIAR's whole reason to exist (§4.1);
* **referential representation on/off** — the framework's core idea;
* **TED with/without bitmap T' compression** — the paper omits bitmap
  compression from its comparison as "time consuming"; the toggle shows
  the trade both ways.
"""

import time

import pytest
from conftest import record_experiment

from repro.core.compressor import UTCQCompressor
from repro.ted.compressor import TEDCompressor
from repro.trajectories.datasets import profile


def test_ablation_time_codec(benchmark, datasets):
    """SIAR vs boundary pairs, time component only, per dataset."""
    from repro.core import siar
    from repro.ted import time_codec

    rows = []

    def work():
        rows.clear()
        for name in ("DK", "CD", "HZ"):
            _, trajectories = datasets[name]
            interval = profile(name).default_interval
            original = siar_bits = ted_bits = 0
            for trajectory in trajectories:
                times = list(trajectory.times)
                original += 32 * len(times)
                siar_bits += siar.encoded_size_bits(times, interval)
                ted_bits += time_codec.encoded_size_bits(times)
            rows.append(
                [name, original / siar_bits, original / ted_bits]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Ablation — time codec (SIAR+ExpGolomb vs TED boundary pairs)",
        ["dataset", "SIAR CR", "boundary-pair CR"],
        rows,
    )
    for row in rows:
        assert row[1] > row[2], f"SIAR must beat boundary pairs on {row[0]}"


@pytest.mark.parametrize("name", ["DK", "HZ"])
def test_ablation_referential_representation(benchmark, datasets, name):
    """UTCQ with and without referential representation."""
    network, trajectories = datasets[name]
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for disabled in (False, True):
            compressor = UTCQCompressor(
                network=network,
                default_interval=prof.default_interval,
                eta_probability=prof.default_eta_probability,
                disable_referential=disabled,
            )
            started = time.perf_counter()
            archive = compressor.compress(trajectories)
            elapsed = time.perf_counter() - started
            rows.append(
                [
                    name,
                    "off" if disabled else "on",
                    archive.stats.total_ratio,
                    archive.stats.edge_ratio,
                    archive.stats.flags_ratio,
                    archive.stats.distance_ratio,
                    elapsed,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        f"Ablation ({name}) — referential representation on/off",
        ["dataset", "referential", "Total", "E", "T'", "D", "time (s)"],
        rows,
    )
    with_ref, without_ref = rows[0], rows[1]
    assert with_ref[2] > without_ref[2], "referential must improve the total"
    assert with_ref[3] > without_ref[3], "referential must improve E"


def test_ablation_ted_bitmap(benchmark, datasets):
    """TED's omitted bitmap compression: ratio gain vs time cost."""
    network, trajectories = datasets["DK"]
    prof = profile("DK")
    rows = []

    def work():
        rows.clear()
        for use_bitmap in (False, True):
            compressor = TEDCompressor(
                network=network,
                default_interval=prof.default_interval,
                use_bitmap=use_bitmap,
            )
            started = time.perf_counter()
            archive = compressor.compress(trajectories)
            elapsed = time.perf_counter() - started
            rows.append(
                [
                    "with bitmap" if use_bitmap else "no bitmap (paper)",
                    archive.stats.flags_ratio,
                    archive.stats.total_ratio,
                    elapsed,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        "Ablation (DK) — TED bitmap compression of T' "
        "(the paper omits it from the comparison)",
        ["variant", "T' CR", "Total CR", "time (s)"],
        rows,
    )
    no_bitmap, with_bitmap = rows[0], rows[1]
    assert no_bitmap[1] == pytest.approx(1.0)
    assert with_bitmap[1] != no_bitmap[1]
