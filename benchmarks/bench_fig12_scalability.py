"""Fig. 12 — scalability of compression and query processing.

Varies the dataset size from 20% to 100%: compression ratios stay
roughly flat (they depend on instance structure, not corpus size);
UTCQ's compression time grows linearly (one trajectory at a time) while
TED's grows super-linearly (dataset-wide matrix base search); query
times grow with the data size for both engines.
"""

import pytest
from conftest import record_experiment

from repro.query import StIUIndex, UTCQQueryProcessor
from repro.ted import TedQueryIndex
from repro.trajectories.datasets import profile
from repro.workloads.harness import (
    build_query_workload,
    run_ted_compression,
    run_utcq_compression,
    time_ted_queries,
    time_utcq_queries,
)

FRACTIONS = (0.2, 0.4, 0.6, 0.8, 1.0)


@pytest.mark.parametrize("name", ["CD", "HZ"])
def test_fig12_compression_scalability(benchmark, datasets, name):
    network, trajectories = datasets[name]
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for fraction in FRACTIONS:
            subset = trajectories[: max(int(len(trajectories) * fraction), 2)]
            utcq = run_utcq_compression(network, subset, prof)
            ted = run_ted_compression(network, subset, prof)
            rows.append(
                [
                    name,
                    int(fraction * 100),
                    utcq.stats.total_ratio,
                    ted.stats.total_ratio,
                    utcq.seconds,
                    ted.seconds,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        f"Fig. 12a/b ({name}) — compression vs data size "
        "(paper: CR flat; UTCQ time linear, TED super-linear)",
        [
            "dataset",
            "size %",
            "UTCQ CR",
            "TED CR",
            "UTCQ time (s)",
            "TED time (s)",
        ],
        rows,
    )
    # ratios roughly independent of the corpus size
    utcq_ratios = [row[2] for row in rows]
    assert max(utcq_ratios) < 1.6 * min(utcq_ratios)
    # UTCQ beats TED at every size
    for row in rows:
        assert row[2] > row[3]


@pytest.mark.parametrize("name", ["CD", "HZ"])
def test_fig12_query_scalability(benchmark, datasets, name):
    network, trajectories = datasets[name]
    prof = profile(name)
    rows = []

    def work():
        rows.clear()
        for fraction in FRACTIONS:
            subset = trajectories[: max(int(len(trajectories) * fraction), 2)]
            utcq = run_utcq_compression(network, subset, prof)
            ted = run_ted_compression(network, subset, prof)
            workload = build_query_workload(network, subset, count=15, seed=37)
            index = StIUIndex(
                network,
                utcq.archive,
                grid_cells_per_side=32,
                time_partition_seconds=1800,
            )
            processor = UTCQQueryProcessor(network, utcq.archive, index)
            ted_index = TedQueryIndex(
                network, ted.archive, time_partition_seconds=1800
            )
            utcq_times = time_utcq_queries(processor, workload)
            ted_times = time_ted_queries(ted_index, workload)
            rows.append(
                [
                    name,
                    int(fraction * 100),
                    utcq_times.range_ms,
                    ted_times.range_ms,
                ]
            )
        return rows

    benchmark.pedantic(work, rounds=1, iterations=1)
    record_experiment(
        f"Fig. 12c/d ({name}) — range query time vs data size "
        "(paper: grows linearly; UTCQ faster than TED)",
        ["dataset", "size %", "UTCQ range (ms)", "TED range (ms)"],
        rows,
    )
    # the full-size workload is the slowest or near-slowest for TED
    assert rows[-1][3] >= max(row[3] for row in rows) * 0.5
