"""Improved Exp-Golomb coding for signed sample-interval deviations (§4.4).

The paper adapts Exp-Golomb coding (Teuhola [32], parameter k = 0) to the
signed deviations produced by SIAR, ``delta = (t_{i+1} - t_i) - Ts``:

* the deviation domain is split into groups where group ``j >= 0`` covers
  ``|delta|`` in ``[2^j - 1, 2^{j+1} - 2]``;
* a code is the unary group number (``j`` ones then a zero), then — for
  ``j > 0`` — one sign bit (1 for negative) and ``j`` offset bits storing
  ``|delta| - (2^j - 1)``;
* group 0 contains only ``delta = 0`` and is the single bit ``0``.

This reproduces the paper's worked example: ``0 -> '0'``, ``+1 -> '1000'``,
``-1 -> '1010'``, so ``(5:03:25, 0, 1, 0, -1, 0, 0)`` costs 17 + 12 bits.
"""

from __future__ import annotations

from .bitio import BitReader, BitWriter


def group_of(magnitude: int) -> int:
    """Return the group index ``j`` whose range contains ``magnitude``.

    Group ``j`` covers ``[2^j - 1, 2^{j+1} - 2]``; equivalently ``j`` is the
    bit length of ``magnitude + 1`` minus one.
    """
    if magnitude < 0:
        raise ValueError(f"magnitude must be non-negative, got {magnitude}")
    return (magnitude + 1).bit_length() - 1


def encoded_length(value: int) -> int:
    """Number of bits :func:`encode` will emit for ``value``."""
    group = group_of(abs(value))
    if group == 0:
        return 1
    return 2 * group + 2


def encode(writer: BitWriter, value: int) -> None:
    """Append the improved Exp-Golomb code of ``value`` to ``writer``.

    The whole code (unary group, sign, offset) is assembled into one
    integer and appended with a single accumulator push.
    """
    magnitude = abs(value)
    group = (magnitude + 1).bit_length() - 1
    if group == 0:
        writer.append_bits(0, 1)
        return
    sign = 1 if value < 0 else 0
    offset = magnitude - ((1 << group) - 1)
    code = (((((1 << group) - 1) << 2) | sign) << group) | offset
    writer.append_bits(code, 2 * group + 2)


def decode(reader: BitReader) -> int:
    """Read one improved Exp-Golomb code from ``reader``."""
    group = reader.read_unary()
    if group == 0:
        return 0
    tail = reader.read_uint(group + 1)  # sign bit then `group` offset bits
    magnitude = (tail & ((1 << group) - 1)) + ((1 << group) - 1)
    return -magnitude if tail >> group else magnitude


def encode_sequence(values: list[int]) -> BitWriter:
    """Encode ``values`` back to back into a fresh writer."""
    writer = BitWriter()
    for value in values:
        encode(writer, value)
    return writer


def decode_sequence(reader: BitReader, count: int) -> list[int]:
    """Decode ``count`` consecutive codes from ``reader``."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    return [decode(reader) for _ in range(count)]


def encode_unsigned(writer: BitWriter, value: int) -> None:
    """Encode a non-negative integer, reusing the signed code space.

    Used for header fields (factor counts, sequence lengths) where values
    are small and non-negative; the sign bit is retained so that the stream
    layout is uniform and one decoder serves both uses.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    encode(writer, value)


def decode_unsigned(reader: BitReader) -> int:
    """Decode a value written with :func:`encode_unsigned`."""
    value = decode(reader)
    if value < 0:
        raise ValueError(f"expected a non-negative code, decoded {value}")
    return value
