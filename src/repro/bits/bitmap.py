"""Word-aligned bitmap compression (WAH-style), after van Schaik & de Moor [33].

TED compresses time-flag bit-strings with "an existing bitmap compression
algorithm"; the paper's experiments deliberately *omit* it ("as it is time
consuming and it is also applicable to UTCQ"), which is why TED's T' ratio
in Table 8 is 1.  We provide the codec anyway so the full TED pipeline
exists and so the omission can be toggled in ablations.

Encoding (word size ``w``, default 8 payload bits):

* a *literal* word is a ``0`` flag followed by ``w`` raw bits;
* a *fill* word is a ``1`` flag, one bit for the fill value, and an
  Exp-Golomb coded run length counting how many consecutive ``w``-bit
  groups consist entirely of the fill value.

The trailing partial group (fewer than ``w`` bits) is stored literally with
an Exp-Golomb coded length so arbitrary bit-string lengths round-trip.
"""

from __future__ import annotations

from . import expgolomb
from .bitio import BitReader, BitWriter

DEFAULT_WORD_SIZE = 8


def compress(bits: list[int], word_size: int = DEFAULT_WORD_SIZE) -> BitWriter:
    """Compress a 0/1 list into a word-aligned fill/literal stream."""
    if word_size < 2:
        raise ValueError(f"word_size must be at least 2, got {word_size}")
    writer = BitWriter()
    expgolomb.encode_unsigned(writer, len(bits))
    full_words = len(bits) // word_size
    # one C-level memcmp per word instead of a per-bit Python scan
    data = bytes(bits)
    fill_words = {bytes([value]) * word_size: value for value in (0, 1)}
    index = 0
    word_index = 0
    while word_index < full_words:
        word = data[index : index + word_size]
        fill_value = fill_words.get(word)
        if fill_value is not None:
            run = 1
            while (
                word_index + run < full_words
                and data[index + run * word_size : index + (run + 1) * word_size]
                == word
            ):
                run += 1
            writer.write_bit(1)
            writer.write_bit(fill_value)
            expgolomb.encode_unsigned(writer, run - 1)
            index += run * word_size
            word_index += run
        else:
            writer.write_bit(0)
            writer.write_bits(bits[index : index + word_size])
            index += word_size
            word_index += 1
    tail = bits[full_words * word_size :]
    writer.write_bits(tail)
    return writer


def decompress(reader: BitReader, word_size: int = DEFAULT_WORD_SIZE) -> list[int]:
    """Inverse of :func:`compress`; reads one bitmap from ``reader``."""
    if word_size < 2:
        raise ValueError(f"word_size must be at least 2, got {word_size}")
    total = expgolomb.decode_unsigned(reader)
    full_words = total // word_size
    bits: list[int] = []
    words_read = 0
    while words_read < full_words:
        flag = reader.read_bit()
        if flag == 1:
            fill_value = reader.read_bit()
            run = expgolomb.decode_unsigned(reader) + 1
            bits.extend([fill_value] * (run * word_size))
            words_read += run
        else:
            bits.extend(reader.read_bits(word_size))
            words_read += 1
    if words_read != full_words:
        raise ValueError("corrupt bitmap stream: fill run overshoots length")
    bits.extend(reader.read_bits(total - full_words * word_size))
    return bits


def compressed_size(bits: list[int], word_size: int = DEFAULT_WORD_SIZE) -> int:
    """Size in bits of the compressed form of ``bits``."""
    return len(compress(bits, word_size))
