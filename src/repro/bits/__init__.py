"""Bit-level substrate: bit I/O, Exp-Golomb codes, and bitmap compression."""

from .bitio import (
    BitReader,
    BitWriter,
    bits_to_bytes,
    bits_to_string,
    string_to_bits,
    uint_width,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "bits_to_bytes",
    "bits_to_string",
    "string_to_bits",
    "uint_width",
    "expgolomb",
    "bitmap",
]

from . import bitmap, expgolomb  # noqa: E402  (re-exported submodules)
