"""Bit-level writer and reader used by every codec in the library.

The compressed formats in the paper are defined at bit granularity
(variable-length Exp-Golomb codes, ``ceil(log2(o))``-wide edge numbers,
one-bit time flags, ...).  ``BitWriter`` accumulates bits into a compact
``bytearray`` and ``BitReader`` consumes them again.  Both operate most
significant bit first so that serialized streams are byte-order stable and
easy to inspect in tests.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitWriter:
    """Accumulates individual bits into a byte buffer (MSB first)."""

    __slots__ = ("_buffer", "_bit_count", "_current", "_current_bits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_count = 0
        self._current = 0
        self._current_bits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (alias of ``len``)."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit not in (0, 1):
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._current = (self._current << 1) | bit
        self._current_bits += 1
        self._bit_count += 1
        if self._current_bits == 8:
            self._buffer.append(self._current)
            self._current = 0
            self._current_bits = 0

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append each bit from ``bits`` in order."""
        for bit in bits:
            self.write_bit(bit)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned integer using exactly ``width`` bits.

        ``width`` of zero is permitted only for ``value`` zero; this matches
        the degenerate case of ``ceil(log2(1))``-wide fields for sequences of
        length one.
        """
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value >= (1 << width) and not (width == 0 and value == 0):
            raise ValueError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_unary(self, value: int, *, terminator: int = 0) -> None:
        """Append ``value`` ones followed by a single ``terminator`` bit."""
        if value < 0:
            raise ValueError(f"unary value must be non-negative, got {value}")
        one = 1 - terminator
        for _ in range(value):
            self.write_bit(one)
        self.write_bit(terminator)

    def extend(self, other: "BitWriter") -> None:
        """Append every bit written to ``other`` onto this writer."""
        for bit in other.iter_bits():
            self.write_bit(bit)

    def iter_bits(self) -> Iterator[int]:
        """Yield every written bit in order."""
        for byte in self._buffer:
            for shift in range(7, -1, -1):
                yield (byte >> shift) & 1
        for shift in range(self._current_bits - 1, -1, -1):
            yield (self._current >> shift) & 1

    def to_bits(self) -> list[int]:
        """Return the written bits as a list of 0/1 integers."""
        return list(self.iter_bits())

    def getvalue(self) -> bytes:
        """Return the written bits packed into bytes (zero padded)."""
        data = bytearray(self._buffer)
        if self._current_bits:
            data.append(self._current << (8 - self._current_bits))
        return bytes(data)


class BitReader:
    """Reads bits from a byte buffer produced by :class:`BitWriter`."""

    __slots__ = ("_data", "_bit_count", "_position")

    def __init__(self, data: bytes, bit_count: int | None = None) -> None:
        self._data = data
        self._bit_count = len(data) * 8 if bit_count is None else bit_count
        if self._bit_count > len(data) * 8:
            raise ValueError("bit_count exceeds the available data")
        self._position = 0

    @classmethod
    def from_writer(cls, writer: BitWriter) -> "BitReader":
        """Build a reader over everything written to ``writer``."""
        return cls(writer.getvalue(), len(writer))

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._position

    @property
    def bit_length(self) -> int:
        """Total number of readable bits."""
        return self._bit_count

    @property
    def remaining(self) -> int:
        """Number of bits left to read."""
        return self._bit_count - self._position

    def seek(self, bit_position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= bit_position <= self._bit_count:
            raise ValueError(
                f"seek position {bit_position} outside [0, {self._bit_count}]"
            )
        self._position = bit_position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        if self._position >= self._bit_count:
            raise EOFError("attempt to read past the end of the bit stream")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, count: int) -> list[int]:
        """Read ``count`` bits and return them as a list."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        return [self.read_bit() for _ in range(count)]

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer stored in exactly ``width`` bits."""
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_unary(self, *, terminator: int = 0) -> int:
        """Read a unary value: count of bits until ``terminator`` is seen."""
        count = 0
        while self.read_bit() != terminator:
            count += 1
        return count


def bits_to_bytes(bits: Iterable[int]) -> bytes:
    """Pack an iterable of 0/1 integers into bytes (zero padded)."""
    writer = BitWriter()
    writer.write_bits(bits)
    return writer.getvalue()


def bits_to_string(bits: Iterable[int]) -> str:
    """Render bits as a compact '0101...' string, useful in tests."""
    return "".join(str(b) for b in bits)


def string_to_bits(text: str) -> list[int]:
    """Parse a '0101...' string into a list of bits."""
    bits = []
    for ch in text:
        if ch not in "01":
            raise ValueError(f"invalid bit character {ch!r}")
        bits.append(int(ch))
    return bits


def uint_width(max_value: int) -> int:
    """Number of bits required to store values in ``[0, max_value]``.

    This is the paper's ``ceil(log2(max_value + 1))`` convention used for
    S/L/M factor fields and outgoing edge numbers.
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max(max_value.bit_length(), 0)
