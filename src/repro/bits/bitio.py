"""Bit-level writer and reader used by every codec in the library.

The compressed formats in the paper are defined at bit granularity
(variable-length Exp-Golomb codes, ``ceil(log2(o))``-wide edge numbers,
one-bit time flags, ...).  ``BitWriter`` accumulates bits into a compact
``bytearray`` and ``BitReader`` consumes them again.  Both operate most
significant bit first so that serialized streams are byte-order stable and
easy to inspect in tests.

Both classes work word-at-a-time, never bit-at-a-time: the writer packs
pending bits into one Python int accumulator and flushes whole bytes, the
reader slices multi-byte windows with ``int.from_bytes``.  The validation
contract is boundary-based — ``write_bit``/``write_bits`` (the public
entry points fed with caller data) check that bits are 0/1 and
``write_uint`` checks its range, while :meth:`BitWriter.append_bits` is
the *trusted* bulk path for codecs that construct values internally and
guarantee ``0 <= value < 2**width`` themselves.  Feeding ``append_bits``
an out-of-range value corrupts the stream; that is the documented trade
for keeping per-call validation off the compress/decompress hot path.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitWriter:
    """Accumulates bits into a byte buffer (MSB first), word-at-a-time."""

    __slots__ = ("_buffer", "_bit_count", "_acc", "_acc_bits")

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_count = 0
        # pending bits not yet flushed to _buffer, MSB-first in an int;
        # invariant between public calls: 0 <= _acc_bits < 8
        self._acc = 0
        self._acc_bits = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    @property
    def bit_length(self) -> int:
        """Number of bits written so far (alias of ``len``)."""
        return self._bit_count

    def append_bits(self, value: int, width: int) -> None:
        """Append ``width`` bits holding ``value``, MSB first — trusted.

        This is the bulk fast path: the caller guarantees
        ``0 <= value < 2**width``.  No validation happens here; the
        checked public equivalents are :meth:`write_uint` (range-checked)
        and :meth:`write_bits` (per-bit checked).
        """
        acc = (self._acc << width) | value
        acc_bits = self._acc_bits + width
        self._bit_count += width
        if acc_bits >= 8:
            rem = acc_bits & 7
            if rem:
                self._buffer += (acc >> rem).to_bytes((acc_bits - rem) >> 3, "big")
                acc &= (1 << rem) - 1
            else:
                self._buffer += acc.to_bytes(acc_bits >> 3, "big")
                acc = 0
            acc_bits = rem
        self._acc = acc
        self._acc_bits = acc_bits

    def write_bit(self, bit: int) -> None:
        """Append a single bit (0 or 1)."""
        if bit != 0 and bit != 1:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        self._acc = (self._acc << 1) | bit
        self._bit_count += 1
        if self._acc_bits == 7:
            self._buffer.append(self._acc)
            self._acc = 0
            self._acc_bits = 0
        else:
            self._acc_bits += 1

    def write_bits(self, bits: Iterable[int]) -> None:
        """Append each bit from ``bits`` in order (validated per bit)."""
        value = 0
        width = 0
        for bit in bits:
            if bit != 0 and bit != 1:
                raise ValueError(f"bit must be 0 or 1, got {bit!r}")
            value = (value << 1) | bit
            width += 1
        if width:
            self.append_bits(value, width)

    def write_uint(self, value: int, width: int) -> None:
        """Append ``value`` as an unsigned integer using exactly ``width`` bits.

        ``width`` of zero is permitted only for ``value`` zero; this matches
        the degenerate case of ``ceil(log2(1))``-wide fields for sequences of
        length one.
        """
        if value < 0:
            raise ValueError(f"value must be non-negative, got {value}")
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if value >> width and not (width == 0 and value == 0):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self.append_bits(value, width)

    def write_run(self, bit: int, count: int) -> None:
        """Append ``count`` copies of ``bit`` in one accumulator push."""
        if bit != 0 and bit != 1:
            raise ValueError(f"bit must be 0 or 1, got {bit!r}")
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count:
            self.append_bits(((1 << count) - 1) if bit else 0, count)

    def write_unary(self, value: int, *, terminator: int = 0) -> None:
        """Append ``value`` ones followed by a single ``terminator`` bit."""
        if value < 0:
            raise ValueError(f"unary value must be non-negative, got {value}")
        if terminator == 0:
            self.append_bits(((1 << value) - 1) << 1, value + 1)
        elif terminator == 1:
            self.append_bits(1, value + 1)
        else:
            raise ValueError(f"bit must be 0 or 1, got {1 - terminator!r}")

    def extend(self, other: "BitWriter") -> None:
        """Append every bit written to ``other`` onto this writer."""
        buffer = other._buffer
        if buffer:
            self.append_bits(int.from_bytes(buffer, "big"), len(buffer) * 8)
        if other._acc_bits:
            self.append_bits(other._acc, other._acc_bits)

    def iter_bits(self) -> Iterator[int]:
        """Yield every written bit in order."""
        for byte in self._buffer:
            for shift in range(7, -1, -1):
                yield (byte >> shift) & 1
        for shift in range(self._acc_bits - 1, -1, -1):
            yield (self._acc >> shift) & 1

    def to_bits(self) -> list[int]:
        """Return the written bits as a list of 0/1 integers."""
        return list(self.iter_bits())

    def getvalue(self) -> bytes:
        """Return the written bits packed into bytes (zero padded)."""
        data = bytearray(self._buffer)
        if self._acc_bits:
            data.append(self._acc << (8 - self._acc_bits))
        return bytes(data)


class BitReader:
    """Reads bits from a byte buffer produced by :class:`BitWriter`."""

    __slots__ = ("_data", "_bit_count", "_position")

    def __init__(self, data: bytes, bit_count: int | None = None) -> None:
        self._data = data
        self._bit_count = len(data) * 8 if bit_count is None else bit_count
        if self._bit_count > len(data) * 8:
            raise ValueError("bit_count exceeds the available data")
        self._position = 0

    @classmethod
    def from_writer(cls, writer: BitWriter) -> "BitReader":
        """Build a reader over everything written to ``writer``."""
        return cls(writer.getvalue(), len(writer))

    @property
    def position(self) -> int:
        """Current read offset in bits."""
        return self._position

    @property
    def bit_length(self) -> int:
        """Total number of readable bits."""
        return self._bit_count

    @property
    def remaining(self) -> int:
        """Number of bits left to read."""
        return self._bit_count - self._position

    def seek(self, bit_position: int) -> None:
        """Move the read cursor to an absolute bit offset."""
        if not 0 <= bit_position <= self._bit_count:
            raise ValueError(
                f"seek position {bit_position} outside [0, {self._bit_count}]"
            )
        self._position = bit_position

    def read_bit(self) -> int:
        """Read and return the next bit."""
        position = self._position
        if position >= self._bit_count:
            raise EOFError("attempt to read past the end of the bit stream")
        byte = self._data[position >> 3]
        self._position = position + 1
        return (byte >> (7 - (position & 7))) & 1

    def read_bits(self, count: int) -> list[int]:
        """Read ``count`` bits and return them as a list."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count == 0:
            return []
        value = self.read_uint(count)
        return [(value >> shift) & 1 for shift in range(count - 1, -1, -1)]

    def read_uint(self, width: int) -> int:
        """Read an unsigned integer stored in exactly ``width`` bits.

        Reads whole byte windows at once instead of bit-at-a-time.
        """
        if width < 0:
            raise ValueError(f"width must be non-negative, got {width}")
        if width == 0:
            return 0
        position = self._position
        end = position + width
        if end > self._bit_count:
            raise EOFError("attempt to read past the end of the bit stream")
        first = position >> 3
        last = (end + 7) >> 3
        window = int.from_bytes(self._data[first:last], "big")
        self._position = end
        return (window >> ((last << 3) - end)) & ((1 << width) - 1)

    def read_unary(self, *, terminator: int = 0) -> int:
        """Read a unary value: count of bits until ``terminator`` is seen."""
        data = self._data
        limit = self._bit_count
        position = self._position
        count = 0
        while True:
            if position >= limit:
                self._position = position
                raise EOFError("attempt to read past the end of the bit stream")
            bit = (data[position >> 3] >> (7 - (position & 7))) & 1
            position += 1
            if bit == terminator:
                self._position = position
                return count
            count += 1


def bits_to_bytes(bits: Iterable[int]) -> bytes:
    """Pack an iterable of 0/1 integers into bytes (zero padded)."""
    writer = BitWriter()
    writer.write_bits(bits)
    return writer.getvalue()


def bits_to_string(bits: Iterable[int]) -> str:
    """Render bits as a compact '0101...' string, useful in tests."""
    return "".join(str(b) for b in bits)


def string_to_bits(text: str) -> list[int]:
    """Parse a '0101...' string into a list of bits."""
    bits = []
    for ch in text:
        if ch not in "01":
            raise ValueError(f"invalid bit character {ch!r}")
        bits.append(int(ch))
    return bits


def uint_width(max_value: int) -> int:
    """Number of bits required to store values in ``[0, max_value]``.

    This is the paper's ``ceil(log2(max_value + 1))`` convention used for
    S/L/M factor fields and outgoing edge numbers.
    """
    if max_value < 0:
        raise ValueError(f"max_value must be non-negative, got {max_value}")
    return max_value.bit_length()
