"""The always-on serving tier: supervision, shedding, chaos testing.

``repro.serve`` turns the batch/sharded query engines of
:mod:`repro.query` into a fault-tolerant service:
:class:`QueryService` is the front door; :class:`WorkerSupervisor`,
:class:`AdmissionController` and :class:`CircuitBreaker` are its
moving parts; :class:`WireServer`/:class:`WireClient` put it on a TCP
socket behind a framed, CRC-checked protocol; and
:mod:`repro.serve.chaos` is the harness that proves all of it by
breaking workers, shard files, and now the network on purpose.
"""

from .admission import AdmissionController, TokenBucket
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    ChaosProxy,
    ChaosTCPProxy,
    corrupt_fault,
    corrupt_shard,
    delay_fault,
    disconnect_fault,
    kill_fault,
    midwrite_kill_fault,
    refuse_fault,
    restore_shard,
    stall_fault,
    truncate_fault,
)
from .client import WireClient, WireResult
from .errors import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServiceClosedError,
    ShardQuarantined,
    WorkerPoolUnavailable,
)
from .service import (
    MODE_BATCH,
    MODE_SHARDED,
    MODE_SINGLE,
    QueryService,
    ServiceConfig,
    ServiceResponse,
    ServiceStats,
)
from .supervisor import (
    BackoffSchedule,
    RetryPolicy,
    SupervisorStats,
    WorkerSupervisor,
)
from .wire import (
    WireClosedError,
    WireError,
    WireProtocolError,
    WireServer,
    WireServerConfig,
    WireServerError,
    WireServerThread,
)

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosProxy",
    "ChaosTCPProxy",
    "corrupt_shard",
    "restore_shard",
    "kill_fault",
    "delay_fault",
    "midwrite_kill_fault",
    "refuse_fault",
    "disconnect_fault",
    "truncate_fault",
    "corrupt_fault",
    "stall_fault",
    "DeadlineExceeded",
    "Overloaded",
    "ServeError",
    "ServiceClosedError",
    "ShardQuarantined",
    "WorkerPoolUnavailable",
    "QueryService",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceStats",
    "MODE_SHARDED",
    "MODE_BATCH",
    "MODE_SINGLE",
    "BackoffSchedule",
    "RetryPolicy",
    "SupervisorStats",
    "WorkerSupervisor",
    "WireClient",
    "WireResult",
    "WireClosedError",
    "WireError",
    "WireProtocolError",
    "WireServer",
    "WireServerConfig",
    "WireServerError",
    "WireServerThread",
]
