"""The always-on serving tier: supervision, shedding, chaos testing.

``repro.serve`` turns the batch/sharded query engines of
:mod:`repro.query` into a fault-tolerant service:
:class:`QueryService` is the front door; :class:`WorkerSupervisor`,
:class:`AdmissionController` and :class:`CircuitBreaker` are its
moving parts; :mod:`repro.serve.chaos` is the harness that proves
they work by breaking them on purpose.
"""

from .admission import AdmissionController, TokenBucket
from .breaker import CLOSED, HALF_OPEN, OPEN, CircuitBreaker
from .chaos import (
    ChaosProxy,
    corrupt_shard,
    delay_fault,
    kill_fault,
    midwrite_kill_fault,
    restore_shard,
)
from .errors import (
    DeadlineExceeded,
    Overloaded,
    ServeError,
    ServiceClosedError,
    ShardQuarantined,
    WorkerPoolUnavailable,
)
from .service import (
    MODE_BATCH,
    MODE_SHARDED,
    MODE_SINGLE,
    QueryService,
    ServiceConfig,
    ServiceResponse,
    ServiceStats,
)
from .supervisor import RetryPolicy, SupervisorStats, WorkerSupervisor

__all__ = [
    "AdmissionController",
    "TokenBucket",
    "CircuitBreaker",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "ChaosProxy",
    "corrupt_shard",
    "restore_shard",
    "kill_fault",
    "delay_fault",
    "midwrite_kill_fault",
    "DeadlineExceeded",
    "Overloaded",
    "ServeError",
    "ServiceClosedError",
    "ShardQuarantined",
    "WorkerPoolUnavailable",
    "QueryService",
    "ServiceConfig",
    "ServiceResponse",
    "ServiceStats",
    "MODE_SHARDED",
    "MODE_BATCH",
    "MODE_SINGLE",
    "RetryPolicy",
    "SupervisorStats",
    "WorkerSupervisor",
]
