"""The always-on query service: supervision, shedding, degradation.

:class:`QueryService` wraps a
:class:`~repro.query.engine.ShardedQueryEngine` into something a
long-lived front-end can actually lean on:

* **admission control** at the door (bounded in-flight window +
  per-client token buckets) sheds overload with a typed
  :class:`~repro.serve.errors.Overloaded` instead of queueing
  unboundedly;
* every admitted request runs under a **deadline**; shard sub-queries
  go through the :class:`~repro.serve.supervisor.WorkerSupervisor`
  (respawn on worker death, retry with backoff, one cross-worker
  hedge);
* a **circuit breaker** watches pool outcomes, and an unhealthy pool
  drops the request onto the **degradation ladder**: sharded pool →
  in-process :class:`~repro.query.engine.BatchQueryEngine` → per-query
  cold :class:`~repro.query.queries.UTCQQueryProcessor`.  Every rung
  produces results pinned identical to the one-at-a-time processor
  (and therefore the brute-force oracle, up to PDDP error) — the rungs
  differ only in throughput;
* a shard whose records fail CRC verification is **quarantined**:
  requests that need it are refused with
  :class:`~repro.serve.errors.ShardQuarantined` (a range query is
  never answered from a partial union), and the file is re-probed
  after ``quarantine_reprobe`` seconds so a repaired shard re-enters
  service on its own.

``submit``/``submit_many`` never raise for per-request failures; they
return a :class:`ServiceResponse` whose ``error`` carries the typed
exception, which is what a wire front-end would serialize and what the
chaos bench's availability accounting consumes.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from ..io.format import CorruptArchiveError, read_header, record_crc
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import bind_request_id, get_logger, unbind_request_id
from ..query.engine import (
    EngineClosedError,
    Query,
    ShardedQueryEngine,
    ShardWorkerPool,
)
from ..query.transport import TransportError
from .admission import AdmissionController
from .breaker import CLOSED, CircuitBreaker
from .errors import (
    DeadlineExceeded,
    Overloaded,
    ServiceClosedError,
    ShardQuarantined,
    WorkerPoolUnavailable,
)
from .supervisor import RetryPolicy, WorkerSupervisor

_log = get_logger("repro.serve.service")

# ladder rungs, least to most degraded
MODE_SHARDED = "sharded"
MODE_BATCH = "batch"
MODE_SINGLE = "single"
_MODE_ORDER = {MODE_SHARDED: 0, MODE_BATCH: 1, MODE_SINGLE: 2}


@dataclass(frozen=True)
class ServiceConfig:
    """Knobs of the serving tier; defaults suit interactive traffic."""

    deadline: float = 2.0  # seconds per request, end to end
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    max_in_flight: int = 64
    rate_per_second: float | None = None  # per-client; None = unlimited
    burst: float | None = None
    breaker_failures: int = 3
    breaker_reset: float = 1.0
    quarantine_reprobe: float = 0.5
    health_interval: float | None = 1.0  # None: no background probing
    ladder: tuple[str, ...] = (MODE_SHARDED, MODE_BATCH, MODE_SINGLE)
    # None: engine resolves REPRO_TRANSPORT / REPRO_HOTCACHE /
    # REPRO_DISPATCH_WINDOW (shm / off / 8)
    transport: str | None = None
    hotcache_entries: int | None = None
    dispatch_window: int | None = None

    def __post_init__(self) -> None:
        if self.deadline <= 0:
            raise ValueError(f"deadline must be > 0, got {self.deadline}")
        for rung in self.ladder:
            if rung not in _MODE_ORDER:
                raise ValueError(f"unknown ladder rung {rung!r}")
        if not self.ladder:
            raise ValueError("ladder must have at least one rung")


@dataclass
class ServiceResponse:
    """Outcome of one request: an answer or a typed refusal."""

    ok: bool
    results: list | None  # aligned with the submitted queries
    error: Exception | None
    mode: str  # most-degraded rung used: sharded/batch/single; "" on error
    latency: float  # seconds, admission to response
    client: str
    trace: dict | None = None  # span tree when submitted with trace=True

    @property
    def kind(self) -> str:
        """Machine-readable outcome bucket (the wire error code)."""
        if self.ok:
            return "ok"
        if isinstance(self.error, Overloaded):
            return "overloaded"
        if isinstance(self.error, DeadlineExceeded):
            return "deadline"
        if isinstance(self.error, ShardQuarantined):
            return "quarantined"
        return "failed"

    @property
    def result(self):
        """The single query's answer (submit() convenience)."""
        if self.results is None:
            raise self.error
        return self.results[0]


class ServiceStats:
    """Per-service request counters, mirrored into the process registry.

    A thin shim over :mod:`repro.obs.metrics`: every ``bump`` lands in
    the shared registry counter named below (that is what a Prometheus
    scrape / ``--metrics-out`` exports), while a per-instance tally
    keeps :meth:`snapshot` scoped to *this* service — the exact keys
    and semantics the pre-registry dataclass had.
    """

    # bump() name -> (registry counter, labels)
    METRICS = {
        "requests": ("repro_service_requests_total", None),
        "completed": ("repro_service_completed_total", None),
        "overloaded": (
            "repro_service_rejected_total", {"reason": "overloaded"}
        ),
        "deadline_exceeded": (
            "repro_service_rejected_total", {"reason": "deadline"}
        ),
        "quarantined": (
            "repro_service_rejected_total", {"reason": "quarantined"}
        ),
        "failed": ("repro_service_rejected_total", {"reason": "failed"}),
        "served_sharded": (
            "repro_service_served_total", {"mode": "sharded"}
        ),
        "served_degraded_batch": (
            "repro_service_served_total", {"mode": "batch"}
        ),
        "served_degraded_single": (
            "repro_service_served_total", {"mode": "single"}
        ),
        "quarantines": ("repro_service_quarantines_total", None),
        "requarantine_probes": (
            "repro_service_requarantine_probes_total", None
        ),
        "shards_readmitted": (
            "repro_service_shards_readmitted_total", None
        ),
    }

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self.METRICS, 0)
        self._metrics = {
            name: obs_metrics.counter(metric, labels=labels)
            for name, (metric, labels) in self.METRICS.items()
        }

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount
        self._metrics[name].inc(amount)

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)


class QueryService:
    """Supervised, deadline-bounded, load-shedding query serving."""

    def __init__(
        self,
        shard_paths,
        *,
        network=None,
        workers: int | None = None,
        config: ServiceConfig | None = None,
        mp_context: str | None = None,
        pool: ShardWorkerPool | None = None,
        pool_wrapper=None,
        clock=time.monotonic,
    ) -> None:
        self.config = config or ServiceConfig()
        self._clock = clock
        self.engine = ShardedQueryEngine(
            shard_paths,
            network=network,
            workers=workers,
            mp_context=mp_context,
            pool=pool,
            transport=self.config.transport,
            hotcache_entries=self.config.hotcache_entries,
            dispatch_window=self.config.dispatch_window,
        )
        if pool_wrapper is not None and self.engine.pool is not None:
            # chaos seam: e.g. pool_wrapper=lambda p: ChaosProxy(p, ...)
            self.engine.pool = pool_wrapper(self.engine.pool)
        # Pipelined shard dispatch: one long-lived thread per window
        # slot, so a request's shard sub-batches run concurrently
        # (threads block in supervisor.call; the work itself happens in
        # pool workers or, degraded, under _local_lock).
        self._dispatch = ThreadPoolExecutor(
            max_workers=self.engine.dispatch_window,
            thread_name_prefix="repro-dispatch",
        )
        self.admission = AdmissionController(
            max_in_flight=self.config.max_in_flight,
            rate_per_second=self.config.rate_per_second,
            burst=self.config.burst,
            clock=clock,
        )
        self.breaker = CircuitBreaker(
            failure_threshold=self.config.breaker_failures,
            reset_timeout=self.config.breaker_reset,
            clock=clock,
        )
        self.supervisor = (
            WorkerSupervisor(
                self.engine.pool, policy=self.config.retry, clock=clock
            )
            if self.engine.pool is not None
            else None
        )
        if (
            self.supervisor is not None
            and self.config.health_interval is not None
        ):
            self.supervisor.start_health_loop(self.config.health_interval)
        self.stats = ServiceStats()
        self._latency = obs_metrics.histogram(
            "repro_request_latency_seconds",
            help="End-to-end request latency, admission to response",
        )
        self._closed = False
        self._local_lock = threading.Lock()  # serializes warm fallbacks
        self._quarantine_lock = threading.Lock()
        self._quarantined: dict[str, float] = {}  # path -> quarantined at

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Idempotent; in-flight requests on other threads will surface
        :class:`ServiceClosedError` from the torn-down engine."""
        if self._closed:
            return
        self._closed = True
        if self.supervisor is not None:
            self.supervisor.stop()
        # wait=False: an in-flight dispatch thread may be blocked on a
        # pool future that only resolves once the engine below is torn
        # down — waiting here would deadlock close() against it
        self._dispatch.shutdown(wait=False, cancel_futures=True)
        self.engine.close()

    def drain(
        self, timeout: float | None = None, *, poll_interval: float = 0.02
    ) -> bool:
        """Graceful shutdown: wait for in-flight requests to finish (or
        deadline out — every admitted request carries one), then
        :meth:`close`.  Nothing new is admitted by the caller during a
        drain (the wire front-end stops reading sockets first).

        ``timeout`` bounds the wait; the default is the configured
        request deadline plus a second, which is the longest any
        admitted request can legally take.  Returns True when the
        service went quiet inside the budget, False when it was closed
        with requests still in flight.
        """
        if self._closed:
            return True
        if timeout is None:
            timeout = self.config.deadline + 1.0
        deadline_at = time.monotonic() + timeout
        drained = self.admission.in_flight == 0
        while not drained and time.monotonic() < deadline_at:
            time.sleep(poll_interval)
            drained = self.admission.in_flight == 0
        _log.info(
            "service.drained",
            clean=drained,
            in_flight=self.admission.in_flight,
        )
        self.close()
        return drained

    def __enter__(self) -> "QueryService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            if exc_type is None:
                raise

    # ------------------------------------------------------------------
    # request surface
    # ------------------------------------------------------------------
    def submit(
        self,
        query: Query,
        *,
        client: str = "default",
        deadline: float | None = None,
        trace: bool = False,
    ) -> ServiceResponse:
        """One query, one response (``response.result`` unwraps it)."""
        return self.submit_many(
            [query], client=client, deadline=deadline, trace=trace
        )

    def submit_many(
        self,
        queries,
        *,
        client: str = "default",
        deadline: float | None = None,
        trace: bool = False,
    ) -> ServiceResponse:
        """One request carrying a batch; one deadline covers all of it.

        With ``trace=True`` the request runs under a span tree — plan,
        per-shard pool calls with grafted worker spans and IPC
        accounting, merge — returned on ``response.trace``.
        """
        if self._closed:
            raise ServiceClosedError("QueryService is closed")
        started = self._clock()
        wall_started = time.perf_counter()
        self.stats.bump("requests")
        token = bind_request_id()
        try:
            return self._admit_and_execute(
                queries, started, client, deadline, trace
            )
        finally:
            unbind_request_id(token)
            self._latency.observe(time.perf_counter() - wall_started)

    def _admit_and_execute(
        self, queries, started, client, deadline, trace
    ) -> ServiceResponse:
        try:
            slot = self.admission.admit(client)
        except Overloaded as error:
            self.stats.bump("overloaded")
            _log.info(
                "request.shed", client=client, retry_after=error.retry_after
            )
            return self._respond(started, client, error=error)
        trace_doc = None
        try:
            with slot:
                deadline_at = started + (
                    deadline if deadline is not None else self.config.deadline
                )
                if trace:
                    with obs_trace.start_trace(
                        "request", client=client, queries=len(queries)
                    ) as root:
                        results, mode = self._execute(queries, deadline_at)
                        root.set("mode", mode)
                    trace_doc = root.to_dict()
                else:
                    results, mode = self._execute(queries, deadline_at)
        except Overloaded as error:  # pragma: no cover - defensive
            self.stats.bump("overloaded")
            return self._respond(started, client, error=error)
        except DeadlineExceeded as error:
            self.stats.bump("deadline_exceeded")
            _log.info("request.deadline_exceeded", client=client)
            return self._respond(started, client, error=error)
        except ShardQuarantined as error:
            self.stats.bump("quarantined")
            return self._respond(started, client, error=error)
        except (WorkerPoolUnavailable, EngineClosedError) as error:
            self.stats.bump("failed")
            _log.warning(
                "request.failed", client=client, error=str(error)
            )
            return self._respond(started, client, error=error)
        self.stats.bump("completed")
        if mode == MODE_SINGLE:
            self.stats.bump("served_degraded_single")
        elif mode == MODE_BATCH:
            self.stats.bump("served_degraded_batch")
        else:
            self.stats.bump("served_sharded")
        return self._respond(
            started, client, results=results, mode=mode, trace=trace_doc
        )

    def _respond(
        self,
        started: float,
        client: str,
        *,
        results: list | None = None,
        error: Exception | None = None,
        mode: str = "",
        trace: dict | None = None,
    ) -> ServiceResponse:
        return ServiceResponse(
            ok=error is None,
            results=results,
            error=error,
            mode=mode,
            latency=self._clock() - started,
            client=client,
            trace=trace,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, queries, deadline_at: float) -> tuple[list, str]:
        with obs_trace.trace_span("plan", queries=len(queries)):
            # the gate runs inside plan(), before the hot-cache short
            # circuit — a quarantined shard refuses its queries even
            # when their answers are cached
            plan = self.engine.plan(queries, gate=self._gate_shard)
        items = sorted(plan.tasks.items())
        if len(items) > 1 and self.breaker.state == CLOSED:
            task_results, worst = self._execute_pipelined(items, deadline_at)
        else:
            # a suspect pool gets probed one shard at a time: the first
            # success closes the breaker for the rest of the request
            # instead of every shard racing to the degraded rungs
            task_results, worst = self._execute_serial(items, deadline_at)
        with obs_trace.trace_span("merge", tasks=len(task_results)):
            return self.engine.merge(plan, task_results), worst

    def _execute_serial(self, items, deadline_at: float):
        task_results = []
        worst = MODE_SHARDED
        for path, specs in items:
            with obs_trace.trace_span(
                "shard:" + path.rsplit("/", 1)[-1], path=path
            ) as span:
                answers, mode = self._execute_task(path, specs, deadline_at)
                span.set("mode", mode)
            if _MODE_ORDER[mode] > _MODE_ORDER[worst]:
                worst = mode
            task_results.append((specs, answers))
        return task_results, worst

    def _execute_pipelined(self, items, deadline_at: float):
        """Run every shard sub-batch concurrently on the dispatch pool.

        Each dispatch thread opens its *own* root span (contextvars do
        not cross threads) stamped with ``t0_offset_seconds`` — how long
        after the first submission it started — and the request thread
        grafts the finished spans back onto the request tree in task
        order.  Near-zero offsets across shards are the proof of
        overlap ``repro obs trace`` shows.
        """
        root = obs_trace.current_span()
        t0 = time.perf_counter()

        def run_one(path, specs):
            if root is None:
                answers, mode = self._execute_task(path, specs, deadline_at)
                return answers, mode, None
            with obs_trace.start_trace(
                "shard:" + path.rsplit("/", 1)[-1], path=path
            ) as span:
                span.set(
                    "t0_offset_seconds",
                    round(time.perf_counter() - t0, 6),
                )
                answers, mode = self._execute_task(path, specs, deadline_at)
                span.set("mode", mode)
            return answers, mode, span

        futures = [
            self._dispatch.submit(run_one, path, specs)
            for path, specs in items
        ]
        task_results = []
        worst = MODE_SHARDED
        error: Exception | None = None
        for (path, specs), future in zip(items, futures):
            try:
                answers, mode, span = future.result()
            except Exception as exc:  # noqa: BLE001 - re-raised below
                # keep collecting so sibling spans still land on the
                # tree and no future is abandoned mid-flight
                if error is None:
                    error = exc
                continue
            if root is not None and span is not None:
                root.children.append(span)
            if _MODE_ORDER[mode] > _MODE_ORDER[worst]:
                worst = mode
            task_results.append((specs, answers))
        if error is not None:
            raise error
        return task_results, worst

    def _execute_task(
        self, path: str, specs, deadline_at: float
    ) -> tuple[list, str]:
        """Walk the ladder until a rung answers; quarantine on corruption."""
        last_error: Exception | None = None
        for rung in self.config.ladder:
            if self._clock() >= deadline_at:
                raise DeadlineExceeded(
                    f"deadline expired before shard {path} was executed"
                )
            if rung == MODE_SHARDED:
                if self.engine.pool is None or self.supervisor is None:
                    continue
                if not self.breaker.allow():
                    continue
                try:
                    answers = self.supervisor.call(
                        path, specs, deadline_at=deadline_at
                    )
                except CorruptArchiveError as error:
                    self._quarantine(path, error)
                    raise ShardQuarantined(path) from error
                except DeadlineExceeded:
                    self.breaker.record_failure()
                    raise
                except WorkerPoolUnavailable as error:
                    self.breaker.record_failure()
                    last_error = error
                    continue
                self.breaker.record_success()
                decode = getattr(self.engine.pool, "decode", None)
                if decode is not None:
                    try:
                        answers = decode(answers)
                    except TransportError as error:
                        # the worker answered (pool is healthy — the
                        # breaker already recorded the success) but its
                        # slab could not be read back; recompute on the
                        # next rung instead of failing the request
                        obs_metrics.counter(
                            "repro_transport_fallbacks_total",
                            help=(
                                "Shard tasks re-executed locally after "
                                "a transport error"
                            ),
                        ).inc()
                        _log.warning(
                            "shard.transport_fallback",
                            path=path,
                            error=str(error),
                        )
                        last_error = error
                        continue
                return answers, MODE_SHARDED
            if rung == MODE_BATCH:
                try:
                    with self._local_lock:
                        answers = self.engine.run_local(path, specs)
                except CorruptArchiveError as error:
                    self._quarantine(path, error)
                    raise ShardQuarantined(path) from error
                except EngineClosedError:
                    raise
                except Exception as error:
                    # a wedged warm engine must not take the rung below
                    # with it; drop it and let "single" start clean
                    last_error = error
                    self.engine.drop_local_engine(path)
                    continue
                return answers, MODE_BATCH
            if rung == MODE_SINGLE:
                try:
                    answers = self.engine.run_cold(path, specs)
                except CorruptArchiveError as error:
                    self._quarantine(path, error)
                    raise ShardQuarantined(path) from error
                return answers, MODE_SINGLE
        raise last_error if last_error is not None else WorkerPoolUnavailable(
            f"no ladder rung could execute shard {path}"
        )

    # ------------------------------------------------------------------
    # quarantine
    # ------------------------------------------------------------------
    def quarantined_shards(self) -> list[str]:
        with self._quarantine_lock:
            return sorted(self._quarantined)

    def _quarantine(self, path: str, error: Exception) -> None:
        with self._quarantine_lock:
            fresh = path not in self._quarantined
            self._quarantined[path] = self._clock()
        if fresh:
            self.stats.bump("quarantines")
            _log.error("shard.quarantined", path=path, error=str(error))
            # the warm local engine holds the bad file open; drop it so
            # re-admission starts from a clean reopen
            self.engine.drop_local_engine(path)
            # cached answers may derive from the now-suspect file; the
            # hot tier's immutability assumption just reset
            self.engine.clear_hotcache()

    def _gate_shard(self, path: str) -> None:
        """Refuse quarantined shards; re-probe once the window passed."""
        with self._quarantine_lock:
            quarantined_at = self._quarantined.get(path)
            if quarantined_at is None:
                return
            if (
                self._clock() - quarantined_at
                < self.config.quarantine_reprobe
            ):
                raise ShardQuarantined(path)
            # claim the probe: concurrent requests keep being refused
            # for another window instead of all probing at once
            self._quarantined[path] = self._clock()
        self.stats.bump("requarantine_probes")
        _log.info("shard.reprobe", path=path)
        if self._probe_shard(path):
            with self._quarantine_lock:
                self._quarantined.pop(path, None)
            self.stats.bump("shards_readmitted")
            _log.info("shard.readmitted", path=path)
            self.engine.drop_local_engine(path)
            # the repaired file may answer differently than whatever
            # the cache saw before the quarantine
            self.engine.clear_hotcache()
            return
        raise ShardQuarantined(path)

    @staticmethod
    def _probe_shard(path: str) -> bool:
        """Cheap integrity check: every record matches its directory CRC.

        No decoding — just header parse plus one CRC pass, so a probe
        on a hot serving thread stays bounded.
        """
        try:
            with open(path, "rb") as stream:
                header = read_header(stream)
                for entry in header.directory:
                    stream.seek(entry.offset)
                    record = stream.read(entry.length)
                    if len(record) != entry.length:
                        return False
                    if record_crc(record) != entry.crc32:
                        return False
        except Exception:
            return False
        return True

    # ------------------------------------------------------------------
    # health + telemetry surface
    # ------------------------------------------------------------------
    def telemetry(self) -> dict:
        """Everything an operator dashboard needs, in one dict.

        Per-instance views (this service's stats, its supervisor and
        admission tallies, breaker state, quarantine list) plus the
        full process-wide metrics snapshot (``metrics`` key — the same
        data ``repro obs dump`` and ``--metrics-out`` export).
        """
        data = {
            "service": self.stats.snapshot(),
            "admission": {
                "admitted": self.admission.stats.admitted,
                "shed_in_flight": self.admission.stats.shed_in_flight,
                "shed_rate_limited": self.admission.stats.shed_rate_limited,
                "clients_seen": len(self.admission.stats.clients_seen),
                "in_flight": self.admission.in_flight,
            },
            "breaker": {
                "state": self.breaker.state,
                "opens": self.breaker.opens,
            },
            "quarantined_shards": self.quarantined_shards(),
            "request_latency_p50": self._latency.quantile(0.5),
            "request_latency_p99": self._latency.quantile(0.99),
            "metrics": obs_metrics.get_registry().snapshot(),
        }
        if self.supervisor is not None:
            data["supervisor"] = self.supervisor.stats.snapshot()
        return data

    def check_health(self) -> bool:
        """Probe the pool once (respawns a broken one); True = healthy."""
        if self.supervisor is None:
            return not self._closed
        return self.supervisor.check_health()
