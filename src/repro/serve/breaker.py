"""A circuit breaker over the shard worker pool.

Standard three-state machine, clock-injectable for tests:

* **closed** — requests use the pool; consecutive failures are
  counted and ``failure_threshold`` of them open the breaker.
* **open** — the pool is presumed sick; requests skip straight to the
  degradation ladder (no pool attempt, no added latency) until
  ``reset_timeout`` has passed.
* **half-open** — one trial request is let through; success closes
  the breaker, failure re-opens it and restarts the timer.

The breaker never fails a request by itself: an open breaker only
changes *where* the request is executed.
"""

from __future__ import annotations

import threading
import time

from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_log = get_logger("repro.serve.breaker")


def _note_transition(to_state: str) -> None:
    obs_metrics.counter(
        "repro_breaker_transitions_total",
        labels={"to": to_state},
        help="Circuit-breaker state transitions",
    ).inc()


class CircuitBreaker:
    def __init__(
        self,
        *,
        failure_threshold: int = 3,
        reset_timeout: float = 2.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout <= 0:
            raise ValueError(
                f"reset_timeout must be > 0, got {reset_timeout}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probe_out = False
        self.opens = 0  # lifetime count, for stats

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def _state_locked(self) -> str:
        if (
            self._state == OPEN
            and self._clock() - self._opened_at >= self.reset_timeout
        ):
            self._state = HALF_OPEN
            self._probe_out = False
            _note_transition(HALF_OPEN)
            _log.info("breaker.half_open")
        return self._state

    def allow(self) -> bool:
        """May this request try the pool?

        In half-open state exactly one caller gets True (the probe);
        the rest stay on the fallback until the probe reports back.
        """
        with self._lock:
            state = self._state_locked()
            if state == CLOSED:
                return True
            if state == HALF_OPEN and not self._probe_out:
                self._probe_out = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            reclosed = self._state != CLOSED
            self._failures = 0
            self._probe_out = False
            self._state = CLOSED
        if reclosed:
            _note_transition(CLOSED)
            _log.info("breaker.closed")

    def record_failure(self) -> None:
        with self._lock:
            state = self._state_locked()
            if state == HALF_OPEN:
                self._trip_locked()
                return
            self._failures += 1
            if state == CLOSED and self._failures >= self.failure_threshold:
                self._trip_locked()

    def _trip_locked(self) -> None:
        self._state = OPEN
        self._failures = 0
        self._probe_out = False
        self._opened_at = self._clock()
        self.opens += 1
        _note_transition(OPEN)
        _log.warning(
            "breaker.opened",
            opens=self.opens,
            reset_timeout=self.reset_timeout,
        )
