"""Admission control: shed load at the door instead of queueing it.

Two independent gates, both O(1) per request:

* a **bounded in-flight window** — at most ``max_in_flight`` requests
  may be executing at once.  Request N+1 is rejected immediately with
  :class:`~repro.serve.errors.Overloaded`; an unbounded queue would
  just convert an overload spike into unbounded latency for everyone.
* a **per-client token bucket** — each client id accrues
  ``rate_per_second`` tokens up to a ``burst`` cap; a request costs one
  token.  A single hot client exhausts its own bucket and is shed
  without touching anyone else's capacity.

The clock is injectable so the tests drive time by hand.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..obs import metrics as obs_metrics
from .errors import Overloaded


class TokenBucket:
    """The classic token bucket: ``rate`` tokens/sec up to ``burst``."""

    def __init__(
        self,
        *,
        rate_per_second: float,
        burst: float,
        clock=time.monotonic,
    ) -> None:
        if rate_per_second <= 0:
            raise ValueError(
                f"rate_per_second must be > 0, got {rate_per_second}"
            )
        if burst < 1:
            raise ValueError(f"burst must be >= 1, got {burst}")
        self.rate = float(rate_per_second)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()

    def try_take(self, amount: float = 1.0) -> bool:
        """Take ``amount`` tokens if available; never blocks."""
        now = self._clock()
        self._tokens = min(
            self.burst, self._tokens + (now - self._updated) * self.rate
        )
        self._updated = now
        if self._tokens >= amount:
            self._tokens -= amount
            return True
        return False

    def seconds_until(self, amount: float = 1.0) -> float:
        """How long until ``amount`` tokens will have accrued."""
        deficit = amount - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass
class AdmissionStats:
    """Per-controller admission tallies.

    The controller mirrors every count into the process registry
    (``repro_admission_*`` counters, ``repro_admission_in_flight``
    gauge); this object keeps the per-instance view.
    """

    admitted: int = 0
    shed_in_flight: int = 0
    shed_rate_limited: int = 0
    clients_seen: set = field(default_factory=set)


class AdmissionController:
    """The service's front door; thread-safe.

    Use as::

        with controller.admit(client):
            ... execute the request ...

    ``admit`` raises :class:`Overloaded` synchronously when the request
    must be shed; otherwise the context manager holds one in-flight
    slot for the duration of the request.
    """

    def __init__(
        self,
        *,
        max_in_flight: int,
        rate_per_second: float | None = None,
        burst: float | None = None,
        max_tracked_clients: int = 4096,
        clock=time.monotonic,
    ) -> None:
        if max_in_flight < 1:
            raise ValueError(
                f"max_in_flight must be >= 1, got {max_in_flight}"
            )
        self.max_in_flight = max_in_flight
        self.rate_per_second = rate_per_second
        self.burst = burst if burst is not None else (
            rate_per_second if rate_per_second is not None else None
        )
        self.max_tracked_clients = max_tracked_clients
        self._clock = clock
        self._lock = threading.Lock()
        self._in_flight = 0
        self._buckets: dict[str, TokenBucket] = {}
        self.stats = AdmissionStats()
        self._metric_admitted = obs_metrics.counter(
            "repro_admission_admitted_total"
        )
        self._metric_shed = {
            "in_flight": obs_metrics.counter(
                "repro_admission_shed_total", labels={"reason": "in_flight"}
            ),
            "rate_limited": obs_metrics.counter(
                "repro_admission_shed_total",
                labels={"reason": "rate_limited"},
            ),
        }
        self._metric_in_flight = obs_metrics.gauge(
            "repro_admission_in_flight"
        )

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def _bucket(self, client: str) -> TokenBucket | None:
        if self.rate_per_second is None:
            return None
        bucket = self._buckets.get(client)
        if bucket is None:
            # cap the table so a client-id flood cannot grow it forever;
            # evicting an active client merely refills its bucket once
            if len(self._buckets) >= self.max_tracked_clients:
                self._buckets.pop(next(iter(self._buckets)))
            bucket = TokenBucket(
                rate_per_second=self.rate_per_second,
                burst=self.burst,
                clock=self._clock,
            )
            self._buckets[client] = bucket
        return bucket

    def admit(self, client: str = "default") -> "_AdmissionSlot":
        with self._lock:
            self.stats.clients_seen.add(client)
            bucket = self._bucket(client)
            if bucket is not None and not bucket.try_take():
                self.stats.shed_rate_limited += 1
                self._metric_shed["rate_limited"].inc()
                raise Overloaded(
                    f"client {client!r} is over its rate limit "
                    f"({self.rate_per_second:g}/s, burst {self.burst:g})",
                    retry_after=bucket.seconds_until(),
                )
            if self._in_flight >= self.max_in_flight:
                self.stats.shed_in_flight += 1
                self._metric_shed["in_flight"].inc()
                raise Overloaded(
                    f"service is at its in-flight limit "
                    f"({self.max_in_flight} requests)"
                )
            self._in_flight += 1
            self.stats.admitted += 1
            self._metric_admitted.inc()
            self._metric_in_flight.set(self._in_flight)
        return _AdmissionSlot(self)

    def _release(self) -> None:
        with self._lock:
            self._in_flight -= 1
            self._metric_in_flight.set(self._in_flight)


class _AdmissionSlot:
    """Context manager holding one in-flight slot."""

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller
        self._released = False

    def __enter__(self) -> "_AdmissionSlot":
        return self

    def __exit__(self, *exc_info) -> None:
        self.release()

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release()
