"""Fault injection for the serving tier — the chaos harness.

:class:`ChaosProxy` implements the :class:`~repro.query.engine.ShardWorkerPool`
duck-type by wrapping a real pool and smuggling faults *inside* the
pickled task, so the failure happens in the worker process exactly
where a real fault would:

* ``kill`` — the worker calls ``os._exit(1)`` mid-task: the executor
  loses a process and every in-flight future on it raises
  ``BrokenProcessPool``, the same signature as an OOM kill;
* ``delay`` — the worker sleeps past the caller's attempt budget
  before answering, the signature of a wedged or GC-stalled worker.

Faults are drawn from a **seeded** RNG (probabilistic chaos for the
bench) and/or a **scripted queue** (``arm(...)`` for deterministic
tests); scripted faults are consumed first.  Only :meth:`submit` — real
shard work — is ever faulted; pings and internal calls pass through, so
the health loop measures the pool, not the chaos.

Shard *data* corruption is a separate axis:
:func:`corrupt_shard` flips one byte inside the last record of an
archive on disk (breaking its CRC but not the file structure) and
returns the pristine bytes; :func:`restore_shard` puts them back.
After restoring, the file's fingerprint matches its ``.stiu`` sidecar
again, so re-admission is a warm reload.
"""

from __future__ import annotations

import os
import random
import socket
import threading
import time
from collections import deque
from pathlib import Path

from ..io.format import read_header
from ..query import transport as query_transport
from ..query.engine import (
    _run_shard_batch,
    _run_shard_batch_traced,
    _shard_engine_for,
    _worker_slab_writer,
)

KILL = "kill"
DELAY = "delay"
MIDWRITE_KILL = "midwrite_kill"


def kill_fault() -> tuple:
    return (KILL,)


def delay_fault(seconds: float) -> tuple:
    return (DELAY, float(seconds))


def midwrite_kill_fault() -> tuple:
    """Die with a half-written slab entry — the torn-write scenario."""
    return (MIDWRITE_KILL,)


def _die_mid_slab_write(task: tuple) -> None:
    """Worker-side: compute the real answers, write a *torn* slab entry
    (complete header, truncated payload), then die.

    This is the nastiest shm failure shape: the bytes look like an
    entry but the payload does not match the header's CRC.  The parent
    must never see it — the worker dies before returning a descriptor,
    so the supervisor observes ``BrokenProcessPool``, respawns, and the
    dead generation's slab is swept.  Degrades to a plain kill when the
    shm transport is off.
    """
    writer = _worker_slab_writer()
    if writer is not None:
        try:
            path, queries = task
            answers = _shard_engine_for(path).run(queries)
            blob = query_transport.encode_answers(answers)
            writer.write_torn(blob)
        except Exception:
            pass  # dying is the one job left
    os._exit(1)


def _run_shard_batch_with_fault(payload: tuple) -> list:
    """Worker-side: suffer the fault, then (maybe) do the real work."""
    fault, task, traced = payload
    if fault is not None:
        if fault[0] == KILL:
            os._exit(1)  # no cleanup — this is the point
        elif fault[0] == MIDWRITE_KILL:
            _die_mid_slab_write(task)
        elif fault[0] == DELAY:
            time.sleep(fault[1])
    if traced:
        return _run_shard_batch_traced(task)
    return _run_shard_batch(task)


class ChaosProxy:
    """A fault-injecting stand-in for :class:`ShardWorkerPool`.

    Pass one as the ``pool=`` of a :class:`ShardedQueryEngine` /
    :class:`QueryService`; everything — supervision, respawn, breaker —
    operates on the proxy exactly as it would on the real pool.
    """

    def __init__(
        self,
        pool,
        *,
        kill_probability: float = 0.0,
        delay_probability: float = 0.0,
        delay_seconds: float = 0.5,
        seed: int = 0,
    ) -> None:
        for name, value in (
            ("kill_probability", kill_probability),
            ("delay_probability", delay_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._pool = pool
        self.kill_probability = kill_probability
        self.delay_probability = delay_probability
        self.delay_seconds = delay_seconds
        self._rng = random.Random(seed)
        self._scripted: deque = deque()
        self._lock = threading.Lock()
        self.injected = {KILL: 0, DELAY: 0, MIDWRITE_KILL: 0}

    # ------------------------------------------------------------------
    # fault scheduling
    # ------------------------------------------------------------------
    def arm(self, *faults: tuple) -> None:
        """Queue faults for the next submits, ahead of any random draw."""
        with self._lock:
            self._scripted.extend(faults)

    def clear(self) -> None:
        """Drop any armed-but-unconsumed faults."""
        with self._lock:
            self._scripted.clear()

    def _next_fault(self) -> tuple | None:
        with self._lock:
            if self._scripted:
                fault = self._scripted.popleft()
            else:
                roll = self._rng.random()
                if roll < self.kill_probability:
                    fault = kill_fault()
                elif roll < self.kill_probability + self.delay_probability:
                    fault = delay_fault(self.delay_seconds)
                else:
                    return None
            if fault is not None:
                self.injected[fault[0]] += 1
            return fault

    # ------------------------------------------------------------------
    # ShardWorkerPool duck-type
    # ------------------------------------------------------------------
    def submit(self, path, specs, *, traced: bool = False):
        fault = self._next_fault()
        if fault is None:
            return self._pool.submit(path, specs, traced=traced)
        return self._pool.submit_call(
            _run_shard_batch_with_fault,
            (fault, (str(path), list(specs)), traced),
        )

    def submit_call(self, fn, payload):
        return self._pool.submit_call(fn, payload)

    def ping(self, *, timeout: float, payload: object = None):
        return self._pool.ping(timeout=timeout, payload=payload)

    def decode(self, payload):
        decode = getattr(self._pool, "decode", None)
        if decode is None:  # bare test doubles: answers arrive plain
            return query_transport.decode_payload(payload, None)
        return decode(payload)

    @property
    def transport_arena(self) -> str | None:
        return getattr(self._pool, "transport_arena", None)

    def worker_pids(self) -> list[int]:
        return self._pool.worker_pids()

    def restart(self) -> int:
        return self._pool.restart()

    def close(self) -> None:
        self._pool.close()

    @property
    def generation(self) -> int:
        return self._pool.generation

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def closed(self) -> bool:
        return self._pool.closed

    @property
    def broken(self) -> bool:
        return self._pool.broken


# ----------------------------------------------------------------------
# network chaos
# ----------------------------------------------------------------------
REFUSE = "refuse"
DISCONNECT = "disconnect"
TRUNCATE = "truncate"
CORRUPT = "corrupt"
STALL = "stall"

_STREAM_FAULTS = (DISCONNECT, TRUNCATE, CORRUPT, STALL)


def refuse_fault() -> tuple:
    return (REFUSE,)


def disconnect_fault() -> tuple:
    return (DISCONNECT,)


def truncate_fault() -> tuple:
    return (TRUNCATE,)


def corrupt_fault() -> tuple:
    return (CORRUPT,)


def stall_fault(seconds: float) -> tuple:
    return (STALL, float(seconds))


class ChaosTCPProxy:
    """A fault-injecting TCP forwarder in front of the wire server.

    :class:`ChaosProxy` breaks the *worker pool*; this breaks the
    *network* between a :class:`~repro.serve.client.WireClient` and a
    :class:`~repro.serve.wire.WireServer`.  Clients connect to the
    proxy's :attr:`port`; every connection is pumped byte-for-byte to
    the upstream server — except when a fault fires:

    * ``refuse`` — the accepted connection is closed before a byte
      moves (the connect-storm / crashed-listener shape);
    * ``disconnect`` — both sides are torn down mid-stream, dropping a
      frame on the floor;
    * ``truncate`` — half of one chunk is forwarded, then both sides
      close: the receiver sees a *short* frame, exactly the torn-write
      shape the length-prefixed framing must detect;
    * ``corrupt`` — one byte of a chunk is flipped in flight: the frame
      arrives complete but its CRC no longer matches;
    * ``stall`` — the chunk is held for ``stall_seconds`` before
      forwarding, the bufferbloat / half-wedged-middlebox shape that
      exercises read deadlines.

    Faults are drawn per accepted connection (``refuse``) and per
    forwarded chunk (the rest) from a **seeded** RNG, with a scripted
    ``arm(...)`` queue consumed first — the same discipline as
    :class:`ChaosProxy`, so tests are deterministic and benches are
    reproducible.  :attr:`injected` counts every fault fired.
    """

    _CHUNK = 65536

    def __init__(
        self,
        target_host: str,
        target_port: int,
        *,
        listen_host: str = "127.0.0.1",
        refuse_probability: float = 0.0,
        disconnect_probability: float = 0.0,
        truncate_probability: float = 0.0,
        corrupt_probability: float = 0.0,
        stall_probability: float = 0.0,
        stall_seconds: float = 0.05,
        seed: int = 0,
    ) -> None:
        for name, value in (
            ("refuse_probability", refuse_probability),
            ("disconnect_probability", disconnect_probability),
            ("truncate_probability", truncate_probability),
            ("corrupt_probability", corrupt_probability),
            ("stall_probability", stall_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self.target_host = target_host
        self.target_port = target_port
        self.listen_host = listen_host
        self.refuse_probability = refuse_probability
        self.disconnect_probability = disconnect_probability
        self.truncate_probability = truncate_probability
        self.corrupt_probability = corrupt_probability
        self.stall_probability = stall_probability
        self.stall_seconds = stall_seconds
        self._rng = random.Random(seed)
        self._scripted: deque = deque()
        self._lock = threading.Lock()
        self.injected = {
            REFUSE: 0, DISCONNECT: 0, TRUNCATE: 0, CORRUPT: 0, STALL: 0,
        }
        self.connections = 0
        self._listener: socket.socket | None = None
        self._threads: list[threading.Thread] = []
        self._pairs: set[tuple] = set()
        self._running = False
        self.port: int | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> int:
        """Bind, start the accept loop; returns the listening port."""
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.listen_host, 0))
        listener.listen(64)
        self._listener = listener
        self.port = listener.getsockname()[1]
        self._running = True
        accept = threading.Thread(
            target=self._accept_loop, name="chaos-tcp-accept", daemon=True
        )
        accept.start()
        self._threads.append(accept)
        return self.port

    def stop(self) -> None:
        """Close the listener and every live pumped connection."""
        self._running = False
        listener, self._listener = self._listener, None
        if listener is not None:
            try:
                listener.close()
            except OSError:
                pass
        with self._lock:
            pairs = list(self._pairs)
            self._pairs.clear()
        for pair in pairs:
            self._close_pair(pair)
        for thread in self._threads:
            thread.join(timeout=2.0)
        self._threads.clear()

    def __enter__(self) -> "ChaosTCPProxy":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # fault scheduling
    # ------------------------------------------------------------------
    def arm(self, *faults: tuple) -> None:
        """Queue faults ahead of any random draw: ``refuse`` fires at
        the next accept, the rest at the next forwarded chunk."""
        with self._lock:
            self._scripted.extend(faults)

    def clear(self) -> None:
        with self._lock:
            self._scripted.clear()

    def _next_accept_fault(self) -> tuple | None:
        with self._lock:
            if self._scripted and self._scripted[0][0] == REFUSE:
                fault = self._scripted.popleft()
            elif self._rng.random() < self.refuse_probability:
                fault = refuse_fault()
            else:
                return None
            self.injected[fault[0]] += 1
            return fault

    def _next_stream_fault(self) -> tuple | None:
        with self._lock:
            if self._scripted and self._scripted[0][0] in _STREAM_FAULTS:
                fault = self._scripted.popleft()
            else:
                roll = self._rng.random()
                edge = 0.0
                fault = None
                for name, probability in (
                    (DISCONNECT, self.disconnect_probability),
                    (TRUNCATE, self.truncate_probability),
                    (CORRUPT, self.corrupt_probability),
                    (STALL, self.stall_probability),
                ):
                    edge += probability
                    if roll < edge:
                        fault = (
                            stall_fault(self.stall_seconds)
                            if name == STALL
                            else (name,)
                        )
                        break
                if fault is None:
                    return None
            self.injected[fault[0]] += 1
            return fault

    # ------------------------------------------------------------------
    # pumping
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        listener = self._listener
        while self._running and listener is not None:
            try:
                downstream, _ = listener.accept()
            except OSError:
                return  # listener closed by stop()
            self.connections += 1
            if self._next_accept_fault() is not None:
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            try:
                upstream = socket.create_connection(
                    (self.target_host, self.target_port), timeout=2.0
                )
            except OSError:
                try:
                    downstream.close()
                except OSError:
                    pass
                continue
            pair = (downstream, upstream)
            with self._lock:
                self._pairs.add(pair)
            for src, dst in ((downstream, upstream), (upstream, downstream)):
                pump = threading.Thread(
                    target=self._pump,
                    args=(src, dst, pair),
                    name="chaos-tcp-pump",
                    daemon=True,
                )
                pump.start()
                self._threads.append(pump)

    def _pump(self, src, dst, pair) -> None:
        try:
            while self._running:
                try:
                    data = src.recv(self._CHUNK)
                except OSError:
                    break
                if not data:
                    break
                fault = self._next_stream_fault()
                if fault is not None:
                    name = fault[0]
                    if name == DISCONNECT:
                        break
                    if name == TRUNCATE:
                        try:
                            dst.sendall(data[:max(1, len(data) // 2)])
                        except OSError:
                            pass
                        break
                    if name == CORRUPT:
                        mutated = bytearray(data)
                        mutated[self._rng.randrange(len(mutated))] ^= 0xFF
                        data = bytes(mutated)
                    elif name == STALL:
                        time.sleep(fault[1])
                try:
                    dst.sendall(data)
                except OSError:
                    break
        finally:
            with self._lock:
                self._pairs.discard(pair)
            self._close_pair(pair)

    @staticmethod
    def _close_pair(pair) -> None:
        for sock in pair:
            try:
                sock.close()
            except OSError:
                pass


# ----------------------------------------------------------------------
# on-disk corruption
# ----------------------------------------------------------------------
def corrupt_shard(path) -> bytes:
    """Flip one byte in the last record of the archive at ``path``.

    The header and directory stay intact — the archive still *opens* —
    but the record no longer matches its directory CRC, which is the
    realistic shape of silent media corruption.  Returns the pristine
    file bytes for :func:`restore_shard`.
    """
    path = Path(path)
    pristine = path.read_bytes()
    with path.open("rb") as stream:
        header = read_header(stream)
    if not header.directory:
        raise ValueError(f"archive has no records to corrupt: {path}")
    entry = header.directory[-1]
    mutated = bytearray(pristine)
    mutated[entry.offset + entry.length - 1] ^= 0xFF
    path.write_bytes(bytes(mutated))
    return pristine


def restore_shard(path, pristine: bytes) -> None:
    """Undo :func:`corrupt_shard`."""
    Path(path).write_bytes(pristine)
