"""Fault injection for the serving tier — the chaos harness.

:class:`ChaosProxy` implements the :class:`~repro.query.engine.ShardWorkerPool`
duck-type by wrapping a real pool and smuggling faults *inside* the
pickled task, so the failure happens in the worker process exactly
where a real fault would:

* ``kill`` — the worker calls ``os._exit(1)`` mid-task: the executor
  loses a process and every in-flight future on it raises
  ``BrokenProcessPool``, the same signature as an OOM kill;
* ``delay`` — the worker sleeps past the caller's attempt budget
  before answering, the signature of a wedged or GC-stalled worker.

Faults are drawn from a **seeded** RNG (probabilistic chaos for the
bench) and/or a **scripted queue** (``arm(...)`` for deterministic
tests); scripted faults are consumed first.  Only :meth:`submit` — real
shard work — is ever faulted; pings and internal calls pass through, so
the health loop measures the pool, not the chaos.

Shard *data* corruption is a separate axis:
:func:`corrupt_shard` flips one byte inside the last record of an
archive on disk (breaking its CRC but not the file structure) and
returns the pristine bytes; :func:`restore_shard` puts them back.
After restoring, the file's fingerprint matches its ``.stiu`` sidecar
again, so re-admission is a warm reload.
"""

from __future__ import annotations

import os
import random
import threading
import time
from collections import deque
from pathlib import Path

from ..io.format import read_header
from ..query import transport as query_transport
from ..query.engine import (
    _run_shard_batch,
    _run_shard_batch_traced,
    _shard_engine_for,
    _worker_slab_writer,
)

KILL = "kill"
DELAY = "delay"
MIDWRITE_KILL = "midwrite_kill"


def kill_fault() -> tuple:
    return (KILL,)


def delay_fault(seconds: float) -> tuple:
    return (DELAY, float(seconds))


def midwrite_kill_fault() -> tuple:
    """Die with a half-written slab entry — the torn-write scenario."""
    return (MIDWRITE_KILL,)


def _die_mid_slab_write(task: tuple) -> None:
    """Worker-side: compute the real answers, write a *torn* slab entry
    (complete header, truncated payload), then die.

    This is the nastiest shm failure shape: the bytes look like an
    entry but the payload does not match the header's CRC.  The parent
    must never see it — the worker dies before returning a descriptor,
    so the supervisor observes ``BrokenProcessPool``, respawns, and the
    dead generation's slab is swept.  Degrades to a plain kill when the
    shm transport is off.
    """
    writer = _worker_slab_writer()
    if writer is not None:
        try:
            path, queries = task
            answers = _shard_engine_for(path).run(queries)
            blob = query_transport.encode_answers(answers)
            writer.write_torn(blob)
        except Exception:
            pass  # dying is the one job left
    os._exit(1)


def _run_shard_batch_with_fault(payload: tuple) -> list:
    """Worker-side: suffer the fault, then (maybe) do the real work."""
    fault, task, traced = payload
    if fault is not None:
        if fault[0] == KILL:
            os._exit(1)  # no cleanup — this is the point
        elif fault[0] == MIDWRITE_KILL:
            _die_mid_slab_write(task)
        elif fault[0] == DELAY:
            time.sleep(fault[1])
    if traced:
        return _run_shard_batch_traced(task)
    return _run_shard_batch(task)


class ChaosProxy:
    """A fault-injecting stand-in for :class:`ShardWorkerPool`.

    Pass one as the ``pool=`` of a :class:`ShardedQueryEngine` /
    :class:`QueryService`; everything — supervision, respawn, breaker —
    operates on the proxy exactly as it would on the real pool.
    """

    def __init__(
        self,
        pool,
        *,
        kill_probability: float = 0.0,
        delay_probability: float = 0.0,
        delay_seconds: float = 0.5,
        seed: int = 0,
    ) -> None:
        for name, value in (
            ("kill_probability", kill_probability),
            ("delay_probability", delay_probability),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
        self._pool = pool
        self.kill_probability = kill_probability
        self.delay_probability = delay_probability
        self.delay_seconds = delay_seconds
        self._rng = random.Random(seed)
        self._scripted: deque = deque()
        self._lock = threading.Lock()
        self.injected = {KILL: 0, DELAY: 0, MIDWRITE_KILL: 0}

    # ------------------------------------------------------------------
    # fault scheduling
    # ------------------------------------------------------------------
    def arm(self, *faults: tuple) -> None:
        """Queue faults for the next submits, ahead of any random draw."""
        with self._lock:
            self._scripted.extend(faults)

    def clear(self) -> None:
        """Drop any armed-but-unconsumed faults."""
        with self._lock:
            self._scripted.clear()

    def _next_fault(self) -> tuple | None:
        with self._lock:
            if self._scripted:
                fault = self._scripted.popleft()
            else:
                roll = self._rng.random()
                if roll < self.kill_probability:
                    fault = kill_fault()
                elif roll < self.kill_probability + self.delay_probability:
                    fault = delay_fault(self.delay_seconds)
                else:
                    return None
            if fault is not None:
                self.injected[fault[0]] += 1
            return fault

    # ------------------------------------------------------------------
    # ShardWorkerPool duck-type
    # ------------------------------------------------------------------
    def submit(self, path, specs, *, traced: bool = False):
        fault = self._next_fault()
        if fault is None:
            return self._pool.submit(path, specs, traced=traced)
        return self._pool.submit_call(
            _run_shard_batch_with_fault,
            (fault, (str(path), list(specs)), traced),
        )

    def submit_call(self, fn, payload):
        return self._pool.submit_call(fn, payload)

    def ping(self, *, timeout: float, payload: object = None):
        return self._pool.ping(timeout=timeout, payload=payload)

    def decode(self, payload):
        decode = getattr(self._pool, "decode", None)
        if decode is None:  # bare test doubles: answers arrive plain
            return query_transport.decode_payload(payload, None)
        return decode(payload)

    @property
    def transport_arena(self) -> str | None:
        return getattr(self._pool, "transport_arena", None)

    def worker_pids(self) -> list[int]:
        return self._pool.worker_pids()

    def restart(self) -> int:
        return self._pool.restart()

    def close(self) -> None:
        self._pool.close()

    @property
    def generation(self) -> int:
        return self._pool.generation

    @property
    def workers(self) -> int:
        return self._pool.workers

    @property
    def closed(self) -> bool:
        return self._pool.closed

    @property
    def broken(self) -> bool:
        return self._pool.broken


# ----------------------------------------------------------------------
# on-disk corruption
# ----------------------------------------------------------------------
def corrupt_shard(path) -> bytes:
    """Flip one byte in the last record of the archive at ``path``.

    The header and directory stay intact — the archive still *opens* —
    but the record no longer matches its directory CRC, which is the
    realistic shape of silent media corruption.  Returns the pristine
    file bytes for :func:`restore_shard`.
    """
    path = Path(path)
    pristine = path.read_bytes()
    with path.open("rb") as stream:
        header = read_header(stream)
    if not header.directory:
        raise ValueError(f"archive has no records to corrupt: {path}")
    entry = header.directory[-1]
    mutated = bytearray(pristine)
    mutated[entry.offset + entry.length - 1] ^= 0xFF
    path.write_bytes(bytes(mutated))
    return pristine


def restore_shard(path, pristine: bytes) -> None:
    """Undo :func:`corrupt_shard`."""
    Path(path).write_bytes(pristine)
