"""Typed failure modes of the always-on query service.

Every way a request can fail without an answer has its own exception
class, so callers (and the chaos harness's availability accounting)
can tell *why* a request was not served: shed at the door
(:class:`Overloaded`), out of time (:class:`DeadlineExceeded`), or
routed at data the service has fenced off (:class:`ShardQuarantined`).
A request that raises none of these either returned a correct result
or hit a genuine bug — there is no "mystery failure" bucket.
"""

from __future__ import annotations


class ServeError(Exception):
    """Base class for every service-level failure."""


class ServiceClosedError(ServeError):
    """The service was asked for work after :meth:`QueryService.close`."""


class Overloaded(ServeError):
    """Admission control shed this request instead of queueing it.

    Raised when the bounded in-flight window is full or the client's
    token bucket is empty.  The service is healthy — the caller should
    back off and retry; nothing was executed.
    """

    def __init__(self, reason: str, *, retry_after: float = 0.0) -> None:
        super().__init__(reason)
        self.retry_after = retry_after


class DeadlineExceeded(ServeError):
    """The request's deadline expired before any attempt produced a
    result — retries, the hedge, and the degradation ladder included."""


class WorkerPoolUnavailable(ServeError):
    """The supervised pool burned its whole retry/hedge budget for one
    call without producing an answer.

    Not a terminal request failure: the service catches this and walks
    down the degradation ladder while the request's deadline allows.
    """


class ShardQuarantined(ServeError):
    """The request needs a shard the service has quarantined as corrupt.

    The shard is periodically re-probed and re-admitted once its
    records verify again; until then requests that cannot be answered
    without it (where/when on its trajectories, every range query) are
    refused rather than answered wrongly or partially.
    """

    def __init__(self, path: str) -> None:
        super().__init__(f"shard is quarantined as corrupt: {path}")
        self.path = path
