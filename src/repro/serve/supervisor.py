"""Worker supervision: respawn, deadlines, retries, and one hedge.

:class:`WorkerSupervisor` wraps a
:class:`~repro.query.engine.ShardWorkerPool`-compatible transport (the
real pool, or the chaos proxy in tests) and turns its raw failure modes
into a bounded per-call contract:

* a **dead worker** (``BrokenProcessPool``) costs one respawn — the
  pool is rebuilt with warm ``.stiu`` sidecar reloads and the shard
  sub-query is resubmitted with exponential backoff;
* a **wedged/slow worker** costs one attempt timeout, after which the
  call is retried; while the first attempt is still silent, **one
  cross-worker hedge** is launched so a single slow worker is raced by
  a healthy one instead of serializing the request behind it;
* the whole loop is **deadline-bounded**: no call outlives
  ``deadline_at``, full stop.

Failures the pool *reports deterministically* — corrupt shard data,
malformed specs — are never retried: they would fail identically again,
so they propagate to the caller (the service quarantines or rejects).

Respawns are generation-gated: when several in-flight calls observe the
same broken pool generation, only the first actually restarts it.
"""

from __future__ import annotations

import random
import threading
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from .errors import DeadlineExceeded, WorkerPoolUnavailable

_log = get_logger("repro.serve.supervisor")


@dataclass(frozen=True)
class RetryPolicy:
    """Timeouts and budgets for one supervised call."""

    attempt_timeout: float = 0.25  # seconds the first attempt may take
    timeout_multiplier: float = 2.0  # later attempts get more rope
    max_attempts: int = 3
    backoff_base: float = 0.05
    backoff_multiplier: float = 2.0
    backoff_cap: float = 0.5
    hedge_delay: float = 0.1  # silence before the hedge launches
    jitter: bool = True  # decorrelate retry pauses across callers

    def attempt_budget(self, attempt: int) -> float:
        return self.attempt_timeout * self.timeout_multiplier**attempt

    def backoff(self, attempt: int) -> float:
        """The deterministic exponential pause (no jitter)."""
        return min(
            self.backoff_cap,
            self.backoff_base * self.backoff_multiplier**attempt,
        )

    def schedule(self, rng=None) -> "BackoffSchedule":
        """A fresh per-call pause sequence (see :class:`BackoffSchedule`)."""
        return BackoffSchedule(self, rng=rng)


class BackoffSchedule:
    """Capped *decorrelated-jitter* backoff for one retry loop.

    The deterministic exponential pause has a failure mode the chaos
    bench can produce at will: every in-flight call that observed the
    same pool death retries after exactly the same pause, so the
    respawned pool is hit by a synchronized thundering herd that can
    knock it straight over again.  Decorrelated jitter (the AWS
    architecture-blog variant) breaks the lockstep::

        pause_n = min(cap, uniform(base, previous_pause * 3))

    Each caller's sequence wanders independently, the *expected* pause
    still grows geometrically, and the cap bounds the tail.  The RNG is
    injected (seeded by the supervisor / tests) so a chaos run's pause
    sequence is reproducible; with no RNG — or ``jitter=False`` on the
    policy — the schedule degrades to the deterministic exponential,
    which is what hand-built test policies with zeroed backoff rely on.
    """

    def __init__(self, policy: RetryPolicy, *, rng=None) -> None:
        self._policy = policy
        self._rng = rng if policy.jitter else None
        self._previous = policy.backoff_base

    def next_pause(self, attempt: int) -> float:
        policy = self._policy
        if self._rng is None:
            return policy.backoff(attempt)
        low = policy.backoff_base
        high = max(low, self._previous * 3.0)
        pause = min(policy.backoff_cap, self._rng.uniform(low, high))
        # floor the carried state at base so a near-zero draw cannot
        # collapse the whole remaining sequence to ~0 pauses
        self._previous = max(pause, low)
        return pause


class SupervisorStats:
    """Per-supervisor counters, mirrored into the process registry.

    A thin shim over :mod:`repro.obs.metrics`: every ``bump`` lands in
    the shared ``repro_supervisor_<event>_total`` counter (what a scrape
    or ``--metrics-out`` exports), while a per-instance tally keeps
    :meth:`snapshot` scoped to *this* supervisor — several supervisors
    in one process (tests, benches) never see each other's counts.
    """

    FIELDS = (
        "calls",
        "respawns",
        "worker_deaths",
        "attempt_timeouts",
        "retries",
        "hedges_launched",
        "hedges_won",
        "pings_ok",
        "pings_failed",
    )

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = dict.fromkeys(self.FIELDS, 0)
        self._metrics = {
            name: obs_metrics.counter(f"repro_supervisor_{name}_total")
            for name in self.FIELDS
        }

    def bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] += amount
        self._metrics[name].inc(amount)

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._counts)


class WorkerSupervisor:
    """Health-checks and drives a shard worker pool under deadlines."""

    def __init__(
        self,
        pool,
        *,
        policy: RetryPolicy | None = None,
        ping_timeout: float = 5.0,
        ping_failures_before_respawn: int = 2,
        clock=time.monotonic,
        sleep=time.sleep,
        seed: int | None = None,
    ) -> None:
        self.pool = pool
        self.policy = policy or RetryPolicy()
        self.ping_timeout = ping_timeout
        self.ping_failures_before_respawn = ping_failures_before_respawn
        self._clock = clock
        self._sleep = sleep
        # jitter RNG: seeded for reproducible chaos runs/tests, OS
        # entropy otherwise (decorrelation is the whole point)
        self._rng = random.Random(seed)
        self._respawn_lock = threading.Lock()
        self._consecutive_ping_failures = 0
        self._health_thread: threading.Thread | None = None
        self._health_stop = threading.Event()
        self.stats = SupervisorStats()

    # ------------------------------------------------------------------
    # respawn
    # ------------------------------------------------------------------
    def respawn(self, *, seen_generation: int | None = None) -> None:
        """Rebuild the pool; no-op if someone already did it for the
        generation the caller saw fail."""
        with self._respawn_lock:
            if (
                seen_generation is not None
                and self.pool.generation != seen_generation
            ):
                return
            self.pool.restart()
            self.stats.bump("respawns")
            _log.warning(
                "supervisor.respawn",
                generation=self.pool.generation,
                seen_generation=seen_generation,
            )

    # ------------------------------------------------------------------
    # health checking
    # ------------------------------------------------------------------
    def check_health(self) -> bool:
        """One health probe; respawns a provably broken pool.

        A ping *timeout* alone is ambiguous (the pool may just be busy),
        so only ``ping_failures_before_respawn`` consecutive failures —
        or a ``BrokenProcessPool`` — trigger a respawn.
        """
        generation = self.pool.generation
        try:
            self.pool.ping(timeout=self.ping_timeout)
        except BrokenProcessPool:
            self.stats.bump("pings_failed")
            self.stats.bump("worker_deaths")
            self._consecutive_ping_failures = 0
            self.respawn(seen_generation=generation)
            return False
        except Exception:
            self.stats.bump("pings_failed")
            self._consecutive_ping_failures += 1
            if (
                self._consecutive_ping_failures
                >= self.ping_failures_before_respawn
            ):
                self._consecutive_ping_failures = 0
                self.respawn(seen_generation=generation)
            return False
        self.stats.bump("pings_ok")
        self._consecutive_ping_failures = 0
        return True

    def start_health_loop(self, interval: float) -> None:
        """Probe the pool every ``interval`` seconds on a daemon thread."""
        if self._health_thread is not None:
            return
        self._health_stop.clear()

        def loop() -> None:
            while not self._health_stop.wait(interval):
                try:
                    self.check_health()
                except Exception:
                    # a dying pool mid-close must not kill the thread
                    if self._health_stop.is_set():
                        return

        self._health_thread = threading.Thread(
            target=loop, name="repro-serve-health", daemon=True
        )
        self._health_thread.start()

    def stop(self) -> None:
        self._health_stop.set()
        thread = self._health_thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._health_thread = None

    # ------------------------------------------------------------------
    # supervised calls
    # ------------------------------------------------------------------
    def call(self, path: str, specs, *, deadline_at: float) -> list:
        """One shard sub-query under the full supervision contract.

        Returns the shard's answers, or raises:

        * :class:`DeadlineExceeded` — the deadline expired first;
        * :class:`WorkerPoolUnavailable` — attempts exhausted with time
          left (caller should fall back);
        * any deterministic worker exception (corrupt shard, bad spec)
          — verbatim, immediately, never retried.
        """
        self.stats.bump("calls")
        with obs_trace.trace_span("pool.call", shard=path) as span:
            answer, attempts = self._call_loop(path, specs, deadline_at)
            span.set("attempts", attempts)
            return answer

    def _call_loop(self, path: str, specs, deadline_at: float):
        policy = self.policy
        backoff = policy.schedule(self._rng)
        attempt = 0
        while True:
            remaining = deadline_at - self._clock()
            if remaining <= 0:
                raise DeadlineExceeded(
                    f"deadline expired before shard {path} answered"
                )
            if attempt >= policy.max_attempts:
                raise WorkerPoolUnavailable(
                    f"{policy.max_attempts} attempts on shard {path} "
                    f"all died or timed out"
                )
            generation = self.pool.generation
            try:
                outcome = self._one_attempt(
                    path,
                    specs,
                    budget=min(remaining, policy.attempt_budget(attempt)),
                )
            except BrokenProcessPool:
                self.stats.bump("worker_deaths")
                _log.warning(
                    "supervisor.worker_death", shard=path, attempt=attempt
                )
                self.respawn(seen_generation=generation)
                outcome = None  # retry below
            if outcome is not None:
                return outcome.answer, attempt + 1
            attempt += 1
            self.stats.bump("retries")
            pause = min(
                backoff.next_pause(attempt - 1),
                max(0.0, deadline_at - self._clock()),
            )
            if pause > 0:
                self._sleep(pause)

    def _one_attempt(self, path, specs, *, budget: float):
        """Submit once (maybe hedged); returns an _Answer or None on
        timeout.  Raises BrokenProcessPool or a deterministic worker
        error."""
        policy = self.policy
        traced = obs_trace.is_tracing()

        def submit():
            # the traced kwarg is only passed when tracing, so untraced
            # duck-typed pools (test fakes) keep their 2-arg submit
            if traced:
                future = self.pool.submit(path, specs, traced=True)
            else:
                future = self.pool.submit(path, specs)
            submitted_at[future] = time.perf_counter()
            return future

        submitted_at: dict = {}
        started = self._clock()
        outstanding = {submit()}
        hedge_future = None
        broken: BaseException | None = None
        while True:
            elapsed = self._clock() - started
            if elapsed >= budget:
                self.stats.bump("attempt_timeouts")
                # the stragglers are abandoned, NOT cancelled.  On this
                # interpreter (3.11) Future.cancel() against a process
                # pool is a trap: if a worker dies while a cancelled
                # future still sits in the executor's pending map, the
                # manager thread's terminate_broken() calls
                # set_exception() on it, InvalidStateError propagates,
                # and the manager dies *without* terminating its
                # workers — leaking live processes and hanging
                # interpreter exit on the executor's atexit join (fixed
                # upstream in 3.12).  A late result resolving into a
                # dropped reference costs nothing.
                return None
            may_hedge = hedge_future is None and self.pool.workers > 1
            if may_hedge and elapsed < policy.hedge_delay:
                # quiet so far: wait out the hedge delay first, then race
                # a second submission against the silent one
                timeout = min(budget, policy.hedge_delay) - elapsed
            else:
                timeout = budget - elapsed
            done, _pending = wait(
                outstanding, timeout=max(0.0, timeout),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                outstanding.discard(future)
                try:
                    answer = future.result()
                except BrokenProcessPool as error:
                    broken = error
                    continue
                except Exception:
                    # hedge losers are abandoned, not cancelled — see
                    # the attempt-timeout comment above
                    raise
                if future is hedge_future:
                    self.stats.bump("hedges_won")
                if (
                    traced
                    and isinstance(answer, dict)
                    and "span" in answer
                ):
                    obs_trace.attach_child(
                        answer["span"],
                        roundtrip_seconds=(
                            time.perf_counter() - submitted_at[future]
                        ),
                    )
                    answer = answer["answers"]
                return _Answer(answer)
            if not outstanding:
                # every submission died with the pool
                raise broken if broken is not None else BrokenProcessPool(
                    "all submissions vanished"
                )
            if not done and may_hedge:
                elapsed = self._clock() - started
                if policy.hedge_delay <= elapsed < budget:
                    hedge_future = submit()
                    outstanding.add(hedge_future)
                    self.stats.bump("hedges_launched")
                    _log.info("supervisor.hedge_launched", shard=path)


class _Answer:
    """Wrapper distinguishing 'no answer yet' from 'answered None'."""

    __slots__ = ("answer",)

    def __init__(self, answer) -> None:
        self.answer = answer
