"""The socket front-end: a framed binary wire protocol over asyncio TCP.

Until this module, :class:`~repro.serve.service.QueryService` was only
reachable in-process; the supervision ladder, admission control, and
the shm data plane had never been exercised against the failure modes
a real network brings.  ``repro.serve.wire`` puts a hardened TCP
server in front of the service:

**Protocol.**  Every frame is a fixed 20-byte header plus a body::

    offset  size  field
    0       2     magic  b"RW"
    2       1     protocol version (1)
    3       1     frame type (request/response/error/ping/pong)
    4       8     request id, little-endian u64 (client-chosen,
                  echoed on the response — pipelining correlation)
    12      4     body length, u32
    16      4     CRC-32 of the body, u32

A request body carries the client id, an optional per-request deadline
and a packed query list; a response body is the request's ladder mode
plus the PR 9 answer codec blob
(:func:`repro.query.transport.encode_answers` — the same bytes the shm
slabs carry, so the wire and the data plane cannot drift); an error
body is a typed code + ``retry_after`` + message, one code per
:class:`~repro.serve.service.ServiceResponse` outcome.  The CRC means
a corrupted frame is *detected*, answered with a typed error frame,
and never parsed — a bad frame can cost a retry, never a wrong answer.

**Hardened edges.**  Per-connection read deadlines and an idle timeout
bound slow-loris clients; a connection limit bounds accept; a
per-connection *pipelining window* stops reading the socket while a
full window of requests is in flight (kernel backpressure does the
rest), and a service-level in-flight cap sheds excess requests with
``retry_after`` on the wire instead of queueing them.  A protocol
error on one connection closes *that* connection at worst — the accept
loop and every other connection keep serving.

**Graceful drain.**  :meth:`WireServer.drain` (SIGTERM in the CLI)
stops accepting, lets every in-flight request finish or deadline out,
then closes the lingering sockets — a deploy never kills answered work.

:class:`WireServerThread` runs the whole server on a dedicated event
loop thread, which is how tests, benches, and the synchronous CLI host
it.
"""

from __future__ import annotations

import asyncio
import struct
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial

from ..network.grid import Rect
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..query.engine import RangeQuery, WhenQuery, WhereQuery
from ..query.transport import (
    TransportError,
    UnencodableAnswers,
    decode_answers_blob,
    encode_answers,
)
from .errors import DeadlineExceeded, Overloaded, ShardQuarantined
from .service import MODE_BATCH, MODE_SHARDED, MODE_SINGLE

_log = get_logger("repro.serve.wire")

WIRE_MAGIC = b"RW"
WIRE_VERSION = 1

# frame types
FRAME_REQUEST = 1
FRAME_RESPONSE = 2
FRAME_ERROR = 3
FRAME_PING = 4
FRAME_PONG = 5
_FRAME_NAMES = {
    FRAME_REQUEST: "request",
    FRAME_RESPONSE: "response",
    FRAME_ERROR: "error",
    FRAME_PING: "ping",
    FRAME_PONG: "pong",
}

# error codes — one per ServiceResponse outcome plus the wire's own
ERR_OVERLOADED = 1
ERR_DEADLINE = 2
ERR_QUARANTINED = 3
ERR_MALFORMED = 4
ERR_INTERNAL = 5
ERR_DRAINING = 6

_HEADER = struct.Struct("<2sBBQII")  # magic, version, type, id, len, crc
HEADER_SIZE = _HEADER.size

_REQ_HEAD = struct.Struct("<dHI")  # deadline (0 = default), client len, count
_Q_TAG = struct.Struct("<B")
_Q_WHERE = struct.Struct("<qqd")  # trajectory, t, alpha
_Q_WHEN = struct.Struct("<qqqdd")  # trajectory, e0, e1, rd, alpha
_Q_RANGE = struct.Struct("<ddddqd")  # rect, t, alpha
_RESP_HEAD = struct.Struct("<B")  # ladder mode code
_ERR_HEAD = struct.Struct("<BdH")  # code, retry_after, message len

_TAG_WHERE = 0
_TAG_WHEN = 1
_TAG_RANGE = 2

_MODE_CODES = {MODE_SHARDED: 0, MODE_BATCH: 1, MODE_SINGLE: 2, "": 255}
_MODE_NAMES = {code: mode for mode, code in _MODE_CODES.items()}

#: hard caps a frame must respect before any allocation happens
MAX_BODY_BYTES = 8 << 20
MAX_CLIENT_BYTES = 256
MAX_QUERIES_PER_REQUEST = 65536


class WireError(Exception):
    """Base class for wire-level failures."""


class WireProtocolError(WireError):
    """The byte stream violates the framing contract (bad magic or
    version, oversized body, CRC mismatch, malformed request body).
    Never answered with data — at worst it costs the connection."""


class WireClosedError(WireError):
    """The peer went away mid-conversation (disconnect, refused
    connection, short read, or a draining server)."""


class WireServerError(WireError):
    """The server reported an internal failure for this request (the
    ``failed`` ServiceResponse bucket — e.g. the whole ladder was
    exhausted).  The request may be retried; nothing was answered."""


# ----------------------------------------------------------------------
# frame codec (shared by server and client)
# ----------------------------------------------------------------------
def encode_frame(frame_type: int, request_id: int, body: bytes = b"") -> bytes:
    """One complete frame: header (with the body's CRC-32) + body."""
    return (
        _HEADER.pack(
            WIRE_MAGIC,
            WIRE_VERSION,
            frame_type,
            request_id,
            len(body),
            zlib.crc32(body),
        )
        + body
    )


def decode_header(header: bytes) -> tuple[int, int, int, int]:
    """Validate one header; returns ``(type, request_id, length, crc)``.

    Raises :class:`WireProtocolError` on bad magic/version/type or an
    oversized body — *before* any body bytes are read or allocated.
    """
    try:
        magic, version, frame_type, request_id, length, crc = _HEADER.unpack(
            header
        )
    except struct.error as error:
        raise WireProtocolError(f"short header: {error}") from None
    if magic != WIRE_MAGIC:
        raise WireProtocolError(f"bad magic {magic!r}")
    if version != WIRE_VERSION:
        raise WireProtocolError(
            f"unsupported protocol version {version} (speak {WIRE_VERSION})"
        )
    if frame_type not in _FRAME_NAMES:
        raise WireProtocolError(f"unknown frame type {frame_type}")
    if length > MAX_BODY_BYTES:
        raise WireProtocolError(
            f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )
    return frame_type, request_id, length, crc


def check_body(body: bytes, crc: int) -> None:
    """The corruption gate: a body that fails its header CRC is never
    parsed."""
    if zlib.crc32(body) != crc:
        raise WireProtocolError("body CRC mismatch (corrupt frame)")


def encode_request_body(
    queries, *, client: str = "wire", deadline: float | None = None
) -> bytes:
    """Pack one request: client id, optional deadline, query list."""
    client_bytes = client.encode("utf-8")
    if len(client_bytes) > MAX_CLIENT_BYTES:
        raise WireProtocolError(
            f"client id of {len(client_bytes)} bytes exceeds "
            f"{MAX_CLIENT_BYTES}"
        )
    if len(queries) > MAX_QUERIES_PER_REQUEST:
        raise WireProtocolError(
            f"{len(queries)} queries exceed the per-request cap of "
            f"{MAX_QUERIES_PER_REQUEST}"
        )
    parts = [
        _REQ_HEAD.pack(
            deadline if deadline is not None else 0.0,
            len(client_bytes),
            len(queries),
        ),
        client_bytes,
    ]
    for query in queries:
        if isinstance(query, WhereQuery):
            parts.append(_Q_TAG.pack(_TAG_WHERE))
            parts.append(
                _Q_WHERE.pack(query.trajectory_id, query.t, query.alpha)
            )
        elif isinstance(query, WhenQuery):
            parts.append(_Q_TAG.pack(_TAG_WHEN))
            parts.append(
                _Q_WHEN.pack(
                    query.trajectory_id,
                    query.edge[0],
                    query.edge[1],
                    query.relative_distance,
                    query.alpha,
                )
            )
        elif isinstance(query, RangeQuery):
            parts.append(_Q_TAG.pack(_TAG_RANGE))
            parts.append(
                _Q_RANGE.pack(
                    query.rect.min_x,
                    query.rect.min_y,
                    query.rect.max_x,
                    query.rect.max_y,
                    query.t,
                    query.alpha,
                )
            )
        else:
            raise WireProtocolError(
                f"unsupported query type {type(query).__name__}"
            )
    return b"".join(parts)


def decode_request_body(body) -> tuple[str, float | None, list]:
    """Unpack one request body; returns ``(client, deadline, queries)``.

    Raises :class:`WireProtocolError` for any malformed shape — a
    truncated list, an unknown tag, a degenerate rectangle.  Nothing is
    executed on that path.
    """
    try:
        deadline, client_len, count = _REQ_HEAD.unpack_from(body, 0)
        offset = _REQ_HEAD.size
        if client_len > MAX_CLIENT_BYTES:
            raise WireProtocolError(f"client id of {client_len} bytes")
        if count > MAX_QUERIES_PER_REQUEST:
            raise WireProtocolError(f"{count} queries in one request")
        client = bytes(body[offset:offset + client_len]).decode("utf-8")
        if len(client.encode("utf-8")) != client_len:
            raise WireProtocolError("truncated client id")
        offset += client_len
        queries: list = []
        for _ in range(count):
            (tag,) = _Q_TAG.unpack_from(body, offset)
            offset += _Q_TAG.size
            if tag == _TAG_WHERE:
                trajectory_id, t, alpha = _Q_WHERE.unpack_from(body, offset)
                offset += _Q_WHERE.size
                queries.append(WhereQuery(trajectory_id, t, alpha))
            elif tag == _TAG_WHEN:
                trajectory_id, e0, e1, rd, alpha = _Q_WHEN.unpack_from(
                    body, offset
                )
                offset += _Q_WHEN.size
                queries.append(WhenQuery(trajectory_id, (e0, e1), rd, alpha))
            elif tag == _TAG_RANGE:
                min_x, min_y, max_x, max_y, t, alpha = _Q_RANGE.unpack_from(
                    body, offset
                )
                offset += _Q_RANGE.size
                queries.append(
                    RangeQuery(Rect(min_x, min_y, max_x, max_y), t, alpha)
                )
            else:
                raise WireProtocolError(f"unknown query tag {tag}")
        if offset != len(body):
            raise WireProtocolError(
                f"{len(body) - offset} trailing bytes after the query list"
            )
    except (struct.error, UnicodeDecodeError, ValueError) as error:
        # ValueError includes Rect's degenerate-rectangle check
        raise WireProtocolError(f"malformed request body: {error}") from None
    return client, (deadline if deadline > 0 else None), queries


def encode_response_body(mode: str, results) -> bytes:
    """Ladder mode byte + the PR 9 answer blob."""
    return _RESP_HEAD.pack(_MODE_CODES.get(mode, 255)) + encode_answers(
        results
    )


def decode_response_body(body) -> tuple[str, list]:
    try:
        (mode_code,) = _RESP_HEAD.unpack_from(body, 0)
        results = decode_answers_blob(memoryview(body)[_RESP_HEAD.size:])
    except (struct.error, TransportError) as error:
        raise WireProtocolError(
            f"malformed response body: {error}"
        ) from None
    return _MODE_NAMES.get(mode_code, ""), results


def encode_error_body(
    code: int, message: str, *, retry_after: float = 0.0
) -> bytes:
    message_bytes = message.encode("utf-8")[:2048]
    return (
        _ERR_HEAD.pack(code, retry_after, len(message_bytes)) + message_bytes
    )


def decode_error_body(body) -> tuple[int, float, str]:
    try:
        code, retry_after, length = _ERR_HEAD.unpack_from(body, 0)
        message = bytes(
            body[_ERR_HEAD.size:_ERR_HEAD.size + length]
        ).decode("utf-8", errors="replace")
    except struct.error as error:
        raise WireProtocolError(f"malformed error body: {error}") from None
    return code, retry_after, message


def exception_from_error(code: int, retry_after: float, message: str):
    """Client-side: rehydrate an error frame into its typed exception."""
    if code == ERR_OVERLOADED:
        return Overloaded(message, retry_after=retry_after)
    if code == ERR_DEADLINE:
        return DeadlineExceeded(message)
    if code == ERR_QUARANTINED:
        return ShardQuarantined(message)
    if code == ERR_MALFORMED:
        return WireProtocolError(f"server rejected the frame: {message}")
    if code == ERR_DRAINING:
        return WireClosedError(f"server is draining: {message}")
    return WireServerError(message or "internal server error")


def error_frame_for_response(request_id: int, response) -> bytes:
    """Map one failed :class:`ServiceResponse` to its error frame."""
    error = response.error
    retry_after = getattr(error, "retry_after", 0.0)
    code = {
        "overloaded": ERR_OVERLOADED,
        "deadline": ERR_DEADLINE,
        "quarantined": ERR_QUARANTINED,
    }.get(response.kind, ERR_INTERNAL)
    message = (
        getattr(error, "path", None)
        if code == ERR_QUARANTINED
        else str(error)
    ) or str(error)
    return encode_frame(
        FRAME_ERROR,
        request_id,
        encode_error_body(code, message, retry_after=retry_after),
    )


# ----------------------------------------------------------------------
# the asyncio server
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WireServerConfig:
    """Connection-edge hardening knobs."""

    max_connections: int = 64
    pipeline_window: int = 8  # in-flight requests per connection
    idle_timeout: float = 300.0  # seconds between frames before close
    read_timeout: float = 10.0  # seconds to deliver one frame's body
    max_dispatch: int | None = None  # global in-flight cap; None =
    # the service's max_in_flight
    drain_grace: float = 1.0  # extra seconds past the service deadline

    def __post_init__(self) -> None:
        if self.max_connections < 1:
            raise ValueError(
                f"max_connections must be >= 1, got {self.max_connections}"
            )
        if self.pipeline_window < 1:
            raise ValueError(
                f"pipeline_window must be >= 1, got {self.pipeline_window}"
            )


class _WireStats:
    """Process-registry mirrors for the wire front-end."""

    def __init__(self) -> None:
        self.connections_total = obs_metrics.counter(
            "repro_wire_connections_total",
            help="TCP connections accepted by the wire front-end",
        )
        self.connections_active = obs_metrics.gauge(
            "repro_wire_connections_active"
        )
        self.rejected = {
            reason: obs_metrics.counter(
                "repro_wire_connections_rejected_total",
                labels={"reason": reason},
            )
            for reason in ("limit", "draining")
        }
        self.frames_in = {
            name: obs_metrics.counter(
                "repro_wire_frames_received_total", labels={"type": name}
            )
            for name in _FRAME_NAMES.values()
        }
        self.frames_out = {
            name: obs_metrics.counter(
                "repro_wire_frames_sent_total", labels={"type": name}
            )
            for name in _FRAME_NAMES.values()
        }
        self.protocol_errors = {
            reason: obs_metrics.counter(
                "repro_wire_protocol_errors_total",
                labels={"reason": reason},
            )
            for reason in (
                "bad_header", "bad_crc", "bad_request", "timeout",
                "disconnect",
            )
        }
        self.bytes_read = obs_metrics.counter("repro_wire_bytes_read_total")
        self.bytes_written = obs_metrics.counter(
            "repro_wire_bytes_written_total"
        )
        self.requests = obs_metrics.counter("repro_wire_requests_total")
        self.shed = obs_metrics.counter(
            "repro_wire_requests_shed_total",
            help="Requests refused at the wire before touching a thread",
        )
        self.latency = obs_metrics.histogram(
            "repro_wire_request_latency_seconds",
            help="Request latency observed at the wire layer",
        )


class WireServer:
    """The asyncio TCP front-end over one :class:`QueryService`.

    Must be constructed and driven on an event loop
    (:class:`WireServerThread` hosts one for synchronous callers).
    ``service`` only needs ``submit_many(queries, client=, deadline=)``
    and ``config.max_in_flight`` — the chaos tests duck-type it.
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: WireServerConfig | None = None,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # rebound to the kernel-chosen port on start
        self.config = config or WireServerConfig()
        self.stats = _WireStats()
        self._server: asyncio.AbstractServer | None = None
        self._draining = False
        self._connections: set[asyncio.StreamWriter] = set()
        self._tasks: set[asyncio.Task] = set()
        self._dispatched = 0
        limit = self.config.max_dispatch
        if limit is None:
            limit = getattr(
                getattr(service, "config", None), "max_in_flight", 64
            )
        self._dispatch_limit = max(1, int(limit))
        # one thread per dispatchable request: an admitted request gets
        # a thread immediately, and the shed path above the limit never
        # waits behind a queue
        self._executor = ThreadPoolExecutor(
            max_workers=self._dispatch_limit,
            thread_name_prefix="repro-wire",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        _log.info("wire.listening", host=self.host, port=self.port)
        return self.host, self.port

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def active_connections(self) -> int:
        return len(self._connections)

    async def drain(self, timeout: float | None = None) -> bool:
        """Stop accepting, let in-flight requests finish or deadline
        out, close lingering connections.  True when everything
        completed inside the budget."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if timeout is None:
            deadline = getattr(
                getattr(self.service, "config", None), "deadline", 2.0
            )
            timeout = deadline + self.config.drain_grace
        pending = [task for task in self._tasks if not task.done()]
        _log.info(
            "wire.drain_begin", in_flight=len(pending), timeout=timeout
        )
        clean = True
        if pending:
            done, still_pending = await asyncio.wait(
                pending, timeout=timeout
            )
            clean = not still_pending
            for task in still_pending:
                task.cancel()
        # connections idle at their read loop just get closed; anything
        # mid-request already produced (or lost) its response above
        for writer in list(self._connections):
            writer.close()
        _log.info("wire.drain_done", clean=clean)
        return clean

    async def aclose(self) -> None:
        if not self._draining:
            await self.drain(timeout=0.0)
        self._executor.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # per-connection loop
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections_total.inc()
        write_lock = asyncio.Lock()
        if self._draining:
            self.stats.rejected["draining"].inc()
            await self._refuse(
                writer, write_lock, ERR_DRAINING, "server is draining"
            )
            return
        if len(self._connections) >= self.config.max_connections:
            self.stats.rejected["limit"].inc()
            await self._refuse(
                writer,
                write_lock,
                ERR_OVERLOADED,
                f"connection limit ({self.config.max_connections}) reached",
                retry_after=0.5,
            )
            return
        self._connections.add(writer)
        self.stats.connections_active.set(len(self._connections))
        window = asyncio.Semaphore(self.config.pipeline_window)
        try:
            await self._read_loop(reader, writer, write_lock, window)
        except (
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
        ):
            self.stats.protocol_errors["disconnect"].inc()
        except asyncio.TimeoutError:
            self.stats.protocol_errors["timeout"].inc()
            _log.info("wire.connection_timed_out")
        except Exception as error:  # noqa: BLE001 - the loop must survive
            # an unexpected per-connection failure must never take the
            # accept loop (or any sibling connection) with it
            _log.error("wire.connection_error", error=str(error))
        finally:
            self._connections.discard(writer)
            self.stats.connections_active.set(len(self._connections))
            writer.close()

    async def _read_loop(self, reader, writer, write_lock, window) -> None:
        config = self.config
        while True:
            # backpressure: with a full pipelining window this blocks —
            # the socket is not read, the kernel buffer fills, and the
            # client's send stalls until a response frees a slot
            await window.acquire()
            release = window.release
            try:
                if self._draining:
                    return
                header = await asyncio.wait_for(
                    reader.readexactly(HEADER_SIZE),
                    timeout=config.idle_timeout,
                )
                self.stats.bytes_read.inc(HEADER_SIZE)
                try:
                    frame_type, request_id, length, crc = decode_header(
                        header
                    )
                except WireProtocolError as error:
                    # the stream is desynchronized: answer (best
                    # effort) and drop this connection only
                    self.stats.protocol_errors["bad_header"].inc()
                    await self._send(
                        writer,
                        write_lock,
                        encode_frame(
                            FRAME_ERROR,
                            0,
                            encode_error_body(ERR_MALFORMED, str(error)),
                        ),
                    )
                    _log.info("wire.bad_header", error=str(error))
                    return
                # the body length is trusted *after* decode_header
                # capped it, so a slow body read is bounded by
                # read_timeout (the slow-loris edge) and the stream
                # stays in sync even when the CRC fails below
                body = await asyncio.wait_for(
                    reader.readexactly(length), timeout=config.read_timeout
                )
                self.stats.bytes_read.inc(length)
                self.stats.frames_in[_FRAME_NAMES[frame_type]].inc()
                try:
                    check_body(body, crc)
                except WireProtocolError as error:
                    self.stats.protocol_errors["bad_crc"].inc()
                    await self._send(
                        writer,
                        write_lock,
                        encode_frame(
                            FRAME_ERROR,
                            request_id,
                            encode_error_body(ERR_MALFORMED, str(error)),
                        ),
                    )
                    continue
                if frame_type == FRAME_PING:
                    await self._send(
                        writer,
                        write_lock,
                        encode_frame(FRAME_PONG, request_id, body),
                    )
                    continue
                if frame_type != FRAME_REQUEST:
                    await self._send(
                        writer,
                        write_lock,
                        encode_frame(
                            FRAME_ERROR,
                            request_id,
                            encode_error_body(
                                ERR_MALFORMED,
                                f"unexpected {_FRAME_NAMES[frame_type]} "
                                f"frame",
                            ),
                        ),
                    )
                    continue
                try:
                    client, deadline, queries = decode_request_body(body)
                except WireProtocolError as error:
                    self.stats.protocol_errors["bad_request"].inc()
                    await self._send(
                        writer,
                        write_lock,
                        encode_frame(
                            FRAME_ERROR,
                            request_id,
                            encode_error_body(ERR_MALFORMED, str(error)),
                        ),
                    )
                    continue
                # hand the window slot to the request task; it releases
                # on completion, which is what reopens the read loop
                task = asyncio.ensure_future(
                    self._serve_request(
                        writer,
                        write_lock,
                        window,
                        request_id,
                        client,
                        deadline,
                        queries,
                    )
                )
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
                release = None  # the task owns the slot now
            finally:
                if release is not None:
                    release()

    async def _serve_request(
        self, writer, write_lock, window, request_id, client, deadline,
        queries,
    ) -> None:
        started = time.perf_counter()
        self.stats.requests.inc()
        try:
            if self._dispatched >= self._dispatch_limit:
                # shed at the wire: every executor thread is busy, so
                # queueing here would just convert overload to latency
                self.stats.shed.inc()
                frame = encode_frame(
                    FRAME_ERROR,
                    request_id,
                    encode_error_body(
                        ERR_OVERLOADED,
                        f"wire dispatch window is full "
                        f"({self._dispatch_limit} requests)",
                        retry_after=0.1,
                    ),
                )
            else:
                frame = await self._dispatch(request_id, client, deadline,
                                             queries)
            await self._send(writer, write_lock, frame)
        except (ConnectionResetError, BrokenPipeError):
            self.stats.protocol_errors["disconnect"].inc()
        except Exception as error:  # noqa: BLE001 - must not kill the loop
            _log.error("wire.request_error", error=str(error))
        finally:
            self.stats.latency.observe(time.perf_counter() - started)
            window.release()

    async def _dispatch(self, request_id, client, deadline, queries) -> bytes:
        loop = asyncio.get_running_loop()
        self._dispatched += 1
        try:
            response = await loop.run_in_executor(
                self._executor,
                partial(self._call_service, client, deadline, queries),
            )
        except Exception as error:  # noqa: BLE001 - typed on the wire
            # e.g. ServiceClosedError racing a drain
            return encode_frame(
                FRAME_ERROR,
                request_id,
                encode_error_body(
                    ERR_DRAINING if self._draining else ERR_INTERNAL,
                    str(error),
                ),
            )
        finally:
            self._dispatched -= 1
        if not response.ok:
            return error_frame_for_response(request_id, response)
        try:
            body = encode_response_body(response.mode, response.results)
        except UnencodableAnswers as error:
            return encode_frame(
                FRAME_ERROR,
                request_id,
                encode_error_body(
                    ERR_INTERNAL, f"unencodable answers: {error}"
                ),
            )
        return encode_frame(FRAME_RESPONSE, request_id, body)

    def _call_service(self, client, deadline, queries):
        with obs_trace.trace_span(
            "wire.request", client=client, queries=len(queries)
        ):
            return self.service.submit_many(
                queries, client=client, deadline=deadline
            )

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    async def _send(self, writer, write_lock, frame: bytes) -> None:
        frame_type = frame[3]
        async with write_lock:
            writer.write(frame)
            await writer.drain()
        self.stats.bytes_written.inc(len(frame))
        self.stats.frames_out[_FRAME_NAMES[frame_type]].inc()

    async def _refuse(
        self, writer, write_lock, code: int, message: str,
        *, retry_after: float = 0.0,
    ) -> None:
        try:
            await self._send(
                writer,
                write_lock,
                encode_frame(
                    FRAME_ERROR,
                    0,
                    encode_error_body(
                        code, message, retry_after=retry_after
                    ),
                ),
            )
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()


class WireServerThread:
    """Host a :class:`WireServer` on a dedicated event-loop thread.

    The synchronous world's handle on the server: tests, benches, and
    ``repro serve-bench --wire`` start one, talk to ``.port`` with a
    :class:`~repro.serve.client.WireClient`, and ``drain()`` it when
    done.  (The ``repro serve`` command drives the asyncio API
    directly so it can own signal handling.)
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        config: WireServerConfig | None = None,
    ) -> None:
        self.server = WireServer(service, host=host, port=port, config=config)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._start_error: BaseException | None = None

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def start(self) -> "WireServerThread":
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-wire-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10.0)
        if self._start_error is not None:
            raise self._start_error
        if not self._started.is_set():
            raise WireError("wire server failed to start within 10s")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        try:
            try:
                loop.run_until_complete(self.server.start())
            except BaseException as error:  # noqa: BLE001 - surfaced to start()
                self._start_error = error
                return
            finally:
                self._started.set()
            loop.run_forever()
        finally:
            loop.close()

    def _call(self, coroutine, timeout: float | None):
        if self._loop is None:
            raise WireError("wire server thread is not running")
        future = asyncio.run_coroutine_threadsafe(coroutine, self._loop)
        return future.result(timeout)

    def drain(self, timeout: float | None = None) -> bool:
        """Synchronous graceful drain; returns the server's verdict."""
        budget = None if timeout is None else timeout + 5.0
        clean = self._call(self.server.drain(timeout), budget)
        self.stop()
        return clean

    def stop(self) -> None:
        """Tear the loop down (drain first for a graceful exit)."""
        loop, self._loop = self._loop, None
        if loop is None:
            return
        asyncio.run_coroutine_threadsafe(
            self.server.aclose(), loop
        ).result(10.0)
        loop.call_soon_threadsafe(loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None

    def __enter__(self) -> "WireServerThread":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.stop()
        except Exception:
            if exc_type is None:
                raise
