"""Synchronous wire client with reconnect and jittered backoff.

:class:`WireClient` is the blocking counterpart of
:class:`~repro.serve.wire.WireServer`: one TCP connection, one framed
request/response at a time.  Queries are pure reads over immutable
archives, so a request that dies mid-flight (disconnect, short read,
corrupt frame) is safe to resubmit on a fresh connection — the client
does exactly that, up to ``max_attempts`` times, pausing with the
same capped decorrelated-jitter schedule the worker supervisor uses
(:meth:`~repro.serve.supervisor.RetryPolicy.schedule`), so a fleet of
clients recovering from the same blip spreads its reconnects instead
of stampeding.

Typed error frames come back as the exceptions they encode:
:class:`~repro.serve.errors.Overloaded` (with the server's
``retry_after``), :class:`~repro.serve.errors.DeadlineExceeded`,
:class:`~repro.serve.errors.ShardQuarantined`, and the wire's own
:class:`~repro.serve.wire.WireProtocolError` /
:class:`~repro.serve.wire.WireServerError` /
:class:`~repro.serve.wire.WireClosedError`.  Those are *answers*, not
transport failures — the client raises them instead of retrying
(except ``Overloaded``/draining, which honor ``retry_after`` within
the attempt budget).
"""

from __future__ import annotations

import itertools
import random
import socket
import time
from dataclasses import dataclass

from ..obs.log import get_logger
from .errors import Overloaded
from .supervisor import RetryPolicy
from .wire import (
    FRAME_PING,
    FRAME_PONG,
    FRAME_REQUEST,
    FRAME_RESPONSE,
    HEADER_SIZE,
    WireClosedError,
    WireError,
    WireProtocolError,
    check_body,
    decode_error_body,
    decode_header,
    decode_response_body,
    encode_frame,
    encode_request_body,
    exception_from_error,
)

_log = get_logger("repro.serve.client")

#: default pause schedule: decorrelated jitter between 20ms and 500ms
DEFAULT_BACKOFF = RetryPolicy(
    backoff_base=0.02, backoff_cap=0.5, max_attempts=5
)


@dataclass(frozen=True)
class WireResult:
    """One successful request: the answers plus wire-side metadata."""

    results: list
    mode: str  # ladder rung the server degraded to
    request_id: int
    attempts: int  # wire attempts spent (1 = clean first try)
    latency: float  # seconds, first send to decoded response


class WireClient:
    """Blocking client for the framed query protocol.

    Not thread-safe — one client per thread (the chaos bench runs one
    per worker).  Usable as a context manager; connects lazily on the
    first request.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        client_id: str = "wire",
        connect_timeout: float = 2.0,
        request_timeout: float = 30.0,
        max_attempts: int = 4,
        backoff: RetryPolicy | None = None,
        seed: int | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.client_id = client_id
        self.connect_timeout = connect_timeout
        self.request_timeout = request_timeout
        self.max_attempts = max(1, max_attempts)
        self._backoff = backoff or DEFAULT_BACKOFF
        self._rng = random.Random(seed)
        self._sock: socket.socket | None = None
        self._request_ids = itertools.count(1)
        self.reconnects = 0
        self.retries = 0

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------
    @property
    def connected(self) -> bool:
        return self._sock is not None

    def connect(self) -> None:
        """Establish the connection, retrying with jittered backoff."""
        if self._sock is not None:
            return
        schedule = self._backoff.schedule(self._rng)
        last_error: Exception | None = None
        for attempt in range(self.max_attempts):
            try:
                sock = socket.create_connection(
                    (self.host, self.port), timeout=self.connect_timeout
                )
                sock.settimeout(self.request_timeout)
                sock.setsockopt(
                    socket.IPPROTO_TCP, socket.TCP_NODELAY, 1
                )
                self._sock = sock
                if attempt:
                    self.reconnects += 1
                return
            except OSError as error:
                last_error = error
                if attempt + 1 < self.max_attempts:
                    time.sleep(schedule.next_pause(attempt))
        raise WireClosedError(
            f"cannot connect to {self.host}:{self.port} after "
            f"{self.max_attempts} attempts: {last_error}"
        )

    def close(self) -> None:
        self._drop()

    def _drop(self) -> None:
        sock, self._sock = self._sock, None
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass

    def __enter__(self) -> "WireClient":
        self.connect()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # requests
    # ------------------------------------------------------------------
    def request(
        self, queries, *, deadline: float | None = None
    ) -> WireResult:
        """Submit one batch; returns a :class:`WireResult` or raises
        the typed error the server answered with.

        Transport failures (disconnect, short read, corrupt frame,
        refused connect) trigger reconnect-and-resubmit with jittered
        pauses; ``Overloaded`` honors the server's ``retry_after``.
        The last attempt's failure propagates.
        """
        body = encode_request_body(
            queries, client=self.client_id, deadline=deadline
        )
        schedule = self._backoff.schedule(self._rng)
        started = time.perf_counter()
        last_error: Exception = WireClosedError("no attempts made")
        for attempt in range(self.max_attempts):
            if attempt:
                self.retries += 1
            request_id = next(self._request_ids)
            try:
                if attempt and self._sock is None:
                    self.reconnects += 1
                self.connect()
                frame_type, echoed_id, payload = self._roundtrip(
                    encode_frame(FRAME_REQUEST, request_id, body)
                )
            except (OSError, WireClosedError) as error:
                # the connection died with the request in flight —
                # reads are idempotent, so resubmit on a fresh socket
                last_error = error
                self._drop()
                if attempt + 1 < self.max_attempts:
                    time.sleep(schedule.next_pause(attempt))
                continue
            except WireProtocolError as error:
                # the *stream* is corrupt (bad magic/CRC from our side
                # of the wire): the connection is unusable, retry fresh
                last_error = error
                self._drop()
                _log.info("wire_client.corrupt_stream", error=str(error))
                if attempt + 1 < self.max_attempts:
                    time.sleep(schedule.next_pause(attempt))
                continue
            if frame_type == FRAME_RESPONSE:
                if echoed_id != request_id:
                    # a response for a request this client never made:
                    # the framing is out of step, start over
                    last_error = WireProtocolError(
                        f"response for request {echoed_id}, "
                        f"expected {request_id}"
                    )
                    self._drop()
                    continue
                mode, results = decode_response_body(payload)
                return WireResult(
                    results=results,
                    mode=mode,
                    request_id=request_id,
                    attempts=attempt + 1,
                    latency=time.perf_counter() - started,
                )
            # an error frame: typed outcome from the server
            code, retry_after, message = decode_error_body(payload)
            error = exception_from_error(code, retry_after, message)
            if isinstance(
                error, (Overloaded, WireClosedError, WireProtocolError)
            ):
                # shed, draining, or the server saw a corrupt frame
                # (in-flight corruption of *our* request — the CRC did
                # its job): back off, honoring retry_after, and resend
                # within the attempt budget; an actually-broken client
                # still surfaces the error once the budget is spent
                last_error = error
                if isinstance(error, (WireClosedError, WireProtocolError)):
                    self._drop()  # start over on a fresh connection
                if attempt + 1 < self.max_attempts:
                    pause = max(
                        getattr(error, "retry_after", 0.0),
                        schedule.next_pause(attempt),
                    )
                    time.sleep(pause)
                continue
            raise error
        raise last_error

    def ping(self, payload: bytes = b"ping") -> float:
        """Round-trip one ping frame; returns the latency in seconds."""
        self.connect()
        started = time.perf_counter()
        request_id = next(self._request_ids)
        frame_type, echoed_id, body = self._roundtrip(
            encode_frame(FRAME_PING, request_id, payload)
        )
        if frame_type != FRAME_PONG or echoed_id != request_id:
            raise WireProtocolError(
                f"expected pong {request_id}, got frame type "
                f"{frame_type} id {echoed_id}"
            )
        if bytes(body) != payload:
            raise WireProtocolError("pong payload mismatch")
        return time.perf_counter() - started

    # ------------------------------------------------------------------
    # raw framing
    # ------------------------------------------------------------------
    def _roundtrip(self, frame: bytes) -> tuple[int, int, bytes]:
        sock = self._sock
        if sock is None:
            raise WireClosedError("not connected")
        try:
            sock.sendall(frame)
            header = self._read_exactly(sock, HEADER_SIZE)
            frame_type, request_id, length, crc = decode_header(header)
            body = self._read_exactly(sock, length)
        except socket.timeout as error:
            raise WireClosedError(
                f"no response within {self.request_timeout}s"
            ) from error
        check_body(body, crc)
        return frame_type, request_id, body

    @staticmethod
    def _read_exactly(sock: socket.socket, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise WireClosedError(
                    f"connection closed with {remaining} of {count} "
                    f"bytes unread"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)


__all__ = ["DEFAULT_BACKOFF", "WireClient", "WireError", "WireResult"]
