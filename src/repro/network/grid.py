"""Grid partitioning of the road network into regions (StIU spatial index, §5.2).

The StIU spatial index "partitions the road network G using grid cells,
each of which represents a region re".  ``GridPartition`` maps points,
edges, and query rectangles to cell ids.  Edge-to-cell mapping walks the
segment through the grid (a conservative supercover), so an edge is
associated with every cell it touches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

from .graph import BoundingBox, RoadNetwork


@dataclass(frozen=True)
class Rect:
    """An axis-aligned query rectangle (the paper's query region ``RE``)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise ValueError(f"degenerate rectangle {self}")

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def intersects(self, other: "Rect") -> bool:
        return not (
            self.max_x < other.min_x
            or other.max_x < self.min_x
            or self.max_y < other.min_y
            or other.max_y < self.min_y
        )

    def contains_rect(self, other: "Rect") -> bool:
        return (
            self.min_x <= other.min_x
            and self.min_y <= other.min_y
            and self.max_x >= other.max_x
            and self.max_y >= other.max_y
        )


class GridPartition:
    """A ``cells_per_side x cells_per_side`` partition of a bounding box.

    Cell ids are integers ``row * cells_per_side + col``; row 0 is the
    bottom (minimum ``y``) of the bounding box.
    """

    def __init__(self, box: BoundingBox, cells_per_side: int) -> None:
        if cells_per_side < 1:
            raise ValueError(f"cells_per_side must be >= 1, got {cells_per_side}")
        if box.width <= 0 or box.height <= 0:
            box = box.expanded(max(box.width, box.height, 1.0) * 0.5)
        self.box = box
        self.cells_per_side = cells_per_side
        self._cell_width = box.width / cells_per_side
        self._cell_height = box.height / cells_per_side

    @classmethod
    def for_network(
        cls, network: RoadNetwork, cells_per_side: int, margin: float = 1e-9
    ) -> "GridPartition":
        """Partition covering ``network`` with a tiny margin so border
        vertices fall inside the grid."""
        box = network.bounding_box()
        span = max(box.width, box.height, 1.0)
        return cls(box.expanded(span * 1e-9 + margin), cells_per_side)

    @property
    def cell_count(self) -> int:
        return self.cells_per_side * self.cells_per_side

    # ------------------------------------------------------------------
    # point / cell conversions
    # ------------------------------------------------------------------
    def cell_of_point(self, x: float, y: float) -> int:
        """Cell id containing ``(x, y)``; points outside clamp to the border."""
        col = self._clamp_index((x - self.box.min_x) / self._cell_width)
        row = self._clamp_index((y - self.box.min_y) / self._cell_height)
        return row * self.cells_per_side + col

    def _clamp_index(self, value: float) -> int:
        index = int(math.floor(value))
        return min(max(index, 0), self.cells_per_side - 1)

    def cell_rect(self, cell_id: int) -> Rect:
        """Geometric extent of a cell."""
        if not 0 <= cell_id < self.cell_count:
            raise ValueError(f"cell id {cell_id} out of range")
        row, col = divmod(cell_id, self.cells_per_side)
        return Rect(
            self.box.min_x + col * self._cell_width,
            self.box.min_y + row * self._cell_height,
            self.box.min_x + (col + 1) * self._cell_width,
            self.box.min_y + (row + 1) * self._cell_height,
        )

    # ------------------------------------------------------------------
    # segment / rectangle coverage
    # ------------------------------------------------------------------
    def cells_of_segment(
        self, x0: float, y0: float, x1: float, y1: float
    ) -> list[int]:
        """Cells touched by the segment, in traversal order (deduplicated).

        Uses sampling at sub-cell resolution; conservative for index
        construction (extra cells only add tuples, never lose them).
        """
        cells: list[int] = []
        seen: set[int] = set()
        length = math.hypot(x1 - x0, y1 - y0)
        step = min(self._cell_width, self._cell_height) / 2.0
        samples = max(int(math.ceil(length / step)), 1) if step > 0 else 1
        for i in range(samples + 1):
            t = i / samples
            cell = self.cell_of_point(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
            if cell not in seen:
                seen.add(cell)
                cells.append(cell)
        return cells

    def cells_of_edge(self, network: RoadNetwork, start: int, end: int) -> list[int]:
        """Cells touched by the straight-line embedding of an edge."""
        a = network.vertex(start)
        b = network.vertex(end)
        return self.cells_of_segment(a.x, a.y, b.x, b.y)

    def cells_of_rect(self, rect: Rect) -> list[int]:
        """All cells intersecting ``rect``."""
        lo_col = self._clamp_index((rect.min_x - self.box.min_x) / self._cell_width)
        hi_col = self._clamp_index((rect.max_x - self.box.min_x) / self._cell_width)
        lo_row = self._clamp_index((rect.min_y - self.box.min_y) / self._cell_height)
        hi_row = self._clamp_index((rect.max_y - self.box.min_y) / self._cell_height)
        return [
            row * self.cells_per_side + col
            for row in range(lo_row, hi_row + 1)
            for col in range(lo_col, hi_col + 1)
        ]

    def rect_of_cells(self, cell_ids: Iterable[int]) -> Rect:
        """Smallest rectangle covering all ``cell_ids`` (the paper's
        ``re_total`` used by Lemma 4)."""
        rects = [self.cell_rect(cid) for cid in cell_ids]
        if not rects:
            raise ValueError("rect_of_cells needs at least one cell")
        return Rect(
            min(r.min_x for r in rects),
            min(r.min_y for r in rects),
            max(r.max_x for r in rects),
            max(r.max_y for r in rects),
        )
