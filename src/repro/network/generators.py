"""Road-network generators standing in for the paper's DK/CD/HZ networks.

The real networks are OpenStreetMap extracts (Table 6: 61k-668k vertices,
average out-degree 2.4-2.8).  Without network access we synthesize
city-like networks whose properties that matter to the compressors are
matched:

* the *out-degree distribution* determines the edge-number bit width
  ``ceil(log2(o))`` and the branching available to detour instances;
* two-way streets dominate, producing the U-turn structure real map
  matchers must handle;
* coordinates live in a planar box so grid partitioning behaves as it
  does on real city extents.

``perturbed_grid_network`` is the workhorse: a rows x cols street grid
with jittered intersections, a configurable fraction of removed streets
(creating irregular blocks and degree variance), and optional diagonal
shortcuts (raising the maximum out-degree the way real arterials do).
"""

from __future__ import annotations

import random

from .graph import RoadNetwork


def grid_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    *,
    bidirectional: bool = True,
) -> RoadNetwork:
    """A regular rows x cols street grid with ``spacing``-meter blocks."""
    if rows < 2 or cols < 2:
        raise ValueError("grid_network needs at least a 2x2 grid")
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            network.add_vertex(r * cols + c, c * spacing, r * spacing)
    for r in range(rows):
        for c in range(cols):
            vid = r * cols + c
            if c + 1 < cols:
                _add_street(network, vid, vid + 1, bidirectional)
            if r + 1 < rows:
                _add_street(network, vid, vid + cols, bidirectional)
    network.finalize()
    return network


def _add_street(network: RoadNetwork, a: int, b: int, bidirectional: bool) -> None:
    network.add_edge(a, b)
    if bidirectional:
        network.add_edge(b, a)


def perturbed_grid_network(
    rows: int,
    cols: int,
    spacing: float = 100.0,
    *,
    jitter: float = 0.25,
    removal_fraction: float = 0.12,
    diagonal_fraction: float = 0.06,
    seed: int = 7,
) -> RoadNetwork:
    """A city-like network: jittered grid, missing streets, some diagonals.

    ``jitter`` moves intersections by up to ``jitter * spacing`` in each
    axis.  ``removal_fraction`` of interior streets are deleted (both
    directions) while keeping the network strongly connected enough for
    trajectory generation (border streets are never removed).
    ``diagonal_fraction`` of blocks gain one diagonal shortcut.
    """
    if rows < 3 or cols < 3:
        raise ValueError("perturbed_grid_network needs at least a 3x3 grid")
    rng = random.Random(seed)
    network = RoadNetwork()
    for r in range(rows):
        for c in range(cols):
            dx = rng.uniform(-jitter, jitter) * spacing
            dy = rng.uniform(-jitter, jitter) * spacing
            network.add_vertex(r * cols + c, c * spacing + dx, r * spacing + dy)

    streets: list[tuple[int, int, bool]] = []  # (a, b, interior)
    for r in range(rows):
        for c in range(cols):
            vid = r * cols + c
            if c + 1 < cols:
                interior = 0 < r < rows - 1
                streets.append((vid, vid + 1, interior))
            if r + 1 < rows:
                interior = 0 < c < cols - 1
                streets.append((vid, vid + cols, interior))

    for a, b, interior in streets:
        if interior and rng.random() < removal_fraction:
            continue
        _add_street(network, a, b, bidirectional=True)

    for r in range(rows - 1):
        for c in range(cols - 1):
            if rng.random() < diagonal_fraction:
                a = r * cols + c
                b = (r + 1) * cols + (c + 1)
                if rng.random() < 0.5:
                    a, b = r * cols + (c + 1), (r + 1) * cols + c
                _add_street(network, a, b, bidirectional=True)

    _ensure_no_dead_ends(network, rows, cols, rng)
    network.finalize()
    return network


def _ensure_no_dead_ends(
    network: RoadNetwork, rows: int, cols: int, rng: random.Random
) -> None:
    """Reconnect vertices that lost all outgoing streets to a neighbor."""
    for r in range(rows):
        for c in range(cols):
            vid = r * cols + c
            if network.out_degree(vid) > 0:
                continue
            neighbors = []
            if c + 1 < cols:
                neighbors.append(vid + 1)
            if c > 0:
                neighbors.append(vid - 1)
            if r + 1 < rows:
                neighbors.append(vid + cols)
            if r > 0:
                neighbors.append(vid - cols)
            target = rng.choice(neighbors)
            if not network.has_edge(vid, target):
                network.add_edge(vid, target)
            if not network.has_edge(target, vid):
                network.add_edge(target, vid)


def dataset_network(profile_name: str, *, scale: int = 24, seed: int = 7) -> RoadNetwork:
    """A network sized/shaped for one of the paper's dataset profiles.

    Table 6 reports average out-degrees 2.449 (DK), 2.834 (CD), and 2.791
    (HZ).  Denmark's network is sparser (rural roads); the Chinese city
    networks are denser with more diagonals.  ``scale`` is the grid side
    length; benchmarks use modest scales so a full sweep stays laptop-sized.
    """
    name = profile_name.upper()
    if name == "DK":
        return perturbed_grid_network(
            scale,
            scale,
            spacing=220.0,
            removal_fraction=0.22,
            diagonal_fraction=0.02,
            seed=seed,
        )
    if name == "CD":
        return perturbed_grid_network(
            scale,
            scale,
            spacing=120.0,
            removal_fraction=0.06,
            diagonal_fraction=0.10,
            seed=seed + 1,
        )
    if name == "HZ":
        return perturbed_grid_network(
            scale,
            scale,
            spacing=140.0,
            removal_fraction=0.08,
            diagonal_fraction=0.08,
            seed=seed + 2,
        )
    raise ValueError(f"unknown dataset profile {profile_name!r}; use DK, CD, or HZ")
