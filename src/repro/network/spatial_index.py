"""Spatial hash over network edges for nearest-edge queries.

The probabilistic map matcher needs, for every raw GPS point, the set of
nearby edges it may have been recorded from.  A uniform grid bucketing of
edge geometry gives expected O(1) candidate lookups without external
dependencies.
"""

from __future__ import annotations

import math

from .graph import RoadNetwork
from .grid import GridPartition


def project_point_to_segment(
    px: float,
    py: float,
    ax: float,
    ay: float,
    bx: float,
    by: float,
) -> tuple[float, float]:
    """Project ``(px, py)`` onto segment ``a-b``.

    Returns ``(t, distance)`` where ``t`` in [0, 1] is the normalized
    position of the projection along the segment and ``distance`` is the
    Euclidean distance from the point to that position.
    """
    dx, dy = bx - ax, by - ay
    denom = dx * dx + dy * dy
    if denom == 0:
        return 0.0, math.hypot(px - ax, py - ay)
    t = ((px - ax) * dx + (py - ay) * dy) / denom
    t = min(max(t, 0.0), 1.0)
    qx, qy = ax + t * dx, ay + t * dy
    return t, math.hypot(px - qx, py - qy)


INFINITY_RADIUS = float("inf")


class EdgeSpatialIndex:
    """Grid-bucketed index of edges supporting radius queries."""

    def __init__(self, network: RoadNetwork, cells_per_side: int = 64) -> None:
        self.network = network
        self.grid = GridPartition.for_network(network, cells_per_side)
        self._buckets: dict[int, list[tuple[int, int]]] = {}
        for edge in network.edges():
            for cell in self.grid.cells_of_edge(network, edge.start, edge.end):
                self._buckets.setdefault(cell, []).append(edge.key)

    def _cells_near(self, x: float, y: float, radius: float) -> list[int]:
        from .grid import Rect

        return self.grid.cells_of_rect(
            Rect(x - radius, y - radius, x + radius, y + radius)
        )

    def edges_near(
        self, x: float, y: float, radius: float
    ) -> list[tuple[tuple[int, int], float, float]]:
        """Edges within ``radius`` of the point, nearest first.

        Each result is ``(edge_key, t, distance)`` with ``t`` the
        normalized projection position along the edge.
        """
        results: list[tuple[tuple[int, int], float, float]] = []
        seen: set[tuple[int, int]] = set()
        for cell in self._cells_near(x, y, radius):
            for key in self._buckets.get(cell, ()):
                if key in seen:
                    continue
                seen.add(key)
                a = self.network.vertex(key[0])
                b = self.network.vertex(key[1])
                t, distance = project_point_to_segment(x, y, a.x, a.y, b.x, b.y)
                if distance <= radius:
                    results.append((key, t, distance))
        results.sort(key=lambda item: item[2])
        return results

    def nearest_edge(
        self, x: float, y: float, max_radius: float = INFINITY_RADIUS
    ) -> tuple[tuple[int, int], float, float] | None:
        """The closest edge to the point, searched with expanding radius."""
        radius = max(
            min(self.grid.box.width, self.grid.box.height)
            / self.grid.cells_per_side,
            1e-9,
        )
        diagonal = math.hypot(self.grid.box.width, self.grid.box.height)
        limit = min(max_radius, 4 * diagonal + radius)
        while radius <= limit:
            hits = self.edges_near(x, y, radius)
            if hits:
                return hits[0]
            radius *= 2
        hits = self.edges_near(x, y, limit)
        return hits[0] if hits else None
