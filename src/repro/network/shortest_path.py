"""Shortest-path search over road networks.

Used by the probabilistic map matcher (transition probabilities need
network distances between candidate locations) and by the workload
generators (alternative sub-paths for detour instances).  A bounded
Dijkstra keeps map matching tractable: GPS sampling gaps limit how far a
vehicle can travel between points, so searches are cut off at a radius.
"""

from __future__ import annotations

import heapq
from typing import Callable

from .graph import RoadNetwork

INFINITY = float("inf")


def dijkstra(
    network: RoadNetwork,
    source: int,
    *,
    target: int | None = None,
    cutoff: float = INFINITY,
    forbidden_edges: set[tuple[int, int]] | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest path distances (and predecessors).

    Stops early when ``target`` is settled or when the frontier exceeds
    ``cutoff``.  ``forbidden_edges`` are skipped, which the detour
    generator uses to force alternative routes.

    Returns ``(distances, predecessors)`` where ``predecessors[v]`` is the
    vertex preceding ``v`` on its shortest path from ``source``.
    """
    if not network.has_vertex(source):
        raise KeyError(f"unknown source vertex {source}")
    distances: dict[int, float] = {source: 0.0}
    predecessors: dict[int, int] = {}
    settled: set[int] = set()
    heap: list[tuple[float, int]] = [(0.0, source)]
    while heap:
        dist, vertex = heapq.heappop(heap)
        if vertex in settled:
            continue
        settled.add(vertex)
        if vertex == target:
            break
        for edge in network.out_edges(vertex):
            if forbidden_edges and edge.key in forbidden_edges:
                continue
            candidate = dist + edge.length
            if candidate > cutoff:
                continue
            if candidate < distances.get(edge.end, INFINITY):
                distances[edge.end] = candidate
                predecessors[edge.end] = vertex
                heapq.heappush(heap, (candidate, edge.end))
    return distances, predecessors


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    cutoff: float = INFINITY,
    forbidden_edges: set[tuple[int, int]] | None = None,
) -> tuple[list[tuple[int, int]], float] | None:
    """Shortest path from ``source`` to ``target`` as a list of edge keys.

    Returns ``(edges, length)`` or ``None`` when ``target`` is unreachable
    within ``cutoff``.  A trivial ``source == target`` query returns an
    empty path of length zero.
    """
    if source == target:
        return [], 0.0
    distances, predecessors = dijkstra(
        network,
        source,
        target=target,
        cutoff=cutoff,
        forbidden_edges=forbidden_edges,
    )
    if target not in distances:
        return None
    path: list[tuple[int, int]] = []
    vertex = target
    while vertex != source:
        prev = predecessors[vertex]
        path.append((prev, vertex))
        vertex = prev
    path.reverse()
    return path, distances[target]


def network_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    cutoff: float = INFINITY,
) -> float:
    """Network distance between two vertices, ``inf`` when unreachable."""
    result = shortest_path(network, source, target, cutoff=cutoff)
    return result[1] if result is not None else INFINITY


def k_alternative_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    *,
    cutoff: float = INFINITY,
) -> list[tuple[list[tuple[int, int]], float]]:
    """Up to ``k`` loop-free alternative paths, shortest first.

    A simple edge-penalty variant: after each found path, one of its edges
    is forbidden and the search repeated.  Sufficient for generating detour
    instances; not a full k-shortest-paths implementation by design.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    results: list[tuple[list[tuple[int, int]], float]] = []
    seen_paths: set[tuple[tuple[int, int], ...]] = set()
    forbidden_sets: list[set[tuple[int, int]]] = [set()]
    while forbidden_sets and len(results) < k:
        forbidden = forbidden_sets.pop(0)
        found = shortest_path(
            network, source, target, cutoff=cutoff, forbidden_edges=forbidden
        )
        if found is None:
            continue
        path, length = found
        key = tuple(path)
        if key in seen_paths:
            continue
        seen_paths.add(key)
        results.append((path, length))
        for edge in path:
            forbidden_sets.append(forbidden | {edge})
    results.sort(key=lambda item: item[1])
    return results[:k]


def reachable_within(
    network: RoadNetwork, source: int, radius: float
) -> dict[int, float]:
    """All vertices reachable from ``source`` within network distance
    ``radius`` (used to bound candidate transitions in map matching)."""
    distances, _ = dijkstra(network, source, cutoff=radius)
    return {v: d for v, d in distances.items() if d <= radius}


def random_walk_path(
    network: RoadNetwork,
    source: int,
    edge_count: int,
    rng_choice: Callable[[list], object],
) -> list[tuple[int, int]]:
    """A connected path of ``edge_count`` edges starting at ``source``.

    ``rng_choice`` is ``random.Random.choice``-compatible.  Immediate
    U-turns are avoided when another out-edge exists; the walk stops early
    at dead ends.
    """
    if edge_count < 1:
        raise ValueError(f"edge_count must be >= 1, got {edge_count}")
    path: list[tuple[int, int]] = []
    current = source
    previous: int | None = None
    for _ in range(edge_count):
        candidates = list(network.out_edges(current))
        if not candidates:
            break
        non_backtracking = [e for e in candidates if e.end != previous]
        pool = non_backtracking or candidates
        edge = rng_choice(pool)
        path.append(edge.key)
        previous = current
        current = edge.end
    return path
