"""Shortest-path search over road networks.

Used by the probabilistic map matcher (transition probabilities need
network distances between candidate locations) and by the workload
generators (alternative sub-paths for detour instances).  A bounded
Dijkstra keeps map matching tractable: GPS sampling gaps limit how far a
vehicle can travel between points, so searches are cut off at a radius.
"""

from __future__ import annotations

import heapq
from typing import Callable

from ..config import env_int
from .graph import RoadNetwork

INFINITY = float("inf")


def dijkstra(
    network: RoadNetwork,
    source: int,
    *,
    target: int | None = None,
    cutoff: float = INFINITY,
    forbidden_edges: set[tuple[int, int]] | None = None,
) -> tuple[dict[int, float], dict[int, int]]:
    """Single-source shortest path distances (and predecessors).

    Stops early when ``target`` is settled or when the frontier exceeds
    ``cutoff``.  ``forbidden_edges`` are skipped, which the detour
    generator uses to force alternative routes.

    Returns ``(distances, predecessors)`` where ``predecessors[v]`` is the
    vertex preceding ``v`` on its shortest path from ``source``.

    Stale heap entries are detected by comparing the popped distance with
    the best known one (entries for a vertex are pushed with strictly
    decreasing distances, so a popped entry is current iff it matches) —
    no separate settled set.  The ``forbidden_edges`` membership test is
    hoisted out of the relaxation loop: the common no-forbidden case runs
    a branch-free inner loop.
    """
    if not network.has_vertex(source):
        raise KeyError(f"unknown source vertex {source}")
    distances: dict[int, float] = {source: 0.0}
    predecessors: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(0.0, source)]
    pop = heapq.heappop
    push = heapq.heappush
    out_edges = network.out_edges
    while heap:
        dist, vertex = pop(heap)
        if dist > distances[vertex]:
            continue  # stale entry; vertex already settled closer
        if vertex == target:
            break
        if forbidden_edges:
            edges = [
                edge
                for edge in out_edges(vertex)
                if edge.key not in forbidden_edges
            ]
        else:
            edges = out_edges(vertex)
        for edge in edges:
            candidate = dist + edge.length
            if candidate > cutoff:
                continue
            end = edge.end
            if candidate < distances.get(end, INFINITY):
                distances[end] = candidate
                predecessors[end] = vertex
                push(heap, (candidate, end))
    return distances, predecessors


class SharedFrontier:
    """A lazily-settled bounded Dijkstra from one source, shared across
    targets.

    The map matcher scores transitions from every previous-step candidate
    to every current-step candidate; all pairs with the same source
    vertex and cutoff share one search.  :meth:`path_to` settles vertices
    only as far as each requested target, keeping heap state between
    calls, so the first target pays the search and later ones reuse it.

    Results are independent of the query order: the settle sequence is a
    fixed function of (source, cutoff), so distances and predecessors for
    any settled target equal those of a fresh early-stopping
    :func:`dijkstra` with the same cutoff — byte-identical matchings.
    """

    __slots__ = ("network", "source", "cutoff", "_distances",
                 "_predecessors", "_settled", "_heap")

    def __init__(
        self, network: RoadNetwork, source: int, cutoff: float = INFINITY
    ) -> None:
        if not network.has_vertex(source):
            raise KeyError(f"unknown source vertex {source}")
        self.network = network
        self.source = source
        self.cutoff = cutoff
        self._distances: dict[int, float] = {source: 0.0}
        self._predecessors: dict[int, int] = {}
        self._settled: set[int] = set()
        self._heap: list[tuple[float, int]] = [(0.0, source)]

    def _settle_until(self, target: int) -> bool:
        """Pop until ``target`` settles; ``False`` when it is unreachable
        within the cutoff.  Unlike the early-stopping :func:`dijkstra`,
        every settled vertex is fully relaxed (which cannot change its own
        distance or predecessor) so later targets keep exact semantics."""
        settled = self._settled
        if target in settled:
            return True
        heap = self._heap
        distances = self._distances
        predecessors = self._predecessors
        cutoff = self.cutoff
        pop = heapq.heappop
        push = heapq.heappush
        out_edges = self.network.out_edges
        while heap:
            dist, vertex = pop(heap)
            if vertex in settled:
                continue
            settled.add(vertex)
            for edge in out_edges(vertex):
                candidate = dist + edge.length
                if candidate > cutoff:
                    continue
                end = edge.end
                if candidate < distances.get(end, INFINITY):
                    distances[end] = candidate
                    predecessors[end] = vertex
                    push(heap, (candidate, end))
            if vertex == target:
                return True
        return False

    def distance_to(self, target: int) -> float:
        """Shortest distance to ``target``; ``inf`` beyond the cutoff."""
        if not self._settle_until(target):
            return INFINITY
        return self._distances[target]

    def path_to(self, target: int) -> tuple[list[tuple[int, int]], float] | None:
        """Shortest path to ``target`` as edge keys, or ``None``.

        Matches :func:`shortest_path`: a ``source == target`` query is an
        empty path of length zero.
        """
        if target == self.source:
            return [], 0.0
        if not self._settle_until(target):
            return None
        predecessors = self._predecessors
        path: list[tuple[int, int]] = []
        vertex = target
        source = self.source
        while vertex != source:
            previous = predecessors[vertex]
            path.append((previous, vertex))
            vertex = previous
        path.reverse()
        return path, self._distances[target]


_DEFAULT_FRONTIER_CACHE = 512


def resolve_frontier_cache_size(explicit: int | None = None) -> int:
    """Frontier-cache capacity: explicit argument >
    ``REPRO_FRONTIER_CACHE`` > 512 (a frontier is required state — the
    floor is 1, not 0)."""
    if explicit is not None:
        return int(explicit)
    return env_int(
        "REPRO_FRONTIER_CACHE", _DEFAULT_FRONTIER_CACHE, minimum=1
    )


class FrontierCache:
    """LRU cache of :class:`SharedFrontier` searches keyed by
    ``(source, cutoff)``.

    One matcher-owned cache serves every transition of a Viterbi step
    (same cutoff, few distinct sources) and stays warm across steps and
    trips whenever sources and cutoffs recur — the streaming ingestion
    matcher shares the batch matcher's cache by construction, since
    :class:`~repro.stream.ingest.StreamingMapMatcher` wraps the same
    :class:`~repro.mapmatching.hmm.ProbabilisticMapMatcher` instance.
    """

    __slots__ = ("network", "maxsize", "hits", "misses", "_entries")

    def __init__(
        self, network: RoadNetwork, maxsize: int | None = None
    ) -> None:
        maxsize = resolve_frontier_cache_size(maxsize)
        if maxsize < 1:
            raise ValueError(f"maxsize must be >= 1, got {maxsize}")
        self.network = network
        self.maxsize = maxsize
        self.hits = 0
        self.misses = 0
        self._entries: dict[tuple[int, float], SharedFrontier] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, source: int, cutoff: float) -> SharedFrontier:
        """The (possibly cached) shared frontier for ``(source, cutoff)``."""
        key = (source, cutoff)
        entries = self._entries
        frontier = entries.get(key)
        if frontier is not None:
            self.hits += 1
            # refresh recency (dicts preserve insertion order)
            del entries[key]
            entries[key] = frontier
            return frontier
        self.misses += 1
        frontier = SharedFrontier(self.network, source, cutoff)
        if len(entries) >= self.maxsize:
            entries.pop(next(iter(entries)))
        entries[key] = frontier
        return frontier

    def clear(self) -> None:
        self._entries.clear()


def shortest_path(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    cutoff: float = INFINITY,
    forbidden_edges: set[tuple[int, int]] | None = None,
) -> tuple[list[tuple[int, int]], float] | None:
    """Shortest path from ``source`` to ``target`` as a list of edge keys.

    Returns ``(edges, length)`` or ``None`` when ``target`` is unreachable
    within ``cutoff``.  A trivial ``source == target`` query returns an
    empty path of length zero.
    """
    if source == target:
        return [], 0.0
    distances, predecessors = dijkstra(
        network,
        source,
        target=target,
        cutoff=cutoff,
        forbidden_edges=forbidden_edges,
    )
    if target not in distances:
        return None
    path: list[tuple[int, int]] = []
    vertex = target
    while vertex != source:
        prev = predecessors[vertex]
        path.append((prev, vertex))
        vertex = prev
    path.reverse()
    return path, distances[target]


def network_distance(
    network: RoadNetwork,
    source: int,
    target: int,
    *,
    cutoff: float = INFINITY,
) -> float:
    """Network distance between two vertices, ``inf`` when unreachable."""
    result = shortest_path(network, source, target, cutoff=cutoff)
    return result[1] if result is not None else INFINITY


def k_alternative_paths(
    network: RoadNetwork,
    source: int,
    target: int,
    k: int,
    *,
    cutoff: float = INFINITY,
) -> list[tuple[list[tuple[int, int]], float]]:
    """Up to ``k`` loop-free alternative paths, shortest first.

    A simple edge-penalty variant: after each found path, one of its edges
    is forbidden and the search repeated.  Sufficient for generating detour
    instances; not a full k-shortest-paths implementation by design.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    results: list[tuple[list[tuple[int, int]], float]] = []
    seen_paths: set[tuple[tuple[int, int], ...]] = set()
    forbidden_sets: list[set[tuple[int, int]]] = [set()]
    while forbidden_sets and len(results) < k:
        forbidden = forbidden_sets.pop(0)
        found = shortest_path(
            network, source, target, cutoff=cutoff, forbidden_edges=forbidden
        )
        if found is None:
            continue
        path, length = found
        key = tuple(path)
        if key in seen_paths:
            continue
        seen_paths.add(key)
        results.append((path, length))
        for edge in path:
            forbidden_sets.append(forbidden | {edge})
    results.sort(key=lambda item: item[1])
    return results[:k]


def reachable_within(
    network: RoadNetwork, source: int, radius: float
) -> dict[int, float]:
    """All vertices reachable from ``source`` within network distance
    ``radius`` (used to bound candidate transitions in map matching)."""
    distances, _ = dijkstra(network, source, cutoff=radius)
    return {v: d for v, d in distances.items() if d <= radius}


def random_walk_path(
    network: RoadNetwork,
    source: int,
    edge_count: int,
    rng_choice: Callable[[list], object],
) -> list[tuple[int, int]]:
    """A connected path of ``edge_count`` edges starting at ``source``.

    ``rng_choice`` is ``random.Random.choice``-compatible.  Immediate
    U-turns are avoided when another out-edge exists; the walk stops early
    at dead ends.
    """
    if edge_count < 1:
        raise ValueError(f"edge_count must be >= 1, got {edge_count}")
    path: list[tuple[int, int]] = []
    current = source
    previous: int | None = None
    for _ in range(edge_count):
        candidates = list(network.out_edges(current))
        if not candidates:
            break
        non_backtracking = [e for e in candidates if e.end != previous]
        pool = non_backtracking or candidates
        edge = rng_choice(pool)
        path.append(edge.key)
        previous = current
        current = edge.end
    return path
