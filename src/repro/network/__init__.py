"""Road-network substrate: graph model, grid regions, search, generators."""

from .graph import BoundingBox, Edge, RoadNetwork, Vertex
from .grid import GridPartition, Rect
from .generators import dataset_network, grid_network, perturbed_grid_network
from .shortest_path import (
    dijkstra,
    k_alternative_paths,
    network_distance,
    random_walk_path,
    reachable_within,
    shortest_path,
)
from .spatial_index import EdgeSpatialIndex, project_point_to_segment

__all__ = [
    "BoundingBox",
    "Edge",
    "RoadNetwork",
    "Vertex",
    "GridPartition",
    "Rect",
    "dataset_network",
    "grid_network",
    "perturbed_grid_network",
    "dijkstra",
    "k_alternative_paths",
    "network_distance",
    "random_walk_path",
    "reachable_within",
    "shortest_path",
    "EdgeSpatialIndex",
    "project_point_to_segment",
]
