"""Road network model (Definitions 1 and 6 of the paper).

A road network is a directed graph ``G = (V, E)`` whose vertices carry 2D
coordinates.  The compression schemes rely on one structural convention:
the *outgoing edge number* of an edge ``(vs -> ve)`` is the 1-based index
of the edge among the ordered out-edges of ``vs`` (Definition 6).  The
ordering must be deterministic so that encoder and decoder agree; we order
out-edges by destination vertex id.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, NamedTuple


class Vertex(NamedTuple):
    """A road-network vertex: an intersection or end point with 2D location."""

    id: int
    x: float
    y: float


class Edge(NamedTuple):
    """A directed road segment from ``start`` to ``end`` with a length."""

    start: int
    end: int
    length: float

    @property
    def key(self) -> tuple[int, int]:
        """The ``(start, end)`` pair identifying this edge."""
        return (self.start, self.end)


@dataclass(frozen=True)
class BoundingBox:
    """Axis-aligned bounding box of a set of vertices."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    @property
    def width(self) -> float:
        return self.max_x - self.min_x

    @property
    def height(self) -> float:
        return self.max_y - self.min_y

    def contains(self, x: float, y: float) -> bool:
        return self.min_x <= x <= self.max_x and self.min_y <= y <= self.max_y

    def expanded(self, margin: float) -> "BoundingBox":
        return BoundingBox(
            self.min_x - margin,
            self.min_y - margin,
            self.max_x + margin,
            self.max_y + margin,
        )


class RoadNetwork:
    """A directed road network with deterministic outgoing-edge numbering.

    Build the network with :meth:`add_vertex` / :meth:`add_edge`, then call
    :meth:`finalize` (done lazily by accessors) to freeze the out-edge
    ordering used by the edge-number codecs.
    """

    def __init__(self) -> None:
        self._vertices: dict[int, Vertex] = {}
        self._out: dict[int, list[Edge]] = {}
        self._in: dict[int, list[Edge]] = {}
        self._edges: dict[tuple[int, int], Edge] = {}
        self._numbers: dict[tuple[int, int], int] = {}
        self._finalized = False
        self._max_out_degree = 0

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex_id: int, x: float, y: float) -> Vertex:
        """Register a vertex; re-adding with identical coordinates is a no-op."""
        existing = self._vertices.get(vertex_id)
        if existing is not None:
            if existing.x != x or existing.y != y:
                raise ValueError(
                    f"vertex {vertex_id} already exists at ({existing.x}, "
                    f"{existing.y}); refusing to move it to ({x}, {y})"
                )
            return existing
        vertex = Vertex(vertex_id, x, y)
        self._vertices[vertex_id] = vertex
        self._out.setdefault(vertex_id, [])
        self._in.setdefault(vertex_id, [])
        return vertex

    def add_edge(self, start: int, end: int, length: float | None = None) -> Edge:
        """Add the directed edge ``(start -> end)``.

        ``length`` defaults to the Euclidean distance between the endpoint
        coordinates.  Both endpoints must already be vertices.
        """
        if start not in self._vertices:
            raise KeyError(f"unknown start vertex {start}")
        if end not in self._vertices:
            raise KeyError(f"unknown end vertex {end}")
        if start == end:
            raise ValueError(f"self-loop edges are not allowed (vertex {start})")
        key = (start, end)
        if key in self._edges:
            raise ValueError(f"edge {key} already exists")
        if length is None:
            length = self.euclidean(start, end)
        if length <= 0:
            raise ValueError(f"edge {key} must have positive length, got {length}")
        edge = Edge(start, end, float(length))
        self._edges[key] = edge
        self._out[start].append(edge)
        self._in[end].append(edge)
        self._finalized = False
        return edge

    def finalize(self) -> None:
        """Freeze out-edge ordering and the derived edge numbering."""
        if self._finalized:
            return
        self._numbers.clear()
        max_degree = 0
        for vertex_id, edges in self._out.items():
            edges.sort(key=lambda e: e.end)
            max_degree = max(max_degree, len(edges))
            for index, edge in enumerate(edges):
                self._numbers[edge.key] = index + 1
        for edges in self._in.values():
            edges.sort(key=lambda e: e.start)
        self._max_out_degree = max_degree
        self._finalized = True

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def vertex(self, vertex_id: int) -> Vertex:
        return self._vertices[vertex_id]

    def has_vertex(self, vertex_id: int) -> bool:
        return vertex_id in self._vertices

    def edge(self, start: int, end: int) -> Edge:
        return self._edges[(start, end)]

    def has_edge(self, start: int, end: int) -> bool:
        return (start, end) in self._edges

    def edge_length(self, start: int, end: int) -> float:
        return self._edges[(start, end)].length

    def out_edges(self, vertex_id: int) -> tuple[Edge, ...]:
        """Out-edges of ``vertex_id`` in frozen (numbering) order."""
        self.finalize()
        return tuple(self._out[vertex_id])

    def in_edges(self, vertex_id: int) -> tuple[Edge, ...]:
        self.finalize()
        return tuple(self._in[vertex_id])

    def out_degree(self, vertex_id: int) -> int:
        return len(self._out[vertex_id])

    def out_number(self, start: int, end: int) -> int:
        """The 1-based outgoing edge number of ``(start -> end)`` (Def. 6)."""
        self.finalize()
        try:
            return self._numbers[(start, end)]
        except KeyError:
            raise KeyError(f"edge ({start}, {end}) is not in the network") from None

    def edge_by_number(self, start: int, number: int) -> Edge:
        """Inverse of :meth:`out_number`."""
        self.finalize()
        edges = self._out[start]
        if not 1 <= number <= len(edges):
            raise KeyError(
                f"vertex {start} has {len(edges)} out-edges; number {number} invalid"
            )
        return edges[number - 1]

    @property
    def max_out_degree(self) -> int:
        """The paper's ``o``: maximal out-degree over all vertices."""
        self.finalize()
        return self._max_out_degree

    # ------------------------------------------------------------------
    # iteration / statistics
    # ------------------------------------------------------------------
    def vertices(self) -> Iterator[Vertex]:
        return iter(self._vertices.values())

    def vertex_ids(self) -> Iterator[int]:
        return iter(self._vertices.keys())

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges.values())

    @property
    def vertex_count(self) -> int:
        return len(self._vertices)

    @property
    def edge_count(self) -> int:
        return len(self._edges)

    def average_out_degree(self) -> float:
        if not self._vertices:
            return 0.0
        return len(self._edges) / len(self._vertices)

    def euclidean(self, a: int, b: int) -> float:
        """Euclidean distance between two vertices' coordinates."""
        va, vb = self._vertices[a], self._vertices[b]
        return math.hypot(va.x - vb.x, va.y - vb.y)

    def bounding_box(self, margin: float = 0.0) -> BoundingBox:
        if not self._vertices:
            raise ValueError("bounding box of an empty network is undefined")
        xs = [v.x for v in self._vertices.values()]
        ys = [v.y for v in self._vertices.values()]
        box = BoundingBox(min(xs), min(ys), max(xs), max(ys))
        return box.expanded(margin) if margin else box

    def validate_path(self, edges: Iterable[tuple[int, int]]) -> bool:
        """True when ``edges`` is a connected path of existing edges (Def. 4)."""
        previous_end: int | None = None
        seen_any = False
        for start, end in edges:
            if (start, end) not in self._edges:
                return False
            if previous_end is not None and start != previous_end:
                return False
            previous_end = end
            seen_any = True
        return seen_any

    def path_length(self, edges: Iterable[tuple[int, int]]) -> float:
        """Total network length of a path given as ``(start, end)`` pairs."""
        return sum(self._edges[key].length for key in edges)
