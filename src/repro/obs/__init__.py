"""`repro.obs` — dependency-free telemetry: metrics, traces, logs.

Three coordinated primitives, threaded through every layer of the tree:

* **Metrics** (:mod:`repro.obs.metrics`): a process-wide
  :class:`MetricsRegistry` of thread-safe counters, gauges, and
  log-bucketed histograms, exported as JSON or Prometheus text.
  ``snapshot_delta`` subtracts two snapshots so a bench can report only
  its own run.

* **Traces** (:mod:`repro.obs.trace`): per-request span trees with wall
  and CPU time.  ``trace_span`` is free when no trace is open;
  ``worker_trace`` + ``attach_child`` carry spans across the
  ``ShardWorkerPool`` process boundary and quantify IPC overhead.

* **Logs** (:mod:`repro.obs.log`): one-line JSON events with request-id
  correlation, disabled by default, enabled via ``configure()`` /
  ``--log-json`` / ``REPRO_LOG_JSON``.

See ``docs/observability.md`` for naming conventions, trace anatomy,
and scrape examples.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
    parse_prometheus,
    render_prometheus,
    snapshot_delta,
)
from .trace import (
    Span,
    attach_child,
    current_span,
    ipc_breakdown,
    is_tracing,
    render_tree,
    start_trace,
    trace_span,
    worker_trace,
)
from .log import (
    StructuredLogger,
    bind_request_id,
    configure as configure_logging,
    configured as logging_configured,
    current_request_id,
    get_logger,
    next_request_id,
    unbind_request_id,
)

__all__ = [
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "counter",
    "gauge",
    "get_registry",
    "histogram",
    "parse_prometheus",
    "render_prometheus",
    "snapshot_delta",
    # traces
    "Span",
    "attach_child",
    "current_span",
    "ipc_breakdown",
    "is_tracing",
    "render_tree",
    "start_trace",
    "trace_span",
    "worker_trace",
    # logs
    "StructuredLogger",
    "bind_request_id",
    "configure_logging",
    "logging_configured",
    "current_request_id",
    "get_logger",
    "next_request_id",
    "unbind_request_id",
]
