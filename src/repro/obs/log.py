"""Structured JSON logging with request correlation.

Before this module there was no ``logging`` call anywhere in
``src/repro`` — lifecycle events (worker respawns, breaker trips,
shard quarantines, compaction merges, GC drops) happened silently or
as ad-hoc counters.  This is the one logging surface the tree uses:

* :func:`get_logger` returns a named :class:`StructuredLogger` whose
  ``debug/info/warning/error`` methods take an **event name** plus
  keyword fields and emit exactly one JSON object per line::

      {"ts": 1754550000.123, "level": "warning", "logger":
       "repro.serve.service", "event": "shard.quarantined",
       "request_id": "req-000017", "path": "...", "error": "..."}

* logging is **off by default** — a disabled logger call is one
  attribute check, so instrumented hot paths cost nothing in normal
  library use.  :func:`configure` turns it on (a path, a stream, or
  ``"-"`` for stderr); the ``REPRO_LOG_JSON`` environment variable does
  the same for processes you cannot pass flags to (CLI ``--log-json``
  sets it so worker subprocesses inherit the sink).

* the **request id** rides a :mod:`contextvars` context variable: the
  serving tier binds one per request (:func:`bind_request_id`), and
  every event logged below it — breaker trips, supervisor respawns —
  carries it automatically, which is what makes a chaos run's log
  greppable per request.

Events are snake.dotted (``subsystem.noun.verb``); field values must be
JSON-serializable (anything else is ``repr()``-ed rather than raising —
a log line must never take down the request it describes).
"""

from __future__ import annotations

import contextvars
import io
import itertools
import json
import sys
import threading
import time

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_request_id: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_request_id", default=None
)

_request_counter = itertools.count(1)


def next_request_id() -> str:
    """A process-unique request id (``req-000001`` style)."""
    return f"req-{next(_request_counter):06d}"


def bind_request_id(request_id: str | None = None):
    """Set the request id for the current context; returns a token for
    :func:`unbind_request_id`.  ``None`` generates a fresh id."""
    if request_id is None:
        request_id = next_request_id()
    return _request_id.set(request_id)


def unbind_request_id(token) -> None:
    _request_id.reset(token)


def current_request_id() -> str | None:
    return _request_id.get()


class _LogState:
    """The process-wide sink; swapped atomically by configure()."""

    def __init__(self) -> None:
        self.enabled = False
        self.level = _LEVELS["info"]
        self.stream: io.TextIOBase | None = None
        self.owns_stream = False
        self.lock = threading.Lock()


_state = _LogState()


def configure(
    target: str | io.TextIOBase | None = "-", *, level: str = "info"
) -> None:
    """Enable JSON logging to ``target``.

    ``target`` is a file path (appended, line-buffered), an open text
    stream, ``"-"`` for stderr, or ``None`` to disable again.  Safe to
    call repeatedly; a previously opened file sink is closed.
    """
    if level not in _LEVELS:
        raise ValueError(f"unknown log level {level!r} (use {sorted(_LEVELS)})")
    with _state.lock:
        if _state.owns_stream and _state.stream is not None:
            _state.stream.close()
        _state.owns_stream = False
        if target is None:
            _state.enabled = False
            _state.stream = None
            return
        if target == "-":
            _state.stream = sys.stderr
        elif isinstance(target, str):
            _state.stream = open(target, "a", encoding="utf-8", buffering=1)
            _state.owns_stream = True
        else:
            _state.stream = target
        _state.level = _LEVELS[level]
        _state.enabled = True


def configured() -> bool:
    return _state.enabled


def configure_from_env() -> bool:
    """Honor ``REPRO_LOG_JSON`` (a path, or ``-``); returns whether
    logging ended up enabled.  Called once at import so spawned worker
    processes inherit the operator's sink."""
    from ..config import env_choice, env_raw

    target = env_raw("REPRO_LOG_JSON")
    if not target:
        return _state.enabled
    configure(target, level=env_choice("REPRO_LOG_LEVEL", "info", _LEVELS))
    return True


def _json_safe(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _json_safe(item) for key, item in value.items()}
    return repr(value)


class StructuredLogger:
    """Named emitter of one-line JSON events."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def log(self, _level: str, _event: str, **fields) -> None:
        state = _state
        if not state.enabled or _LEVELS[_level] < state.level:
            return
        record = {
            "ts": round(time.time(), 6),
            "level": _level,
            "logger": self.name,
            "event": _event,
        }
        request_id = _request_id.get()
        if request_id is not None:
            record["request_id"] = request_id
        for key, value in fields.items():
            # reserved record keys win; a field named e.g. "level" must
            # not clobber the severity
            record.setdefault(key, _json_safe(value))
        line = json.dumps(record, separators=(",", ":"))
        with state.lock:
            stream = state.stream
            if stream is None:
                return
            try:
                stream.write(line + "\n")
            except ValueError:
                # the sink was closed underneath us (interpreter
                # shutdown, test teardown); drop the line, never raise
                return

    def debug(self, _event: str, **fields) -> None:
        self.log("debug", _event, **fields)

    def info(self, _event: str, **fields) -> None:
        self.log("info", _event, **fields)

    def warning(self, _event: str, **fields) -> None:
        self.log("warning", _event, **fields)

    def error(self, _event: str, **fields) -> None:
        self.log("error", _event, **fields)


_loggers: dict[str, StructuredLogger] = {}
_loggers_lock = threading.Lock()


def get_logger(name: str) -> StructuredLogger:
    """The logger for ``name`` (module path by convention); cached."""
    logger = _loggers.get(name)
    if logger is None:
        with _loggers_lock:
            logger = _loggers.setdefault(name, StructuredLogger(name))
    return logger


configure_from_env()
