"""A dependency-free metrics registry: counters, gauges, histograms.

Every subsystem used to keep its own counters — ``ServiceStats.bump``
in :mod:`repro.serve`, ``sidecar_hits/misses/stale`` attributes on
:class:`~repro.stream.live.LiveArchive`, hit/miss ints locked inside
:class:`~repro.core.decoder.DecodeSpanCache` — each with its own
snapshot idiom and none of them exportable.  This module is the one
place they all land:

* :class:`Counter` — monotonically increasing; ``inc()`` is a single
  lock-protected add, safe under free threading.
* :class:`Gauge` — a point-in-time value; ``set()``/``inc()``/``dec()``.
* :class:`Histogram` — log-bucketed observations (bucket *k* holds
  values in ``(growth**(k-1), growth**k]``), tracking count/sum/min/max
  and answering quantile queries to within one bucket's relative error.
* :class:`MetricsRegistry` — a thread-safe instrument table keyed by
  ``(name, labels)``.  ``instrument(...)`` calls are idempotent: two
  subsystems asking for the same counter share it, which is what makes
  per-instance shims (:class:`~repro.serve.service.ServiceStats` et al.)
  cheap — they hold a baseline and report the delta.

Export comes in two shapes: :meth:`MetricsRegistry.snapshot` (plain
dicts, JSON-ready; :func:`snapshot_delta` subtracts two of them) and
:meth:`MetricsRegistry.to_prometheus` (the text exposition format, so
a scrape endpoint or ``--metrics-out`` file is one call away).

Components with hot private counters (the decode-span cache) register
as *collectors* instead of paying a registry lock per event: the
registry holds a weak reference and asks the object for its metrics at
snapshot time only.

Instrument naming follows the Prometheus conventions documented in
``docs/observability.md``: ``<subsystem>_<what>_<unit>``, counters
suffixed ``_total``, label values for enumerable dimensions.
"""

from __future__ import annotations

import json
import math
import threading
import weakref

Labels = tuple[tuple[str, str], ...]


def _labels_key(labels: dict | None) -> Labels:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _labels_text(labels: Labels) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{value}"' for key, value in labels)
    return "{" + body + "}"


class Instrument:
    """Common identity of every registered metric."""

    kind = "instrument"

    def __init__(self, name: str, labels: Labels, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help
        self._lock = threading.Lock()

    @property
    def full_name(self) -> str:
        return self.name + _labels_text(self.labels)


class Counter(Instrument):
    """Monotonic event count.  ``inc`` never accepts a negative amount."""

    kind = "counter"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def export(self) -> dict:
        return {"value": self.value}


class Gauge(Instrument):
    """A value that goes both ways: in-flight requests, open segments."""

    kind = "gauge"

    def __init__(self, name: str, labels: Labels = (), help: str = "") -> None:
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    def export(self) -> dict:
        return {"value": self.value}


class Histogram(Instrument):
    """Log-bucketed distribution of positive-ish observations.

    Bucket *k* (an integer, possibly negative) holds observations in
    ``(growth**(k-1), growth**k]``; zero and negatives land in a
    dedicated underflow bucket.  With the default ``growth`` of 2 a
    quantile estimate is within 2x of the true value — plenty to tell a
    4 ms p50 from a 400 ms p99, at O(log(range)) memory with no bound
    configuration at all (latencies from nanoseconds to hours fit).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: Labels = (),
        help: str = "",
        *,
        growth: float = 2.0,
    ) -> None:
        if growth <= 1.0:
            raise ValueError(f"growth must be > 1, got {growth}")
        super().__init__(name, labels, help)
        self.growth = growth
        self._log_growth = math.log(growth)
        self._buckets: dict[int, int] = {}
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def _bucket_index(self, value: float) -> int:
        if value <= 0:
            return -(2**31)  # underflow bucket
        return math.ceil(math.log(value) / self._log_growth - 1e-12)

    def observe(self, value: float) -> None:
        index = self._bucket_index(value)
        with self._lock:
            self._buckets[index] = self._buckets.get(index, 0) + 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def quantile(self, fraction: float) -> float:
        """Upper bound of the bucket holding the ``fraction`` quantile.

        Exact to within one bucket (a factor of ``growth``); returns
        0.0 for an empty histogram.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            if self._count == 0:
                return 0.0
            target = fraction * self._count
            seen = 0
            for index in sorted(self._buckets):
                seen += self._buckets[index]
                if seen >= target:
                    if index == -(2**31):
                        return 0.0
                    # never report past the true maximum
                    return min(self.growth**index, self._max)
            return self._max

    def export(self) -> dict:
        with self._lock:
            buckets = {
                ("0" if index == -(2**31) else repr(self.growth**index)):
                    count
                for index, count in sorted(self._buckets.items())
            }
            return {
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": buckets,
            }


class MetricsRegistry:
    """Thread-safe table of instruments plus weak-ref collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: dict[tuple[str, Labels], Instrument] = {}
        self._collectors: list = []  # weakrefs to collect_metrics owners

    # ------------------------------------------------------------------
    # instrument factories (idempotent per (name, labels))
    # ------------------------------------------------------------------
    def _instrument(self, cls, name, labels, help, **kwargs) -> Instrument:
        key = (name, _labels_key(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            instrument = cls(name, key[1], help, **kwargs)
            self._instruments[key] = instrument
            return instrument

    def counter(
        self, name: str, *, labels: dict | None = None, help: str = ""
    ) -> Counter:
        return self._instrument(Counter, name, labels, help)

    def gauge(
        self, name: str, *, labels: dict | None = None, help: str = ""
    ) -> Gauge:
        return self._instrument(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        *,
        labels: dict | None = None,
        help: str = "",
        growth: float = 2.0,
    ) -> Histogram:
        return self._instrument(Histogram, name, labels, help, growth=growth)

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------
    def register_collector(self, owner) -> None:
        """Track ``owner`` weakly; at snapshot time its
        ``collect_metrics()`` must yield ``(kind, name, labels, export)``
        tuples (``kind`` in counter/gauge, ``export`` the instrument
        export dict).  Lets hot-path components keep private counters
        and still show up in every scrape."""
        with self._lock:
            self._collectors.append(weakref.ref(owner))

    def _collected(self) -> list[tuple[str, str, Labels, dict]]:
        with self._lock:
            refs = list(self._collectors)
        alive, rows = [], []
        for ref in refs:
            owner = ref()
            if owner is None:
                continue
            alive.append(ref)
            for kind, name, labels, export in owner.collect_metrics():
                rows.append((kind, name, _labels_key(labels), export))
        with self._lock:
            self._collectors = alive
        return rows

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Every instrument (and collector metric) as plain JSON-able
        dicts, keyed by ``name{label="value",...}``."""
        with self._lock:
            instruments = list(self._instruments.values())
        metrics: dict[str, dict] = {}
        for instrument in instruments:
            metrics[instrument.full_name] = {
                "kind": instrument.kind,
                **instrument.export(),
            }
        for kind, name, labels, export in self._collected():
            full = name + _labels_text(labels)
            entry = {"kind": kind, **export}
            previous = metrics.get(full)
            if previous is not None and previous["kind"] == kind == "counter":
                # several live collector owners may report the same
                # metric (e.g. every decode cache in the process):
                # a counter scrape is their sum
                entry["value"] += previous["value"]
            metrics[full] = entry
        return {"format": "repro-metrics", "version": 1, "metrics": metrics}

    def to_prometheus(self) -> str:
        """The text exposition format (``# TYPE`` lines included)."""
        return render_prometheus(self.snapshot())

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)


def render_prometheus(snapshot: dict) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict as Prometheus text."""
    lines: list[str] = []
    typed: set[str] = set()
    for full_name, entry in sorted(snapshot.get("metrics", {}).items()):
        bare = full_name.split("{", 1)[0]
        kind = entry.get("kind", "gauge")
        if bare not in typed:
            typed.add(bare)
            lines.append(
                f"# TYPE {bare} "
                f"{'counter' if kind == 'counter' else 'gauge' if kind == 'gauge' else 'histogram'}"
            )
        if kind == "histogram":
            label_text = ""
            if "{" in full_name:
                label_text = full_name[full_name.index("{"):]
            inner = label_text[1:-1] if label_text else ""
            cumulative = 0
            for upper, count in entry.get("buckets", {}).items():
                cumulative += count
                le = f'le="{upper}"'
                labels = f"{{{inner + ',' if inner else ''}{le}}}"
                lines.append(f"{bare}_bucket{labels} {cumulative}")
            le = 'le="+Inf"'
            labels = f"{{{inner + ',' if inner else ''}{le}}}"
            lines.append(f"{bare}_bucket{labels} {entry.get('count', 0)}")
            lines.append(f"{bare}_sum{label_text} {_num(entry.get('sum', 0.0))}")
            lines.append(f"{bare}_count{label_text} {entry.get('count', 0)}")
        else:
            lines.append(f"{full_name} {_num(entry.get('value', 0.0))}")
    return "\n".join(lines) + ("\n" if lines else "")


def _num(value: float) -> str:
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def parse_prometheus(text: str) -> dict[str, float]:
    """Inverse of :func:`render_prometheus` for plain samples (tests and
    ``repro obs dump``): ``{name{labels}: value}``, comments skipped."""
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        name, _, value = line.rpartition(" ")
        samples[name] = float(value)
    return samples


def snapshot_delta(current: dict, previous: dict) -> dict:
    """What changed between two :meth:`MetricsRegistry.snapshot` dicts.

    Counters and histograms subtract (new instruments keep their full
    value); gauges always report the current value.  The result is a
    valid snapshot dict itself, so it renders to Prometheus text or
    JSON like any other — this is how a bench reports only its own run
    even on a registry shared with earlier work in the process.
    """
    before = previous.get("metrics", {})
    metrics: dict[str, dict] = {}
    for full_name, entry in current.get("metrics", {}).items():
        old = before.get(full_name)
        kind = entry.get("kind")
        if old is None or old.get("kind") != kind or kind == "gauge":
            metrics[full_name] = dict(entry)
            continue
        if kind == "counter":
            delta = entry["value"] - old["value"]
            if delta:
                metrics[full_name] = {"kind": kind, "value": delta}
            continue
        # histogram: subtract counts bucket-wise; min/max are not
        # recoverable for the window, so they are dropped
        buckets = {}
        for upper, count in entry.get("buckets", {}).items():
            remaining = count - old.get("buckets", {}).get(upper, 0)
            if remaining:
                buckets[upper] = remaining
        count = entry.get("count", 0) - old.get("count", 0)
        if count or buckets:
            metrics[full_name] = {
                "kind": kind,
                "count": count,
                "sum": entry.get("sum", 0.0) - old.get("sum", 0.0),
                "min": None,
                "max": None,
                "buckets": buckets,
            }
    return {"format": "repro-metrics", "version": 1, "metrics": metrics}


# ----------------------------------------------------------------------
# the process-wide default registry
# ----------------------------------------------------------------------
_default_registry = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry every subsystem records into."""
    return _default_registry


def counter(name: str, *, labels: dict | None = None, help: str = "") -> Counter:
    return _default_registry.counter(name, labels=labels, help=help)


def gauge(name: str, *, labels: dict | None = None, help: str = "") -> Gauge:
    return _default_registry.gauge(name, labels=labels, help=help)


def histogram(
    name: str,
    *,
    labels: dict | None = None,
    help: str = "",
    growth: float = 2.0,
) -> Histogram:
    return _default_registry.histogram(
        name, labels=labels, help=help, growth=growth
    )
