"""Span-based request tracing, across threads and worker processes.

A *span* is one timed stage of a request: name, wall time, CPU time,
free-form attributes, child spans.  A request traced end to end yields
a span tree::

    request (12.1ms wall)
    ├─ plan (0.1ms)
    ├─ shard:/data/shard-0.utcq (9.8ms)
    │  └─ pool.call (9.7ms, ipc_seconds=0.0062)
    │     └─ worker (3.5ms, pid=4242)
    │        └─ worker.run (3.4ms)
    └─ merge (0.2ms)

which is exactly the instrument ROADMAP item 1 needs: parent-side
plan/merge time, worker-side decode time, and the difference between a
pool call's wall time and its worker span's wall time — the IPC
serialize/queue/deserialize overhead — all attributed, per request.

Usage::

    with start_trace("request") as root:      # opens a trace
        with trace_span("plan"):              # nested stage
            ...
    render_tree(root)                         # or root.to_dict()

:func:`trace_span` is free when no trace is open: it yields a no-op
span without allocating a real one, so library code can be
instrumented unconditionally and untraced requests pay almost nothing.

Cross-process propagation does not try to share state: a worker opens
its *own* root span (:func:`start_trace` in the worker), returns
``span.to_dict()`` piggybacked on the task result, and the parent
grafts it into the live tree with :func:`attach_child` — which also
stamps ``ipc_seconds`` (parent-observed round trip minus worker wall
time) onto the grafted span when the caller measured the round trip.

Context is tracked with :mod:`contextvars`, so spans nest correctly
per thread and survive into code the request fans out to.
"""

from __future__ import annotations

import contextvars
import os
import time
from contextlib import contextmanager

_current_span: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_span", default=None
)


class Span:
    """One timed stage; builds a tree through ``children``."""

    __slots__ = ("name", "attrs", "children", "wall", "cpu", "_t0", "_c0")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.wall: float = 0.0
        self.cpu: float = 0.0
        self._t0: float | None = None
        self._c0: float | None = None

    def start(self) -> "Span":
        self._t0 = time.perf_counter()
        self._c0 = time.process_time()
        return self

    def finish(self) -> "Span":
        if self._t0 is not None:
            self.wall = time.perf_counter() - self._t0
            self.cpu = time.process_time() - self._c0
            self._t0 = None
        return self

    def set(self, key: str, value) -> None:
        self.attrs[key] = value

    # ------------------------------------------------------------------
    # (de)serialization — how spans cross the process boundary
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        document = {
            "name": self.name,
            "wall": self.wall,
            "cpu": self.cpu,
        }
        if self.attrs:
            document["attrs"] = dict(self.attrs)
        if self.children:
            document["children"] = [child.to_dict() for child in self.children]
        return document

    @classmethod
    def from_dict(cls, document: dict) -> "Span":
        span = cls(document["name"], document.get("attrs"))
        span.wall = float(document.get("wall", 0.0))
        span.cpu = float(document.get("cpu", 0.0))
        span.children = [
            cls.from_dict(child) for child in document.get("children", ())
        ]
        return span

    # ------------------------------------------------------------------
    # tree queries (used by tests, docs tooling, `repro obs trace`)
    # ------------------------------------------------------------------
    def find(self, name: str) -> "Span | None":
        """First span named ``name`` in this subtree (depth-first)."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def find_all(self, name: str) -> "list[Span]":
        spans = [self] if self.name == name else []
        for child in self.children:
            spans.extend(child.find_all(name))
        return spans

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, wall={self.wall:.6f}, "
            f"children={len(self.children)})"
        )


class _NullSpan:
    """What :func:`trace_span` yields when no trace is open."""

    __slots__ = ()

    def set(self, key: str, value) -> None:
        pass

    @property
    def attrs(self) -> dict:
        return {}

    @property
    def children(self) -> list:
        return []


_NULL_SPAN = _NullSpan()


def current_span() -> Span | None:
    """The innermost live span of this context, or None (not tracing)."""
    return _current_span.get()


def is_tracing() -> bool:
    return _current_span.get() is not None


@contextmanager
def start_trace(name: str, **attrs):
    """Open a root span regardless of context; yields the live Span.

    The root is the handle the caller keeps: after the ``with`` block it
    holds the finished tree (``to_dict()`` / :func:`render_tree`).
    """
    span = Span(name, attrs)
    token = _current_span.set(span)
    span.start()
    try:
        yield span
    finally:
        span.finish()
        _current_span.reset(token)


@contextmanager
def trace_span(name: str, **attrs):
    """One nested stage — a no-op unless a trace is open.

    On exit the span is attached to its parent, so the tree assembles
    itself in stack order.
    """
    parent = _current_span.get()
    if parent is None:
        yield _NULL_SPAN
        return
    span = Span(name, attrs)
    token = _current_span.set(span)
    span.start()
    try:
        yield span
    finally:
        span.finish()
        _current_span.reset(token)
        parent.children.append(span)


def attach_child(
    document: dict, *, roundtrip_seconds: float | None = None
) -> Span | None:
    """Graft a worker-produced span dict under the current span.

    ``roundtrip_seconds`` is the parent-observed submit-to-result wall
    time; the difference between it and the worker span's own wall time
    is the IPC overhead (pickle out + queue + pickle back), stamped on
    the grafted span as ``ipc_seconds``.  Returns the grafted Span, or
    None when not tracing (the dict is dropped).
    """
    parent = _current_span.get()
    if parent is None or document is None:
        return None
    span = Span.from_dict(document)
    if roundtrip_seconds is not None:
        span.set("roundtrip_seconds", roundtrip_seconds)
        span.set("ipc_seconds", max(0.0, roundtrip_seconds - span.wall))
    parent.children.append(span)
    return span


@contextmanager
def worker_trace(name: str, **attrs):
    """Worker-process side of propagation: a root span that stamps its
    pid, for piggybacking on the task result as ``span.to_dict()``."""
    with start_trace(name, **attrs) as span:
        span.set("pid", os.getpid())
        yield span


def render_tree(span: Span, *, min_wall: float = 0.0) -> str:
    """Human-readable span tree (the ``repro obs trace`` output)."""
    lines: list[str] = []

    def visit(node: Span, prefix: str, is_last: bool, is_root: bool) -> None:
        if is_root:
            connector, child_prefix = "", ""
        else:
            connector = prefix + ("└─ " if is_last else "├─ ")
            child_prefix = prefix + ("   " if is_last else "│  ")
        attrs = ", ".join(
            f"{key}={_format_attr(value)}"
            for key, value in sorted(node.attrs.items())
        )
        lines.append(
            f"{connector}{node.name}  "
            f"wall={node.wall * 1000:.2f}ms cpu={node.cpu * 1000:.2f}ms"
            + (f"  [{attrs}]" if attrs else "")
        )
        visible = [c for c in node.children if c.wall >= min_wall]
        for position, child in enumerate(visible):
            visit(child, child_prefix, position == len(visible) - 1, False)

    visit(span, "", True, True)
    return "\n".join(lines)


def _format_attr(value) -> str:
    if isinstance(value, float):
        return f"{value:.6g}"
    return str(value)


def ipc_breakdown(root: Span) -> dict:
    """Aggregate the IPC accounting of one traced request.

    Sums worker-side wall time and parent-observed IPC overhead across
    every grafted worker span in the tree, plus the plan/merge stages —
    the numbers ``docs/observability.md`` quantifies the sharded-path
    gap with.
    """
    workers = [
        span
        for span in _walk(root)
        if "ipc_seconds" in span.attrs
    ]
    worker_wall = sum(span.wall for span in workers)
    ipc = sum(span.attrs["ipc_seconds"] for span in workers)
    plan = sum(span.wall for span in root.find_all("plan"))
    merge = sum(span.wall for span in root.find_all("merge"))
    total = root.wall
    return {
        "total_seconds": total,
        "plan_seconds": plan,
        "merge_seconds": merge,
        "worker_seconds": worker_wall,
        "ipc_seconds": ipc,
        "worker_calls": len(workers),
        "ipc_share": (ipc / total) if total > 0 else 0.0,
    }


def _walk(span: Span):
    yield span
    for child in span.children:
        yield from _walk(child)
