"""Parallel batch compression across ``multiprocessing`` workers.

The UTCQ pipeline is trajectory-at-a-time (Fig. 3), which makes the
dataset embarrassingly parallel: trajectories are split into shards,
each worker compresses its shard with a fresh :class:`~repro.core.
compressor.UTCQCompressor`, and the parent stitches the results back in
input order.  Because the compressor seeds one RNG per trajectory id
(:meth:`UTCQCompressor.trajectory_rng`) rather than threading a stream
through the dataset, the parallel output is **byte-identical** to a
serial :meth:`UTCQCompressor.compress` run with the same seed — the
round-trip tests assert this on serialized archives.

Archive-wide parameters (``t0_bits`` depends on the dataset-wide maximum
start time) are computed once in the parent and broadcast, so shards
cannot diverge on header fields either.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..core.archive import (
    CompressedArchive,
    CompressedTrajectory,
    CompressionParams,
    CompressionStats,
)
from ..core.compressor import UTCQCompressor
from ..network.graph import RoadNetwork
from ..trajectories.model import UncertainTrajectory

ProgressCallback = Callable[[int, int], None]

# worker-global compressor/params, installed once per process by the pool
# initializer so each shard submission only pickles its trajectories
_worker_compressor: UTCQCompressor | None = None
_worker_params: CompressionParams | None = None


def _init_worker(
    compressor: UTCQCompressor, params: CompressionParams
) -> None:
    global _worker_compressor, _worker_params
    _worker_compressor = compressor
    _worker_params = params


def _compress_shard(
    trajectories: list[UncertainTrajectory],
) -> list[CompressedTrajectory]:
    assert _worker_compressor is not None and _worker_params is not None
    return [
        _worker_compressor.compress_trajectory(
            trajectory,
            _worker_params,
            _worker_compressor.trajectory_rng(trajectory.trajectory_id),
        )
        for trajectory in trajectories
    ]


def default_worker_count() -> int:
    """One worker per available core, at least one."""
    return max(os.cpu_count() or 1, 1)


def make_shards(
    trajectories: Sequence[UncertainTrajectory],
    shard_size: int,
) -> list[list[UncertainTrajectory]]:
    """Contiguous shards of at most ``shard_size`` trajectories."""
    if shard_size < 1:
        raise ValueError(f"shard_size must be >= 1, got {shard_size}")
    return [
        list(trajectories[start : start + shard_size])
        for start in range(0, len(trajectories), shard_size)
    ]


@dataclass
class BatchReport:
    """What a batch run did: sizes, shard accounting, wall time."""

    trajectory_count: int
    instance_count: int
    shard_count: int
    workers: int
    elapsed_seconds: float
    stats: CompressionStats = field(default_factory=CompressionStats)

    @property
    def trajectories_per_second(self) -> float:
        if self.elapsed_seconds <= 0:
            return float("inf")
        return self.trajectory_count / self.elapsed_seconds


def compress_parallel(
    network: RoadNetwork,
    trajectories: Sequence[UncertainTrajectory],
    *,
    default_interval: int,
    workers: int | None = None,
    shard_size: int | None = None,
    progress: ProgressCallback | None = None,
    mp_context: str | None = None,
    **compressor_options,
) -> tuple[CompressedArchive, BatchReport]:
    """Compress ``trajectories`` across processes; returns (archive, report).

    ``workers`` defaults to the core count; ``workers <= 1`` (or a tiny
    dataset) falls back to in-process serial compression, which produces
    the same bytes.  ``shard_size`` controls work granularity (default:
    about four shards per worker, so stragglers rebalance).  Remaining
    keyword arguments (``eta_distance``, ``pivot_count``, ``seed``, ...)
    are forwarded to :class:`UTCQCompressor`.

    ``progress`` is called as ``progress(done_trajectories, total)`` from
    the parent each time a shard completes.
    """
    trajectories = list(trajectories)
    compressor = UTCQCompressor(
        network=network, default_interval=default_interval, **compressor_options
    )
    params = compressor.params_for(trajectories)
    total = len(trajectories)
    if workers is None:
        workers = default_worker_count()
    workers = max(1, min(workers, total or 1))
    started = time.perf_counter()

    if workers == 1 or total <= 1:
        compressed = []
        for done, trajectory in enumerate(trajectories, start=1):
            compressed.append(
                compressor.compress_trajectory(
                    trajectory,
                    params,
                    compressor.trajectory_rng(trajectory.trajectory_id),
                )
            )
            if progress is not None:
                progress(done, total)
        shards: list[list[UncertainTrajectory]] = [trajectories]
    else:
        if shard_size is None:
            shard_size = max(1, -(-total // (workers * 4)))
        shards = make_shards(trajectories, shard_size)
        context = multiprocessing.get_context(mp_context)
        compressed = []
        with context.Pool(
            processes=workers,
            initializer=_init_worker,
            initargs=(compressor, params),
        ) as pool:
            done = 0
            # imap preserves shard order, so concatenation restores the
            # input trajectory order exactly
            for shard_result in pool.imap(_compress_shard, shards):
                compressed.extend(shard_result)
                done += len(shard_result)
                if progress is not None:
                    progress(done, total)

    archive = CompressedArchive(params=params, trajectories=compressed)
    report = BatchReport(
        trajectory_count=total,
        instance_count=archive.instance_count,
        shard_count=len(shards) if total else 0,
        workers=workers,
        elapsed_seconds=time.perf_counter() - started,
        stats=archive.stats,
    )
    return archive, report


def save_archive_with_index(
    archive: CompressedArchive,
    path,
    network: RoadNetwork,
    *,
    provenance: dict[str, str] | None = None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
):
    """Write the ``.utcq`` file plus its ``.stiu`` sidecar in one step.

    Building the StIU index at write time makes every later open warm:
    ``StIUIndex.over_file`` (and ``repro query``) load the sidecar
    instead of re-decoding the whole archive.  Returns
    ``(file_bytes, sidecar_path)``.
    """
    from ..query.sidecar import save_index
    from ..query.stiu import StIUIndex

    size = archive.save(path, provenance=provenance)
    index = StIUIndex(
        network,
        archive,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
    )
    sidecar_path = save_index(index, path)
    return size, sidecar_path
