"""Throughput: sharded, multi-core batch compression."""

from .batch import (
    BatchReport,
    compress_parallel,
    default_worker_count,
    make_shards,
    save_archive_with_index,
)

__all__ = [
    "BatchReport",
    "compress_parallel",
    "default_worker_count",
    "make_shards",
    "save_archive_with_index",
]
