"""Probabilistic where / when / range queries over compressed data (§5.3-5.4).

All three queries run against the :class:`~repro.query.stiu.StIUIndex`
without full decompression:

* **where(Tu_j, t, alpha)** — Definition 10.  The temporal index locates
  the bracketing timestamps by resuming the SIAR stream mid-way (t.pos);
  only instances with decoded probability >= alpha are materialized, and
  each position is interpolated along the instance's path.
* **when(Tu_j, <edge, rd>, alpha)** — Definition 11.  The spatial index
  fetches the region's tuples; Lemma 1 skips a reference's whole
  representation set when its ``p_max`` (and its own probability) is
  below alpha.
* **range(Tu, RE, t_q, alpha)** — Definition 12.  Candidates come from
  the temporal interval; Lemma 4 prunes trajectories whose indexed
  probability mass near RE cannot reach alpha; Lemma 2 classifies
  instances by their bracketing sub-path (inside / disjoint / boundary,
  the latter needing a D decode); Lemma 3 accepts as soon as the
  confirmed mass reaches alpha.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..bits.bitio import BitReader
from ..core import siar
from ..core.archive import CompressedArchive, CompressedTrajectory
from ..core.decoder import (
    DecodeSpanCache,
    decode_non_reference_tuple,
    decode_reference_tuple,
)
from ..core.improved_ted import InstanceTuple, decode_instance
from ..network.graph import RoadNetwork
from ..network.grid import Rect
from ..trajectories.model import EdgeKey, TrajectoryInstance
from ..trajectories.path import InstanceChainage
from .stiu import INFINITE_VERTEX, StIUIndex


@dataclass(frozen=True)
class WhereResult:
    """A located instance: the paper's ``<(vs -> ve), ndist>`` plus context."""

    trajectory_id: int
    instance_index: int
    edge: EdgeKey
    ndist: float
    probability: float


@dataclass(frozen=True)
class WhenResult:
    """A passing time of one instance for the queried location."""

    trajectory_id: int
    instance_index: int
    time: float
    probability: float


@dataclass
class QueryCounters:
    """Instrumentation: how much work the filters avoided."""

    instances_decoded: int = 0
    instances_pruned: int = 0
    trajectories_pruned: int = 0
    lemma2_inside: int = 0
    lemma2_disjoint: int = 0
    lemma2_boundary: int = 0

    def reset(self) -> None:
        self.instances_decoded = 0
        self.instances_pruned = 0
        self.trajectories_pruned = 0
        self.lemma2_inside = 0
        self.lemma2_disjoint = 0
        self.lemma2_boundary = 0


class UTCQQueryProcessor:
    """Query engine over a compressed archive + StIU index.

    ``cache`` is the decode-span LRU shared with other processors over
    the same archive + network (``None`` creates a private one).  It
    memoizes decoded time sequences, reference tuples, materialized
    instances, and chainage tables, so repeated probes of a hot
    trajectory cost O(span) instead of a re-decode.
    """

    def __init__(
        self,
        network: RoadNetwork,
        archive: CompressedArchive,
        index: StIUIndex,
        *,
        cache: DecodeSpanCache | None = None,
    ) -> None:
        self.network = network
        self.archive = archive
        self.index = index
        self.counters = QueryCounters()
        self.cache = cache if cache is not None else DecodeSpanCache()
        # per-(interval, cell) reference mass for Lemma 4; derived purely
        # from the immutable index, so it never needs invalidation
        self._region_mass: dict[tuple[int, int], dict[int, float]] = {}

    # ------------------------------------------------------------------
    # shared partial-decompression helpers
    # ------------------------------------------------------------------
    def _decode_times_around(
        self, trajectory: CompressedTrajectory, t: int
    ) -> list[int] | None:
        """Timestamps from the indexed resume point up to just past ``t``.

        Returns absolute timestamps starting at the temporal tuple's
        ``t.no``; ``None`` when ``t`` is outside the trajectory's span.
        """
        if not trajectory.start_time <= t <= trajectory.end_time:
            return None
        entry = self.index.temporal_tuple_for(trajectory.trajectory_id, t)
        if entry is None:
            return None
        reader = BitReader(
            trajectory.time_payload, trajectory.time_payload_bits
        )
        times = siar.decode_from_offset(
            reader,
            start_time=entry.start,
            start_index=entry.number,
            bit_position=entry.bit_position,
            total_count=trajectory.point_count,
            default_interval=self.archive.params.default_interval,
        )
        return times

    def _full_times(self, trajectory: CompressedTrajectory) -> list[int]:
        def decode() -> list[int]:
            reader = BitReader(
                trajectory.time_payload, trajectory.time_payload_bits
            )
            return siar.decode(
                reader,
                self.archive.params.default_interval,
                t0_bits=self.archive.params.t0_bits,
            )

        return self.cache.times_for(trajectory.trajectory_id, decode)

    def _reference_tuple(
        self, trajectory: CompressedTrajectory, ordinal: int
    ) -> InstanceTuple:
        return self.cache.reference_for(
            trajectory.trajectory_id,
            ordinal,
            lambda: decode_reference_tuple(
                trajectory.reference_by_ordinal(ordinal), self.archive.params
            ),
        )

    def _materialize(
        self, trajectory: CompressedTrajectory, instance_index: int
    ) -> TrajectoryInstance:
        """Decode one instance (reference payload shared via cache)."""

        def decode() -> TrajectoryInstance:
            compressed = trajectory.instances[instance_index]
            self.counters.instances_decoded += 1
            if compressed.is_reference:
                encoded = self._reference_tuple(
                    trajectory, compressed.reference_ordinal
                )
            else:
                reference = self._reference_tuple(
                    trajectory, compressed.reference_ordinal
                )
                encoded = decode_non_reference_tuple(
                    compressed, reference, self.archive.params
                )
            return decode_instance(self.network, encoded)

        return self.cache.instance_for(
            trajectory.trajectory_id, instance_index, decode
        )

    def _chain(
        self, trajectory: CompressedTrajectory, instance_index: int
    ) -> InstanceChainage:
        """Chainage table of one instance (cached: building it walks the
        whole path to accumulate edge lengths)."""
        return self.cache.chainage_for(
            trajectory.trajectory_id,
            instance_index,
            lambda: InstanceChainage(
                self.network, self._materialize(trajectory, instance_index)
            ),
        )

    # ------------------------------------------------------------------
    # probabilistic where (Definition 10)
    # ------------------------------------------------------------------
    def where(
        self, trajectory_id: int, t: int, alpha: float
    ) -> list[WhereResult]:
        trajectory = self.archive.trajectory(trajectory_id)
        # the same guards _decode_times_around applies, without paying
        # for a partial decode the decode-span cache makes redundant
        if not trajectory.start_time <= t <= trajectory.end_time:
            return []
        if self.index.temporal_tuple_for(trajectory_id, t) is None:
            return []
        full_times = self._full_times(trajectory)
        results: list[WhereResult] = []
        for index, compressed in enumerate(trajectory.instances):
            if compressed.probability < alpha:
                self.counters.instances_pruned += 1
                continue
            chain = self._chain(trajectory, index)
            position = chain.position_at_time(full_times, t)
            if position is None:
                continue
            results.append(
                WhereResult(
                    trajectory_id,
                    index,
                    position.edge,
                    position.ndist,
                    compressed.probability,
                )
            )
        return results

    # ------------------------------------------------------------------
    # probabilistic when (Definition 11)
    # ------------------------------------------------------------------
    def when(
        self,
        trajectory_id: int,
        edge: EdgeKey,
        relative_distance: float,
        alpha: float,
    ) -> list[WhenResult]:
        trajectory = self.archive.trajectory(trajectory_id)
        a = self.network.vertex(edge[0])
        b = self.network.vertex(edge[1])
        x = a.x + (b.x - a.x) * relative_distance
        y = a.y + (b.y - a.y) * relative_distance
        region = self.index.grid.cell_of_point(x, y)

        candidate_indices: set[int] = set()
        for interval in range(
            self.index.interval_of(trajectory.start_time),
            self.index.interval_of(trajectory.end_time) + 1,
        ):
            entry = self.index.entries_for_trajectory(
                interval, region, trajectory_id
            )
            if entry is None:
                continue
            for reference in entry.references:
                ref_compressed = trajectory.instances[reference.instance_index]
                ref_qualifies = (
                    reference.final_vertex != INFINITE_VERTEX
                    and ref_compressed.probability >= alpha
                )
                if ref_qualifies:
                    candidate_indices.add(reference.instance_index)
                # Lemma 1: p_max < alpha means no represented instance
                # qualifies; the reference set needs no decompression.
                if reference.p_max < alpha:
                    self.counters.instances_pruned += 1
                    continue
                candidate_indices.update(
                    self._group_members(
                        trajectory, ref_compressed.reference_ordinal
                    )
                )
        results: list[WhenResult] = []
        if not candidate_indices:
            return results
        full_times = self._full_times(trajectory)
        edge_length = self.network.edge_length(*edge)
        ndist = relative_distance * edge_length
        # decoded chainages carry PDDP error up to eta per edge length
        tolerance = self.archive.params.eta_distance * edge_length + 1e-6
        for index in sorted(candidate_indices):
            compressed = trajectory.instances[index]
            if compressed.probability < alpha:
                self.counters.instances_pruned += 1
                continue
            chain = self._chain(trajectory, index)
            for passing in chain.times_at_position(
                full_times, edge, ndist, tolerance=tolerance
            ):
                results.append(
                    WhenResult(
                        trajectory_id, index, passing, compressed.probability
                    )
                )
        return results

    def _group_members(
        self, trajectory: CompressedTrajectory, ordinal: int
    ) -> list[int]:
        return [
            index
            for index, instance in enumerate(trajectory.instances)
            if instance.reference_ordinal == ordinal
            and not instance.is_reference
        ]

    # ------------------------------------------------------------------
    # probabilistic range (Definition 12)
    # ------------------------------------------------------------------
    def range(self, region: Rect, t: int, alpha: float) -> list[int]:
        interval = self.index.interval_of(t)
        cells = self.index.grid.cells_of_rect(region)
        # Lemma 4: indexed probability mass near RE bounds the true
        # overlap probability from above.  One pass over the touched
        # *occupied* cells' (memoized) mass maps accumulates every
        # candidate's bound — most cells of a query rectangle hold no
        # tuples at all, so intersect with the interval's occupancy
        # first instead of probing |candidates| x |cells| map lookups.
        bounds: dict[int, float] = {}
        interval_map = self.index.spatial.get(interval)
        if interval_map:
            for cell in interval_map.keys() & set(cells):
                for trajectory_id, mass in self._cell_reference_mass(
                    interval, cell
                ).items():
                    bounds[trajectory_id] = (
                        bounds.get(trajectory_id, 0.0) + mass
                    )
        results: list[int] = []
        interval_entries = self.index.temporal.get(interval)
        if not interval_entries:
            return results
        if alpha > 0:
            # only trajectories with indexed mass near RE can pass the
            # bound, so walk the (small) bounds map instead of every
            # candidate in the interval
            survivors = sorted(
                trajectory_id
                for trajectory_id, bound in bounds.items()
                if min(bound, 1.0) >= alpha
                and trajectory_id in interval_entries
            )
            self.counters.trajectories_pruned += len(interval_entries) - len(
                survivors
            )
        else:
            survivors = self.index.trajectories_in_interval(t)
        for trajectory_id in survivors:
            trajectory = self.archive.trajectory(trajectory_id)
            if not trajectory.start_time <= t <= trajectory.end_time:
                continue
            if self._range_confirm(trajectory, region, t, alpha):
                results.append(trajectory_id)
        return results

    def _cell_reference_mass(
        self, interval: int, cell: int
    ) -> dict[int, float]:
        """Summed ``p_total`` per trajectory for one (interval, cell)."""
        key = (interval, cell)
        mass = self._region_mass.get(key)
        if mass is None:
            mass = {}
            for trajectory_id, entry in self.index.region_entries(
                interval, cell
            ).items():
                total = 0.0
                for reference in entry.references:
                    total += reference.p_total
                if total:
                    mass[trajectory_id] = total
            self._region_mass[key] = mass
        return mass

    def _range_confirm(
        self,
        trajectory: CompressedTrajectory,
        region: Rect,
        t: int,
        alpha: float,
    ) -> bool:
        full_times = self._full_times(trajectory)
        order = sorted(
            range(len(trajectory.instances)),
            key=lambda i: -trajectory.instances[i].probability,
        )
        confirmed = 0.0
        remaining = sum(i.probability for i in trajectory.instances)
        for index in order:
            compressed = trajectory.instances[index]
            remaining -= compressed.probability
            overlap = self._instance_overlaps(
                trajectory, index, region, t, full_times
            )
            if overlap:
                confirmed += compressed.probability
                if confirmed >= alpha:  # Lemma 3 early accept
                    return True
            if confirmed + remaining < alpha:  # cannot reach alpha anymore
                return False
        return confirmed >= alpha

    def _instance_overlaps(
        self,
        trajectory: CompressedTrajectory,
        index: int,
        region: Rect,
        t: int,
        full_times: list[int],
    ) -> bool:
        chain = self._chain(trajectory, index)
        position = chain.position_at_time(full_times, t)
        if position is None:
            return False
        # Lemma 2 over the bracketing sub-path
        import bisect

        bracket = bisect.bisect_right(full_times, t) - 1
        lo = chain.location_chainages[max(bracket, 0)]
        hi = chain.location_chainages[
            min(bracket + 1, len(chain.location_chainages) - 1)
        ]
        subpath = chain.subpath_between(lo, hi)
        inside, disjoint = self._classify_subpath(subpath, region)
        if inside:
            self.counters.lemma2_inside += 1
            return True
        if disjoint:
            self.counters.lemma2_disjoint += 1
            return False
        self.counters.lemma2_boundary += 1
        a = self.network.vertex(position.edge[0])
        b = self.network.vertex(position.edge[1])
        fraction = position.ndist / self.network.edge_length(*position.edge)
        x = a.x + (b.x - a.x) * fraction
        y = a.y + (b.y - a.y) * fraction
        return region.contains(x, y)

    def _classify_subpath(
        self, subpath: list[EdgeKey], region: Rect
    ) -> tuple[bool, bool]:
        """(fully inside, fully disjoint) classification of Lemma 2."""
        all_inside = True
        any_touch = False
        for edge in subpath:
            a = self.network.vertex(edge[0])
            b = self.network.vertex(edge[1])
            a_in = region.contains(a.x, a.y)
            b_in = region.contains(b.x, b.y)
            if a_in and b_in:
                any_touch = True
                continue
            all_inside = False
            if a_in or b_in or _segment_intersects_rect(
                a.x, a.y, b.x, b.y, region
            ):
                any_touch = True
        return all_inside, not any_touch


def _segment_intersects_rect(
    x0: float, y0: float, x1: float, y1: float, rect: Rect
) -> bool:
    """Liang-Barsky style segment/rectangle intersection test."""
    dx, dy = x1 - x0, y1 - y0
    t_min, t_max = 0.0, 1.0
    for p, q in (
        (-dx, x0 - rect.min_x),
        (dx, rect.max_x - x0),
        (-dy, y0 - rect.min_y),
        (dy, rect.max_y - y0),
    ):
        if p == 0:
            if q < 0:
                return False
            continue
        r = q / p
        if p < 0:
            t_min = max(t_min, r)
        else:
            t_max = min(t_max, r)
        if t_min > t_max:
            return False
    return True
