"""Flag arrays and original arrays for partial T' decompression (§5.1).

Time-flag bit-strings tie ``D``/``T`` to ``E``: answering a query needs
"the number of 1s before any position" of an instance's T'.  For a
reference this is a prefix-count (*flag array* ``omega``) over its stored
trimmed bits.  For a non-reference, §5.1's Equations 4-6 compute the
count (*original array* ``gamma``) directly from the factor stream by
summing reference prefix-counts over each factor's match interval plus
its (inferred) mismatch bit — decompressing at most one factor, never the
whole bit-string.

Conventions: ``omega`` indexes the *trimmed* reference bits
(``omega[g]`` = ones among bits ``0..g-1``); ``gamma(g)`` counts ones of
the *original* (untrimmed) string at positions ``0..g`` inclusive, so
``gamma(g) - 1`` is the D-index of the location on entry ``g`` when entry
``g`` carries one.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from itertools import accumulate
from typing import Sequence

from ..core.factors import FlagFactor


@dataclass
class FlagArray:
    """The paper's ``omega``: prefix ones-counts of a reference's trimmed T'."""

    bits: tuple[int, ...]
    prefix: tuple[int, ...]

    @classmethod
    def from_bits(cls, bits: Sequence[int]) -> "FlagArray":
        return cls(tuple(bits), tuple(accumulate(bits, initial=0)))

    def __len__(self) -> int:
        return len(self.bits)

    def ones_before(self, g: int) -> int:
        """Number of 1s among trimmed bits ``0..g-1``."""
        if not 0 <= g <= len(self.bits):
            raise IndexError(f"position {g} outside [0, {len(self.bits)}]")
        return self.prefix[g]

    def ones_in(self, start: int, end: int) -> int:
        """Number of 1s among trimmed bits ``start..end-1``."""
        return self.ones_before(end) - self.ones_before(start)

    def original_ones_until(self, g: int, original_length: int) -> int:
        """The paper's ``gamma`` for the reference itself.

        ``g`` indexes the *original* (untrimmed) string of length
        ``original_length``; counts 1s at positions ``0..g`` inclusive
        (the first and last original bits are the omitted 1s).
        """
        if not 0 <= g < original_length:
            raise IndexError(f"position {g} outside the original string")
        count = 1  # the omitted leading 1
        count += self.ones_before(min(g, len(self.bits)))
        if g == original_length - 1:
            count += 1  # the omitted trailing 1
        return count


class OriginalArray:
    """The paper's ``gamma`` for a non-reference, computed from factors.

    Holds the non-reference's T' in whichever form the archive stored it
    (factor list or raw fallback bits) and answers ones-counts with at
    most one factor's worth of work (Equations 4-6).
    """

    def __init__(
        self,
        reference: FlagArray,
        factors: Sequence[FlagFactor] | None,
        raw_bits: Sequence[int] | None,
        original_length: int,
    ) -> None:
        if (factors is None) == (raw_bits is None):
            raise ValueError("exactly one of factors/raw_bits must be given")
        self.reference = reference
        self.factors = list(factors) if factors is not None else None
        self.original_length = original_length
        if raw_bits is not None:
            self._raw = FlagArray.from_bits(raw_bits)
        else:
            self._raw = None
            # cumulative trimmed positions and ones up to each factor start
            positions = [0]
            ones = [0]
            if self.factors:
                for factor in self.factors:
                    consumed = factor.length
                    contributed = reference.ones_in(
                        factor.start, factor.start + factor.length
                    )
                    if factor.mismatch is not None:
                        consumed += 1
                        contributed += factor.mismatch
                    elif factor is not self.factors[-1]:
                        consumed += 1
                        end = factor.start + factor.length
                        contributed += 1 - reference.bits[end]
                    positions.append(positions[-1] + consumed)
                    ones.append(ones[-1] + contributed)
            self._factor_starts = positions
            self._factor_ones = ones

    # ------------------------------------------------------------------
    def trimmed_ones_before(self, g: int) -> int:
        """Ones among the non-reference's trimmed bits ``0..g-1``."""
        if g < 0:
            raise IndexError("negative position")
        if self._raw is not None:
            return self._raw.ones_before(min(g, len(self._raw)))
        if self.factors is not None and not self.factors:
            # empty factor list: exact copy of the reference
            return self.reference.ones_before(min(g, len(self.reference)))
        return self._ones_from_factors(g)

    def _ones_from_factors(self, g: int) -> int:
        starts = self._factor_starts
        if g >= starts[-1]:
            return self._factor_ones[-1]
        # Equation 4: the factor whose span contains position g (binary
        # search over the cumulative factor starts)
        h = bisect_right(starts, g) - 1
        factor = self.factors[h]
        # Equation 5: ones contributed by complete factors before h
        count = self._factor_ones[h]
        # Equation 6: partial ones inside factor h via the reference array
        offset = g - starts[h]
        match_take = min(offset, factor.length)
        count += self.reference.ones_in(
            factor.start, factor.start + match_take
        )
        if offset > factor.length:
            # g lies past the factor's mismatch bit
            if factor.mismatch is not None:
                count += factor.mismatch
            else:
                end = factor.start + factor.length
                count += 1 - self.reference.bits[end]
        return count

    def ones_until(self, g: int) -> int:
        """``gamma(g)``: ones of the original string at positions 0..g."""
        if not 0 <= g < self.original_length:
            raise IndexError(
                f"position {g} outside the original string of length "
                f"{self.original_length}"
            )
        count = 1 + self.trimmed_ones_before(min(g, self.original_length - 2))
        if g == self.original_length - 1:
            count += 1
        return count

    def location_index_of_entry(self, g: int) -> int | None:
        """D-index of the location on original entry ``g`` (None if the
        entry carries no location)."""
        gamma = self.ones_until(g)
        if g == 0 or g == self.original_length - 1:
            return gamma - 1
        previous = self.ones_until(g - 1)
        if gamma == previous:
            return None
        return gamma - 1


def reference_gamma(
    array: FlagArray, original_length: int
) -> list[int]:
    """Materialized ``gamma`` of a reference (used in tests/validation)."""
    return [
        array.original_ones_until(g, original_length)
        for g in range(original_length)
    ]
