"""Batch and shard-parallel execution of where/when/range queries.

Serving millions of users means queries arrive in bulk, not one at a
time.  This module adds two layers over
:class:`~repro.query.queries.UTCQQueryProcessor`:

* :class:`BatchQueryEngine` — accepts many queries at once against one
  archive.  Identical queries are answered once, and execution is
  reordered (results are still returned in submission order) so queries
  touching the same trajectory or time interval run back-to-back:
  their SIAR time decodes, reference/factor decodes, chainage tables,
  and Lemma-4 index probes all hit the shared
  :class:`~repro.core.decoder.DecodeSpanCache` instead of being
  repeated per query.
* :class:`ShardedQueryEngine` — fans a batch out across several archive
  files ("shards") with a persistent process pool.  where/when queries
  are routed to the single shard holding their trajectory (via the
  archives' directory headers — no record is touched); range queries
  broadcast to every shard and the id lists are unioned.  Workers keep
  their shard's archive, sidecar-loaded StIU index, and decode cache
  alive between batches, so steady-state throughput scales with cores.

Every result is exactly what a lone
:class:`~repro.query.queries.UTCQQueryProcessor` (and therefore the
brute-force oracle, up to PDDP error) would produce; the engine only
changes *how often* shared work is done.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from collections import deque
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Sequence, Union

from ..config import env_int
from ..core.decoder import DecodeSpanCache
from ..network.grid import Rect
from ..obs import metrics as obs_metrics
from ..obs import trace as obs_trace
from ..obs.log import get_logger
from ..trajectories.model import EdgeKey
from . import transport as query_transport
from .hotcache import MISS, HotTrajectoryCache, resolve_hotcache_entries
from .queries import UTCQQueryProcessor, WhenResult, WhereResult
from .stiu import StIUIndex
from .transport import TransportError

_DEFAULT_DISPATCH_WINDOW = 8


def resolve_dispatch_window(explicit: int | None = None) -> int:
    """Dispatch window: explicit argument > ``REPRO_DISPATCH_WINDOW`` >
    8.  Bounds how many shard sub-batches are in flight at once."""
    if explicit is not None:
        return max(1, int(explicit))
    return env_int(
        "REPRO_DISPATCH_WINDOW", _DEFAULT_DISPATCH_WINDOW, minimum=1
    )

_log = get_logger("repro.query.engine")


class QueryEngineError(Exception):
    """Raised for malformed batch specs or unusable shards."""


class EngineClosedError(QueryEngineError):
    """A closed engine was asked to run queries.

    Parity with :class:`~repro.io.reader.ArchiveClosedError`: use after
    close is a caller bug and gets a typed error, not whatever the
    half-torn-down pool happens to raise.
    """


class WorkerPoolBroken(QueryEngineError):
    """The shard worker pool lost a process mid-batch.

    The engine itself stays usable: call :meth:`ShardedQueryEngine.
    restart_pool` (or let :class:`repro.serve.WorkerSupervisor` do it)
    and re-run the batch.  Raised instead of the raw
    ``BrokenProcessPool`` so callers can distinguish "a worker died"
    from "the batch was malformed"."""


# ----------------------------------------------------------------------
# query specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WhereQuery:
    """Definition 10: where was trajectory ``trajectory_id`` at ``t``?"""

    trajectory_id: int
    t: int
    alpha: float


@dataclass(frozen=True)
class WhenQuery:
    """Definition 11: when did the trajectory pass ``<edge, rd>``?"""

    trajectory_id: int
    edge: EdgeKey
    relative_distance: float
    alpha: float


@dataclass(frozen=True)
class RangeQuery:
    """Definition 12: which trajectories overlap ``rect`` at ``t``?"""

    rect: Rect
    t: int
    alpha: float


Query = Union[WhereQuery, WhenQuery, RangeQuery]


def query_from_dict(document: dict) -> Query:
    """Parse one JSON query object (the ``repro query batch`` format)."""
    try:
        kind = document.get("kind")
        if kind == "where":
            return WhereQuery(
                int(document["trajectory"]),
                int(document["time"]),
                float(document.get("alpha", 0.0)),
            )
        if kind == "when":
            edge = document["edge"]
            if len(edge) != 2:
                raise QueryEngineError(
                    f"'edge' must be [start, end], got {edge!r}"
                )
            return WhenQuery(
                int(document["trajectory"]),
                (int(edge[0]), int(edge[1])),
                float(document.get("rd", 0.5)),
                float(document.get("alpha", 0.0)),
            )
        if kind == "range":
            rect = document["rect"]
            if len(rect) != 4:
                raise QueryEngineError(
                    f"'rect' must be [minx, miny, maxx, maxy], got {rect!r}"
                )
            return RangeQuery(
                Rect(*(float(value) for value in rect)),
                int(document["time"]),
                float(document.get("alpha", 0.0)),
            )
    except QueryEngineError:
        raise
    except KeyError as error:
        raise QueryEngineError(
            f"query object missing field {error.args[0]!r}: {document!r}"
        ) from None
    except (TypeError, ValueError, AttributeError) as error:
        raise QueryEngineError(
            f"malformed query object {document!r}: {error}"
        ) from None
    raise QueryEngineError(
        f"unknown query kind {kind!r} (expected where/when/range)"
    )


def result_to_jsonable(query: Query, result) -> object:
    """Render one result the way the single-query CLI paths do."""
    if isinstance(query, WhereQuery):
        return [
            {
                "instance": r.instance_index,
                "edge": list(r.edge),
                "ndist": r.ndist,
                "probability": r.probability,
            }
            for r in result
        ]
    if isinstance(query, WhenQuery):
        return [
            {
                "instance": r.instance_index,
                "time": r.time,
                "probability": r.probability,
            }
            for r in result
        ]
    return list(result)


# ----------------------------------------------------------------------
# single-archive batch engine
# ----------------------------------------------------------------------
class BatchQueryEngine:
    """Run many queries against one archive, sharing decoded spans."""

    def __init__(
        self,
        network,
        archive,
        index: StIUIndex,
        *,
        cache: DecodeSpanCache | None = None,
    ) -> None:
        self.processor = UTCQQueryProcessor(
            network, archive, index, cache=cache
        )

    @property
    def counters(self):
        return self.processor.counters

    def run(self, queries: Sequence[Query]) -> list:
        """Answer every query; results align with the submission order.

        A where/when query naming a trajectory the archive does not hold
        returns ``[]`` (serving semantics — one bad id must not poison a
        batch).
        """
        slots: dict[Query, list[int]] = {}
        for position, query in enumerate(queries):
            if not isinstance(query, (WhereQuery, WhenQuery, RangeQuery)):
                raise QueryEngineError(
                    f"not a query spec: {query!r} (position {position})"
                )
            slots.setdefault(query, []).append(position)
        results: list = [None] * len(queries)
        for query in sorted(slots, key=self._execution_key):
            answer = self._execute(query)
            for position in slots[query]:
                results[position] = answer
        obs_metrics.counter(
            "repro_engine_queries_total", labels={"engine": "batch"}
        ).inc(len(queries))
        return results

    @staticmethod
    def _execution_key(query: Query) -> tuple:
        # trajectory-directed queries grouped per trajectory; range
        # queries grouped by query time so interval candidate sets and
        # Lemma-4 cell masses stay hot in the processor's memos
        if isinstance(query, WhereQuery):
            return (0, query.trajectory_id, query.t)
        if isinstance(query, WhenQuery):
            return (1, query.trajectory_id, query.edge, query.relative_distance)
        return (2, query.t, query.rect.min_x, query.rect.min_y)

    def _execute(self, query: Query):
        processor = self.processor
        try:
            if isinstance(query, WhereQuery):
                return processor.where(
                    query.trajectory_id, query.t, query.alpha
                )
            if isinstance(query, WhenQuery):
                return processor.when(
                    query.trajectory_id,
                    query.edge,
                    query.relative_distance,
                    query.alpha,
                )
            return processor.range(query.rect, query.t, query.alpha)
        except KeyError:
            return []


# ----------------------------------------------------------------------
# shard-parallel engine
# ----------------------------------------------------------------------
def build_network_from_provenance(provenance: dict[str, str]):
    from ..network.generators import dataset_network
    from ..trajectories.datasets import profile as dataset_profile

    profile_name = provenance.get("profile")
    seed = provenance.get("dataset_seed")
    scale = provenance.get("network_scale")
    if profile_name is None or seed is None:
        raise QueryEngineError(
            "shard carries no dataset provenance; pass an explicit "
            "network to ShardedQueryEngine"
        )
    if scale is None:
        scale = dataset_profile(profile_name).network_scale
    return dataset_network(profile_name, scale=int(scale), seed=int(seed))


def _open_shard_engine(
    path,
    network,
    *,
    grid_cells_per_side: int,
    time_partition_seconds: int,
    verify_crc: bool,
) -> BatchQueryEngine:
    if network is None:
        raise QueryEngineError("network must be resolved before opening")
    index = StIUIndex.over_file(
        network,
        path,
        verify_crc=verify_crc,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
    )
    return BatchQueryEngine(network, index.archive, index)


# worker-global state, installed by the pool initializer: shard engines
# (archive + sidecar index + decode cache) persist across batches, and
# under shm transport so does the worker's answer slab
_worker_config: dict | None = None
_worker_engines: dict[str, BatchQueryEngine] = {}
_worker_slab = None  # SlabWriter | None | False (False: disabled for good)


def _init_query_worker(config: dict) -> None:
    global _worker_config, _worker_slab
    _worker_config = config
    _worker_engines.clear()
    _worker_slab = None


def _worker_slab_writer():
    """This worker's slab writer, created lazily; None when the shm
    transport is off or the slab could not be created (inline fallback)."""
    global _worker_slab
    if _worker_slab is False:
        return None
    if _worker_slab is not None:
        return _worker_slab
    config = (_worker_config or {}).get("transport") or {}
    if config.get("kind") != query_transport.TRANSPORT_SHM:
        _worker_slab = False
        return None
    try:
        _worker_slab = query_transport.SlabWriter(
            config["arena"],
            generation=(_worker_config or {}).get("pool_generation", 0),
            size=config.get("slab_bytes"),
            keep=config.get("keep", 64),
        )
    except Exception as error:
        # no /dev/shm, size limit, permissions: answers ride the pipe
        _worker_slab = False
        _log.warning("transport.slab_unavailable", error=str(error))
        return None
    return _worker_slab


def _transport_payload(answers: list):
    """Worker-side: ship answers by descriptor when possible.

    Plain (untagged) answers on the pickle transport; under shm a
    tagged descriptor, or a tagged inline payload when the answers are
    not codec-expressible or the slab has no safe room.
    """
    writer = _worker_slab_writer()
    if writer is None:
        config = (_worker_config or {}).get("transport") or {}
        if config.get("kind") != query_transport.TRANSPORT_SHM:
            return answers
        return query_transport.tag_inline(answers)
    try:
        blob = query_transport.encode_answers(answers)
    except query_transport.UnencodableAnswers:
        return query_transport.tag_inline(answers)
    descriptor = writer.write(blob)
    if descriptor is None:
        return query_transport.tag_inline(answers)
    return query_transport.tag_descriptor(descriptor)


def _shard_engine_for(path: str) -> BatchQueryEngine:
    assert _worker_config is not None
    engine = _worker_engines.get(path)
    if engine is None:
        network = _worker_config["network"]
        if network is None:
            from ..io.reader import FileBackedArchive

            with FileBackedArchive.open(path) as probe:
                network = build_network_from_provenance(probe.provenance)
        engine = _open_shard_engine(
            path,
            network,
            grid_cells_per_side=_worker_config["grid_cells_per_side"],
            time_partition_seconds=_worker_config["time_partition_seconds"],
            verify_crc=_worker_config["verify_crc"],
        )
        _worker_engines[path] = engine
    return engine


def _run_shard_batch(task: tuple):
    path, queries = task
    return _transport_payload(_shard_engine_for(path).run(queries))


def _run_shard_batch_traced(task: tuple) -> dict:
    """Traced variant: same answers, plus this worker's span tree.

    The worker opens its own trace root (spans cannot cross a process
    boundary live) and piggybacks the finished tree on the result; the
    parent grafts it under the request's tree and derives the IPC
    overhead from its own observed round-trip time.
    """
    path, queries = task
    with obs_trace.worker_trace(
        "worker", shard=os.path.basename(path)
    ) as span:
        with obs_trace.trace_span("worker.open"):
            engine = _shard_engine_for(path)
        with obs_trace.trace_span("worker.run", queries=len(queries)):
            answers = engine.run(queries)
        with obs_trace.trace_span("worker.encode"):
            payload = _transport_payload(answers)
    return {"answers": payload, "span": span.to_dict()}


def _ping_worker(payload: object) -> tuple[int, object]:
    """Health-check task: proves a worker can pull work and answer."""
    return os.getpid(), payload


def _graft_shard_span(parent, path, specs, payload: dict, roundtrip: float):
    """Attach a traced task's worker span under ``parent``; returns the
    bare answers.

    Shard sub-batches run concurrently, so the ``shard:`` span's wall
    time is the parent-observed submit-to-result round trip (not a
    ``with`` block: by the time the first ``result()`` returns, other
    shards have already been running).  ``ipc_seconds`` is that round
    trip minus the worker's own wall time — pickle out, queue wait,
    pickle back.
    """
    shard_span = obs_trace.Span(
        f"shard:{os.path.basename(path)}",
        {"path": str(path), "queries": len(specs)},
    )
    shard_span.wall = roundtrip
    worker = obs_trace.Span.from_dict(payload["span"])
    worker.set("roundtrip_seconds", roundtrip)
    worker.set("ipc_seconds", max(0.0, roundtrip - worker.wall))
    shard_span.children.append(worker)
    parent.children.append(shard_span)
    return payload["answers"]


class ShardWorkerPool:
    """A restartable process pool of warm shard workers.

    Wraps :class:`concurrent.futures.ProcessPoolExecutor` (whose broken
    state is *observable* — a dead worker raises ``BrokenProcessPool``
    instead of wedging the batch the way ``multiprocessing.Pool`` can)
    and adds the lifecycle a supervisor needs:

    * :meth:`submit` hands one shard sub-batch to the pool and returns
      the future;
    * :meth:`restart` tears the executor down and builds a fresh one —
      new workers re-run the initializer and lazily reload their
      shards' archives and ``.stiu`` sidecars on first touch (a warm
      reload: the sidecar makes reopening cheap);
    * :meth:`ping` round-trips a no-op task, the health check;
    * :meth:`worker_pids` exposes the live worker processes so tests
      and chaos harnesses can kill one mid-query.

    Thread-safe: submits may race a restart; the losers get a future
    that raises ``BrokenProcessPool`` and retry against the new
    generation.
    """

    def __init__(
        self,
        config: dict,
        *,
        workers: int,
        mp_context: str | None = None,
    ) -> None:
        if workers < 1:
            raise QueryEngineError(f"workers must be >= 1, got {workers}")
        self._config = config
        self._workers = workers
        self._context = multiprocessing.get_context(mp_context)
        self._lock = threading.Lock()
        self._closed = False
        self.generation = 0
        transport_config = config.get("transport") or {}
        self._reader = (
            query_transport.SlabReaderPool(
                transport_config["arena"], generation=0
            )
            if transport_config.get("kind")
            == query_transport.TRANSPORT_SHM
            else None
        )
        self._executor = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        if self._reader is not None:
            # start the parent's resource tracker before any worker
            # forks: children inherit it, so slab registrations land in
            # one shared tracker the parent's unlink can clear.  A
            # worker that starts its own tracker would warn about
            # "leaked" segments the parent already reclaimed.
            from multiprocessing import resource_tracker

            try:
                resource_tracker.ensure_running()
            except Exception:  # pragma: no cover - tracker unavailable
                pass
        # workers see the generation they were spawned into: their slab
        # names (and entry headers) carry it, so descriptors from a
        # dead generation can never validate after a respawn
        return ProcessPoolExecutor(
            max_workers=self._workers,
            mp_context=self._context,
            initializer=_init_query_worker,
            initargs=({**self._config, "pool_generation": self.generation},),
        )

    @property
    def transport_arena(self) -> str | None:
        """The shm arena id (None on the pickle transport)."""
        return self._reader.arena if self._reader is not None else None

    def decode(self, payload):
        """Resolve one task payload to answers (see
        :func:`repro.query.transport.decode_payload`)."""
        return query_transport.decode_payload(payload, self._reader)

    @property
    def workers(self) -> int:
        return self._workers

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def broken(self) -> bool:
        """True when the current executor has lost a worker process."""
        with self._lock:
            return (
                not self._closed and self._executor._broken is not False
            )

    def submit(
        self, path: str, specs: Sequence[Query], *, traced: bool = False
    ) -> Future:
        """Hand one shard sub-batch to the pool.

        With ``traced=True`` the worker runs the traced task variant
        and the future resolves to ``{"answers": [...], "span": {...}}``
        instead of the bare answer list.
        """
        fn = _run_shard_batch_traced if traced else _run_shard_batch
        return self.submit_call(fn, (str(path), list(specs)))

    def submit_call(self, fn, payload) -> Future:
        """Generic submission seam (used by pings and chaos wrappers)."""
        with self._lock:
            if self._closed:
                raise EngineClosedError("worker pool is closed")
            executor = self._executor
        return executor.submit(fn, payload)

    def ping(self, *, timeout: float, payload: object = None):
        """Round-trip a no-op through one worker; raises on a sick pool."""
        return self.submit_call(_ping_worker, payload).result(timeout)

    def worker_pids(self) -> list[int]:
        """Best effort: pids of the current worker processes."""
        with self._lock:
            if self._closed:
                return []
            processes = self._executor._processes
        return [
            process.pid
            for process in list(processes.values())
            if process.pid is not None
        ]

    @staticmethod
    def _reap(executor) -> None:
        """SIGKILL an abandoned executor's worker processes.

        ``shutdown(wait=False)`` only *asks* workers to exit: the
        executor's manager thread withholds the exit sentinels while
        any submitted item is unfinished, so a single wedged worker
        (e.g. one that forked while another thread held a lock) parks
        the manager in ``poll()`` forever — and interpreter exit then
        hangs joining that manager thread.  Killing the workers is
        deterministic: their death wakes the manager, which fails the
        leftover futures with ``BrokenProcessPool``, reaps the corpses,
        and exits.  Workers are stateless by design, so nothing of
        value dies with them.  Must run *before* ``shutdown()``, which
        drops the executor's ``_processes`` reference even with
        ``wait=False``.
        """
        processes = getattr(executor, "_processes", None)
        for process in list((processes or {}).values()):
            try:
                process.kill()
            except Exception:  # already dead or never fully spawned
                pass

    def restart(self) -> int:
        """Replace the executor; returns the new generation number.

        The old executor is shut down without waiting: a genuinely
        wedged worker must not block the respawn.  Pending futures on
        the old generation fail fast (broken) so their callers can
        retry here.
        """
        with self._lock:
            if self._closed:
                raise EngineClosedError("worker pool is closed")
            old = self._executor
            self.generation += 1
            generation = self.generation
            self._executor = self._spawn()
        self._reap(old)
        old.shutdown(wait=False, cancel_futures=True)
        if self._reader is not None:
            # stale descriptors now fail fast; dead generations' slabs
            # are unlinked (including those of crashed workers)
            self._reader.invalidate(generation)
        obs_metrics.counter(
            "repro_pool_restarts_total",
            help="Worker-pool respawns (new generation of processes)",
        ).inc()
        _log.warning(
            "pool.restart", generation=generation, workers=self._workers
        )
        return generation

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._closed = True
            executor = self._executor
        self._reap(executor)
        executor.shutdown(wait=False, cancel_futures=True)
        if self._reader is not None:
            self._reader.close()


@dataclass
class BatchPlan:
    """A batch resolved into per-shard work, before any execution.

    ``slots`` maps each distinct spec to its submission positions;
    ``tasks`` maps each shard path to the distinct specs it must
    answer; ``answers`` pre-resolves specs that need no shard at all
    (unknown trajectory ids); ``range_specs`` lists the specs whose
    per-shard id lists must be unioned at merge time.
    """

    slots: dict = field(default_factory=dict)
    tasks: dict = field(default_factory=dict)
    answers: dict = field(default_factory=dict)
    range_specs: list = field(default_factory=list)
    cached: set = field(default_factory=set)  # specs served by hotcache

    @property
    def total(self) -> int:
        return sum(len(positions) for positions in self.slots.values())


class ShardedQueryEngine:
    """Batch queries over many archive files with a process pool.

    The pool (and each worker's open shards, indexes, and decode
    caches) persists across :meth:`run` calls, so a long-lived server
    pays the spawn and index-load cost once.  Use as a context manager
    or call :meth:`close`.

    ``network`` may be shared by every shard (the usual case: shards of
    one dataset); when ``None`` each worker rebuilds it from the
    shard's provenance, exactly like ``repro query`` does.

    Fault surface: a worker process dying mid-batch raises
    :class:`WorkerPoolBroken` from :meth:`run`; the engine stays usable
    — :meth:`restart_pool` respawns the workers (warm ``.stiu`` sidecar
    reloads) and the batch can be retried.  :mod:`repro.serve` wraps
    exactly these seams (:meth:`plan` / :meth:`merge` /
    :meth:`run_local` / :meth:`run_cold` and the :attr:`pool`) into a
    supervised always-on service.
    """

    def __init__(
        self,
        shard_paths: Sequence,
        *,
        network=None,
        workers: int | None = None,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
        verify_crc: bool = True,
        mp_context: str | None = None,
        pool: ShardWorkerPool | None = None,
        transport: str | None = None,
        hotcache_entries: int | None = None,
        dispatch_window: int | None = None,
    ) -> None:
        if not shard_paths:
            raise QueryEngineError("at least one shard path is required")
        self.shard_paths = [str(path) for path in shard_paths]
        if len(set(self.shard_paths)) != len(self.shard_paths):
            raise QueryEngineError("duplicate shard paths")
        self.network = network
        self.transport = query_transport.resolve_transport(transport)
        self.dispatch_window = resolve_dispatch_window(dispatch_window)
        self._config = {
            "network": network,
            "grid_cells_per_side": grid_cells_per_side,
            "time_partition_seconds": time_partition_seconds,
            "verify_crc": verify_crc,
        }
        if self.transport == query_transport.TRANSPORT_SHM:
            self._config["transport"] = {
                "kind": query_transport.TRANSPORT_SHM,
                "arena": query_transport.new_arena_id(),
                "slab_bytes": query_transport.resolve_slab_bytes(),
                # an entry may only be overwritten once it is at least
                # keep writes old — far beyond the dispatch window, so
                # a live descriptor always points at intact bytes
                "keep": max(64, 4 * self.dispatch_window),
            }
        self._route = self._build_routing(self.shard_paths)
        if workers is None:
            workers = min(len(self.shard_paths), os.cpu_count() or 1)
        self.workers = max(1, workers)
        self._closed = False
        self._local_engines: dict[str, BatchQueryEngine] = {}
        entries = resolve_hotcache_entries(hotcache_entries)
        self.hotcache = (
            HotTrajectoryCache(entries) if entries > 0 else None
        )
        self._transport_fallbacks = obs_metrics.counter(
            "repro_transport_fallbacks_total",
            help="Shard tasks re-executed locally after a transport error",
        )
        if pool is not None:
            self.pool: ShardWorkerPool | None = pool
        elif self.workers == 1:
            self.pool = None
        else:
            self.pool = ShardWorkerPool(
                self._config, workers=self.workers, mp_context=mp_context
            )

    @staticmethod
    def _build_routing(shard_paths: list[str]) -> dict[int, str]:
        """trajectory id -> shard path, from the directory headers only."""
        from ..io.format import read_header

        route: dict[int, str] = {}
        for path in shard_paths:
            with open(path, "rb") as stream:
                header = read_header(stream)
            for entry in header.directory:
                if entry.trajectory_id in route:
                    raise QueryEngineError(
                        f"trajectory {entry.trajectory_id} appears in "
                        f"both {route[entry.trajectory_id]} and {path}"
                    )
                route[entry.trajectory_id] = path
        return route

    def shard_for(self, trajectory_id: int) -> str | None:
        """Which shard holds ``trajectory_id`` (None: not in any)."""
        return self._route.get(trajectory_id)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the pool and every locally opened shard.  Idempotent:
        a second close is a no-op, never an error."""
        if self._closed:
            return
        self._closed = True
        if self.pool is not None:
            self.pool.close()
        engines, self._local_engines = self._local_engines, {}
        for engine in engines.values():
            archive = engine.processor.archive
            if not getattr(archive, "closed", False):
                archive.close()

    def restart_pool(self) -> None:
        """Respawn the worker processes after a :class:`WorkerPoolBroken`."""
        if self._closed:
            raise EngineClosedError("engine is closed")
        if self.pool is not None:
            self.pool.restart()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        try:
            self.close()
        except Exception:
            # never mask an in-flight exception with a teardown failure
            if exc_type is None:
                raise

    # ------------------------------------------------------------------
    # planning + merging (shared with repro.serve)
    # ------------------------------------------------------------------
    def plan(self, queries: Sequence[Query], *, gate=None) -> BatchPlan:
        """Resolve a batch into per-shard tasks without executing it.

        Duplicate queries are collapsed here — each distinct spec is
        shipped to (and answered by) each involved shard exactly once
        per batch.  ``gate`` (when given) is called with every shard
        path a spec would need, *before* any hot-cache short circuit —
        so a quarantined shard refuses its queries even when their
        answers are cached (the serving tier's contract: no answers
        from behind a quarantine).  Hot-cache hits land directly in
        ``plan.answers`` and never become shard tasks — for a sharded
        request that is the whole IPC cost of the spec, gone.
        """
        plan = BatchPlan()
        for position, query in enumerate(queries):
            if not isinstance(query, (WhereQuery, WhenQuery, RangeQuery)):
                raise QueryEngineError(
                    f"not a query spec: {query!r} (position {position})"
                )
            plan.slots.setdefault(query, []).append(position)
        for spec in plan.slots:
            if isinstance(spec, RangeQuery):
                involved = self.shard_paths
            else:
                path = self._route.get(spec.trajectory_id)
                if path is None:
                    plan.answers[spec] = []  # unknown trajectory: empty
                    continue
                involved = (path,)
            if gate is not None:
                for path in involved:
                    gate(path)
            if self.hotcache is not None:
                hit = self.hotcache.get(spec)
                if hit is not MISS:
                    plan.answers[spec] = hit
                    plan.cached.add(spec)
                    continue
            if isinstance(spec, RangeQuery):
                plan.range_specs.append(spec)
            for path in involved:
                plan.tasks.setdefault(path, []).append(spec)
        return plan

    def merge(self, plan: BatchPlan, task_results) -> list:
        """Assemble submission-ordered results from per-shard answers.

        ``task_results`` yields ``(specs, shard_answers)`` pairs, one
        per executed task; range answers are unioned across shards.
        Freshly computed answers are offered to the hot cache here —
        after the union, so a cached range answer is always the full
        cross-shard merge.
        """
        answers = dict(plan.answers)
        partial_ranges: dict[Query, set[int]] = {
            spec: set() for spec in plan.range_specs
        }
        executed: set = set()
        for specs, shard_answers in task_results:
            for spec, answer in zip(specs, shard_answers):
                executed.add(spec)
                if isinstance(spec, RangeQuery):
                    partial_ranges[spec].update(answer)
                else:
                    answers[spec] = answer
        for spec, union in partial_ranges.items():
            answers[spec] = sorted(union)
        if self.hotcache is not None:
            for spec in executed:
                self.hotcache.offer(spec, answers[spec])

        results: list = [None] * plan.total
        for spec, positions in plan.slots.items():
            answer = answers[spec]
            for position in positions:
                results[position] = answer
        return results

    def clear_hotcache(self) -> None:
        """Drop every hot-cached answer (no-op when the tier is off).

        The serving tier calls this whenever its view of shard
        immutability resets — quarantine and re-admission."""
        if self.hotcache is not None:
            self.hotcache.clear()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, queries: Sequence[Query]) -> list:
        """Answer every query; results align with the submission order.

        When the caller has a trace open (:func:`repro.obs.trace.
        start_trace`), the run contributes ``plan``/``shard:*``/``merge``
        spans — including worker-side span trees grafted back across the
        process boundary with their IPC overhead quantified.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        with obs_trace.trace_span("plan", queries=len(queries)):
            plan = self.plan(queries)
        task_results = list(self._execute_tasks(plan.tasks))
        obs_metrics.counter(
            "repro_engine_queries_total", labels={"engine": "sharded"}
        ).inc(len(queries))
        with obs_trace.trace_span("merge", tasks=len(task_results)):
            return self.merge(plan, task_results)

    def _execute_tasks(self, tasks: dict[str, list]):
        items = sorted(tasks.items())
        if self.pool is None:
            for path, specs in items:
                with obs_trace.trace_span(
                    "shard.local", path=os.path.basename(path)
                ):
                    yield specs, self.run_local(path, specs)
            return
        parent = obs_trace.current_span()
        traced = parent is not None
        decode = getattr(self.pool, "decode", None)
        # Pipelined dispatch: keep up to ``dispatch_window`` shard
        # sub-batches in flight before collecting the oldest, so shard
        # roundtrips overlap instead of serialising (the pr5-era
        # near-sequential profile in docs/observability.md).  Collection
        # stays in submission order — merge() is order-insensitive, but
        # deterministic traces are easier to read.
        window = max(1, self.dispatch_window)
        pending: deque = deque()
        cursor = 0
        try:
            while pending or cursor < len(items):
                while cursor < len(items) and len(pending) < window:
                    path, specs = items[cursor]
                    cursor += 1
                    pending.append((
                        path, specs, time.perf_counter(),
                        self.pool.submit(path, specs, traced=traced),
                    ))
                path, specs, submitted, future = pending.popleft()
                payload = future.result()
                roundtrip = time.perf_counter() - submitted
                if traced:
                    payload = _graft_shard_span(
                        parent, path, specs, payload, roundtrip
                    )
                if decode is not None:
                    try:
                        payload = decode(payload)
                    except TransportError as error:
                        # Slab unreadable (stale generation, torn entry,
                        # vanished segment): the worker's answer is lost
                        # but the batch is not — recompute in-process.
                        self._transport_fallbacks.inc()
                        _log.warning(
                            "shm transport failed for %s (%s); "
                            "recomputing shard in-process",
                            os.path.basename(path), error,
                        )
                        with obs_trace.trace_span(
                            "shard.transport_fallback",
                            path=os.path.basename(path),
                        ):
                            payload = self.run_local(path, specs)
                yield specs, payload
        except BrokenProcessPool as error:
            raise WorkerPoolBroken(
                f"a shard worker died mid-batch: {error}; call "
                f"restart_pool() and retry"
            ) from error

    def run_local(self, path: str, specs: Sequence[Query]) -> list:
        """Execute one shard task in-process on a persistent engine.

        This is the sharded path's own workers==1 mode, and the serving
        ladder's first fallback when the pool is unhealthy.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        return self._local_engine(path).run(specs)

    def run_cold(self, path: str, specs: Sequence[Query]) -> list:
        """Execute one shard task with nothing long-lived at all.

        Opens the archive fresh, answers each query through a
        throwaway :class:`~repro.query.queries.UTCQQueryProcessor`, and
        closes it — the serving ladder's last rung, immune to any state
        a persistent engine may have accumulated.
        """
        if self._closed:
            raise EngineClosedError("engine is closed")
        network = self._resolve_network(path)
        index = StIUIndex.over_file(
            network,
            path,
            verify_crc=self._config["verify_crc"],
            grid_cells_per_side=self._config["grid_cells_per_side"],
            time_partition_seconds=self._config["time_partition_seconds"],
        )
        try:
            answers = []
            for spec in specs:
                processor = UTCQQueryProcessor(
                    network, index.archive, index
                )
                try:
                    if isinstance(spec, WhereQuery):
                        answers.append(
                            processor.where(
                                spec.trajectory_id, spec.t, spec.alpha
                            )
                        )
                    elif isinstance(spec, WhenQuery):
                        answers.append(
                            processor.when(
                                spec.trajectory_id,
                                spec.edge,
                                spec.relative_distance,
                                spec.alpha,
                            )
                        )
                    else:
                        answers.append(
                            processor.range(spec.rect, spec.t, spec.alpha)
                        )
                except KeyError:
                    answers.append([])
            return answers
        finally:
            index.archive.close()

    def drop_local_engine(self, path: str) -> None:
        """Forget a locally opened shard (e.g. after quarantine)."""
        engine = self._local_engines.pop(str(path), None)
        if engine is not None:
            archive = engine.processor.archive
            if not getattr(archive, "closed", False):
                archive.close()

    def _resolve_network(self, path: str):
        network = self.network
        if network is None:
            from ..io.reader import FileBackedArchive

            with FileBackedArchive.open(path) as probe:
                network = build_network_from_provenance(probe.provenance)
        return network

    def _local_engine(self, path: str) -> BatchQueryEngine:
        engine = self._local_engines.get(path)
        if engine is None:
            engine = _open_shard_engine(
                path,
                self._resolve_network(path),
                grid_cells_per_side=self._config["grid_cells_per_side"],
                time_partition_seconds=self._config["time_partition_seconds"],
                verify_crc=self._config["verify_crc"],
            )
            self._local_engines[path] = engine
        return engine


