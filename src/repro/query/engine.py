"""Batch and shard-parallel execution of where/when/range queries.

Serving millions of users means queries arrive in bulk, not one at a
time.  This module adds two layers over
:class:`~repro.query.queries.UTCQQueryProcessor`:

* :class:`BatchQueryEngine` — accepts many queries at once against one
  archive.  Identical queries are answered once, and execution is
  reordered (results are still returned in submission order) so queries
  touching the same trajectory or time interval run back-to-back:
  their SIAR time decodes, reference/factor decodes, chainage tables,
  and Lemma-4 index probes all hit the shared
  :class:`~repro.core.decoder.DecodeSpanCache` instead of being
  repeated per query.
* :class:`ShardedQueryEngine` — fans a batch out across several archive
  files ("shards") with a persistent process pool.  where/when queries
  are routed to the single shard holding their trajectory (via the
  archives' directory headers — no record is touched); range queries
  broadcast to every shard and the id lists are unioned.  Workers keep
  their shard's archive, sidecar-loaded StIU index, and decode cache
  alive between batches, so steady-state throughput scales with cores.

Every result is exactly what a lone
:class:`~repro.query.queries.UTCQQueryProcessor` (and therefore the
brute-force oracle, up to PDDP error) would produce; the engine only
changes *how often* shared work is done.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass
from typing import Sequence, Union

from ..core.decoder import DecodeSpanCache
from ..network.grid import Rect
from ..trajectories.model import EdgeKey
from .queries import UTCQQueryProcessor, WhenResult, WhereResult
from .stiu import StIUIndex


class QueryEngineError(Exception):
    """Raised for malformed batch specs or unusable shards."""


# ----------------------------------------------------------------------
# query specs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WhereQuery:
    """Definition 10: where was trajectory ``trajectory_id`` at ``t``?"""

    trajectory_id: int
    t: int
    alpha: float


@dataclass(frozen=True)
class WhenQuery:
    """Definition 11: when did the trajectory pass ``<edge, rd>``?"""

    trajectory_id: int
    edge: EdgeKey
    relative_distance: float
    alpha: float


@dataclass(frozen=True)
class RangeQuery:
    """Definition 12: which trajectories overlap ``rect`` at ``t``?"""

    rect: Rect
    t: int
    alpha: float


Query = Union[WhereQuery, WhenQuery, RangeQuery]


def query_from_dict(document: dict) -> Query:
    """Parse one JSON query object (the ``repro query batch`` format)."""
    try:
        kind = document.get("kind")
        if kind == "where":
            return WhereQuery(
                int(document["trajectory"]),
                int(document["time"]),
                float(document.get("alpha", 0.0)),
            )
        if kind == "when":
            edge = document["edge"]
            if len(edge) != 2:
                raise QueryEngineError(
                    f"'edge' must be [start, end], got {edge!r}"
                )
            return WhenQuery(
                int(document["trajectory"]),
                (int(edge[0]), int(edge[1])),
                float(document.get("rd", 0.5)),
                float(document.get("alpha", 0.0)),
            )
        if kind == "range":
            rect = document["rect"]
            if len(rect) != 4:
                raise QueryEngineError(
                    f"'rect' must be [minx, miny, maxx, maxy], got {rect!r}"
                )
            return RangeQuery(
                Rect(*(float(value) for value in rect)),
                int(document["time"]),
                float(document.get("alpha", 0.0)),
            )
    except QueryEngineError:
        raise
    except KeyError as error:
        raise QueryEngineError(
            f"query object missing field {error.args[0]!r}: {document!r}"
        ) from None
    except (TypeError, ValueError, AttributeError) as error:
        raise QueryEngineError(
            f"malformed query object {document!r}: {error}"
        ) from None
    raise QueryEngineError(
        f"unknown query kind {kind!r} (expected where/when/range)"
    )


def result_to_jsonable(query: Query, result) -> object:
    """Render one result the way the single-query CLI paths do."""
    if isinstance(query, WhereQuery):
        return [
            {
                "instance": r.instance_index,
                "edge": list(r.edge),
                "ndist": r.ndist,
                "probability": r.probability,
            }
            for r in result
        ]
    if isinstance(query, WhenQuery):
        return [
            {
                "instance": r.instance_index,
                "time": r.time,
                "probability": r.probability,
            }
            for r in result
        ]
    return list(result)


# ----------------------------------------------------------------------
# single-archive batch engine
# ----------------------------------------------------------------------
class BatchQueryEngine:
    """Run many queries against one archive, sharing decoded spans."""

    def __init__(
        self,
        network,
        archive,
        index: StIUIndex,
        *,
        cache: DecodeSpanCache | None = None,
    ) -> None:
        self.processor = UTCQQueryProcessor(
            network, archive, index, cache=cache
        )

    @property
    def counters(self):
        return self.processor.counters

    def run(self, queries: Sequence[Query]) -> list:
        """Answer every query; results align with the submission order.

        A where/when query naming a trajectory the archive does not hold
        returns ``[]`` (serving semantics — one bad id must not poison a
        batch).
        """
        slots: dict[Query, list[int]] = {}
        for position, query in enumerate(queries):
            if not isinstance(query, (WhereQuery, WhenQuery, RangeQuery)):
                raise QueryEngineError(
                    f"not a query spec: {query!r} (position {position})"
                )
            slots.setdefault(query, []).append(position)
        results: list = [None] * len(queries)
        for query in sorted(slots, key=self._execution_key):
            answer = self._execute(query)
            for position in slots[query]:
                results[position] = answer
        return results

    @staticmethod
    def _execution_key(query: Query) -> tuple:
        # trajectory-directed queries grouped per trajectory; range
        # queries grouped by query time so interval candidate sets and
        # Lemma-4 cell masses stay hot in the processor's memos
        if isinstance(query, WhereQuery):
            return (0, query.trajectory_id, query.t)
        if isinstance(query, WhenQuery):
            return (1, query.trajectory_id, query.edge, query.relative_distance)
        return (2, query.t, query.rect.min_x, query.rect.min_y)

    def _execute(self, query: Query):
        processor = self.processor
        try:
            if isinstance(query, WhereQuery):
                return processor.where(
                    query.trajectory_id, query.t, query.alpha
                )
            if isinstance(query, WhenQuery):
                return processor.when(
                    query.trajectory_id,
                    query.edge,
                    query.relative_distance,
                    query.alpha,
                )
            return processor.range(query.rect, query.t, query.alpha)
        except KeyError:
            return []


# ----------------------------------------------------------------------
# shard-parallel engine
# ----------------------------------------------------------------------
def build_network_from_provenance(provenance: dict[str, str]):
    from ..network.generators import dataset_network
    from ..trajectories.datasets import profile as dataset_profile

    profile_name = provenance.get("profile")
    seed = provenance.get("dataset_seed")
    scale = provenance.get("network_scale")
    if profile_name is None or seed is None:
        raise QueryEngineError(
            "shard carries no dataset provenance; pass an explicit "
            "network to ShardedQueryEngine"
        )
    if scale is None:
        scale = dataset_profile(profile_name).network_scale
    return dataset_network(profile_name, scale=int(scale), seed=int(seed))


def _open_shard_engine(
    path,
    network,
    *,
    grid_cells_per_side: int,
    time_partition_seconds: int,
    verify_crc: bool,
) -> BatchQueryEngine:
    if network is None:
        raise QueryEngineError("network must be resolved before opening")
    index = StIUIndex.over_file(
        network,
        path,
        verify_crc=verify_crc,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
    )
    return BatchQueryEngine(network, index.archive, index)


# worker-global state, installed by the pool initializer: shard engines
# (archive + sidecar index + decode cache) persist across batches
_worker_config: dict | None = None
_worker_engines: dict[str, BatchQueryEngine] = {}


def _init_query_worker(config: dict) -> None:
    global _worker_config
    _worker_config = config
    _worker_engines.clear()


def _shard_engine_for(path: str) -> BatchQueryEngine:
    assert _worker_config is not None
    engine = _worker_engines.get(path)
    if engine is None:
        network = _worker_config["network"]
        if network is None:
            from ..io.reader import FileBackedArchive

            with FileBackedArchive.open(path) as probe:
                network = build_network_from_provenance(probe.provenance)
        engine = _open_shard_engine(
            path,
            network,
            grid_cells_per_side=_worker_config["grid_cells_per_side"],
            time_partition_seconds=_worker_config["time_partition_seconds"],
            verify_crc=_worker_config["verify_crc"],
        )
        _worker_engines[path] = engine
    return engine


def _run_shard_batch(task: tuple) -> list:
    path, queries = task
    return _shard_engine_for(path).run(queries)


class ShardedQueryEngine:
    """Batch queries over many archive files with a process pool.

    The pool (and each worker's open shards, indexes, and decode
    caches) persists across :meth:`run` calls, so a long-lived server
    pays the spawn and index-load cost once.  Use as a context manager
    or call :meth:`close`.

    ``network`` may be shared by every shard (the usual case: shards of
    one dataset); when ``None`` each worker rebuilds it from the
    shard's provenance, exactly like ``repro query`` does.
    """

    def __init__(
        self,
        shard_paths: Sequence,
        *,
        network=None,
        workers: int | None = None,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
        verify_crc: bool = True,
        mp_context: str | None = None,
    ) -> None:
        if not shard_paths:
            raise QueryEngineError("at least one shard path is required")
        self.shard_paths = [str(path) for path in shard_paths]
        if len(set(self.shard_paths)) != len(self.shard_paths):
            raise QueryEngineError("duplicate shard paths")
        self.network = network
        self._config = {
            "network": network,
            "grid_cells_per_side": grid_cells_per_side,
            "time_partition_seconds": time_partition_seconds,
            "verify_crc": verify_crc,
        }
        self._route = self._build_routing(self.shard_paths)
        if workers is None:
            workers = min(len(self.shard_paths), os.cpu_count() or 1)
        self.workers = max(1, workers)
        self._closed = False
        self._local_engines: dict[str, BatchQueryEngine] = {}
        if self.workers == 1:
            self._pool = None
        else:
            context = multiprocessing.get_context(mp_context)
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_init_query_worker,
                initargs=(self._config,),
            )

    @staticmethod
    def _build_routing(shard_paths: list[str]) -> dict[int, str]:
        """trajectory id -> shard path, from the directory headers only."""
        from ..io.format import read_header

        route: dict[int, str] = {}
        for path in shard_paths:
            with open(path, "rb") as stream:
                header = read_header(stream)
            for entry in header.directory:
                if entry.trajectory_id in route:
                    raise QueryEngineError(
                        f"trajectory {entry.trajectory_id} appears in "
                        f"both {route[entry.trajectory_id]} and {path}"
                    )
                route[entry.trajectory_id] = path
        return route

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
        for engine in self._local_engines.values():
            engine.processor.archive.close()
        self._local_engines.clear()

    def __enter__(self) -> "ShardedQueryEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, queries: Sequence[Query]) -> list:
        """Answer every query; results align with the submission order.

        Duplicate queries are collapsed before anything crosses a
        process boundary — each distinct spec is shipped to (and
        answered by) each involved shard exactly once per batch.
        """
        if self._closed:
            raise QueryEngineError("engine is closed")
        slots: dict[Query, list[int]] = {}
        for position, query in enumerate(queries):
            if not isinstance(query, (WhereQuery, WhenQuery, RangeQuery)):
                raise QueryEngineError(
                    f"not a query spec: {query!r} (position {position})"
                )
            slots.setdefault(query, []).append(position)

        answers: dict[Query, object] = {}
        tasks: dict[str, list[Query]] = {}
        range_specs: list[RangeQuery] = []
        for spec in slots:
            if isinstance(spec, RangeQuery):
                range_specs.append(spec)
                for path in self.shard_paths:
                    tasks.setdefault(path, []).append(spec)
            else:
                path = self._route.get(spec.trajectory_id)
                if path is None:
                    answers[spec] = []  # unknown trajectory: empty result
                else:
                    tasks.setdefault(path, []).append(spec)

        partial_ranges: dict[Query, set[int]] = {
            spec: set() for spec in range_specs
        }
        for specs, shard_answers in self._execute_tasks(tasks):
            for spec, answer in zip(specs, shard_answers):
                if isinstance(spec, RangeQuery):
                    partial_ranges[spec].update(answer)
                else:
                    answers[spec] = answer
        for spec, union in partial_ranges.items():
            answers[spec] = sorted(union)

        results: list = [None] * len(queries)
        for spec, positions in slots.items():
            answer = answers[spec]
            for position in positions:
                results[position] = answer
        return results

    def _execute_tasks(self, tasks: dict[str, list]):
        items = sorted(tasks.items())
        if self._pool is None:
            for path, specs in items:
                yield specs, self._local_engine(path).run(specs)
            return
        async_results = [
            (specs, self._pool.apply_async(_run_shard_batch, ((path, specs),)))
            for path, specs in items
        ]
        for specs, async_result in async_results:
            yield specs, async_result.get()

    def _local_engine(self, path: str) -> BatchQueryEngine:
        engine = self._local_engines.get(path)
        if engine is None:
            network = self.network
            if network is None:
                from ..io.reader import FileBackedArchive

                with FileBackedArchive.open(path) as probe:
                    network = build_network_from_provenance(probe.provenance)
            engine = _open_shard_engine(
                path,
                network,
                grid_cells_per_side=self._config["grid_cells_per_side"],
                time_partition_seconds=self._config["time_partition_seconds"],
                verify_crc=self._config["verify_crc"],
            )
            self._local_engines[path] = engine
        return engine


