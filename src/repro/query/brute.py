"""Brute-force query oracle over *uncompressed* uncertain trajectories.

The oracle defines ground truth for two purposes: correctness tests of
the compressed-query processor, and the Fig. 11 accuracy study (average
difference and F1 between results on original versus compressed data,
where the only information loss is PDDP's error-bounded distances and
probabilities).
"""

from __future__ import annotations

from ..network.graph import RoadNetwork
from ..network.grid import Rect
from ..trajectories.model import EdgeKey, UncertainTrajectory
from ..trajectories.path import InstanceChainage
from .queries import WhenResult, WhereResult


class BruteForceOracle:
    """Direct evaluation of Definitions 10-12 on raw trajectories."""

    def __init__(
        self, network: RoadNetwork, trajectories: list[UncertainTrajectory]
    ) -> None:
        self.network = network
        self.trajectories = {t.trajectory_id: t for t in trajectories}
        self._chains: dict[tuple[int, int], InstanceChainage] = {}

    def _chain(self, trajectory_id: int, index: int) -> InstanceChainage:
        key = (trajectory_id, index)
        chain = self._chains.get(key)
        if chain is None:
            trajectory = self.trajectories[trajectory_id]
            chain = InstanceChainage(
                self.network, trajectory.instances[index]
            )
            self._chains[key] = chain
        return chain

    def where(
        self, trajectory_id: int, t: int, alpha: float
    ) -> list[WhereResult]:
        trajectory = self.trajectories[trajectory_id]
        times = list(trajectory.times)
        results: list[WhereResult] = []
        for index, instance in enumerate(trajectory.instances):
            if instance.probability < alpha:
                continue
            position = self._chain(trajectory_id, index).position_at_time(
                times, t
            )
            if position is not None:
                results.append(
                    WhereResult(
                        trajectory_id,
                        index,
                        position.edge,
                        position.ndist,
                        instance.probability,
                    )
                )
        return results

    def when(
        self,
        trajectory_id: int,
        edge: EdgeKey,
        relative_distance: float,
        alpha: float,
    ) -> list[WhenResult]:
        trajectory = self.trajectories[trajectory_id]
        times = list(trajectory.times)
        ndist = relative_distance * self.network.edge_length(*edge)
        results: list[WhenResult] = []
        for index, instance in enumerate(trajectory.instances):
            if instance.probability < alpha:
                continue
            chain = self._chain(trajectory_id, index)
            for passing in chain.times_at_position(times, edge, ndist):
                results.append(
                    WhenResult(
                        trajectory_id, index, passing, instance.probability
                    )
                )
        return results

    def range(self, region: Rect, t: int, alpha: float) -> list[int]:
        results: list[int] = []
        for trajectory in self.trajectories.values():
            if not trajectory.start_time <= t <= trajectory.end_time:
                continue
            times = list(trajectory.times)
            total = 0.0
            for index, instance in enumerate(trajectory.instances):
                chain = self._chain(trajectory.trajectory_id, index)
                position = chain.position_at_time(times, t)
                if position is None:
                    continue
                a = self.network.vertex(position.edge[0])
                b = self.network.vertex(position.edge[1])
                fraction = position.ndist / self.network.edge_length(
                    *position.edge
                )
                x = a.x + (b.x - a.x) * fraction
                y = a.y + (b.y - a.y) * fraction
                if region.contains(x, y):
                    total += instance.probability
            if total >= alpha:
                results.append(trajectory.trajectory_id)
        return sorted(results)
