"""Shared-memory result transport between shard workers and the parent.

The default parent↔worker data plane of
:class:`~repro.query.engine.ShardedQueryEngine` pays for every answer
twice: the worker pickles the result list into the executor's result
pipe and the parent unpickles it — per shard, per batch.  PR 8's
tracing showed that tax (``ipc_share``) dominating the sharded path at
steady state.  This module removes it:

* each worker owns one **slab** — a pooled
  :class:`multiprocessing.shared_memory.SharedMemory` segment named
  ``repro-shm-<arena>-g<generation>-p<pid>`` — and appends answer
  payloads to it through a bump allocator with wraparound;
* an entry is ``[header | payload]`` where the header carries a magic,
  a format version, the **pool generation** (so descriptors from a
  pre-respawn worker can never be read against a post-respawn slab), a
  per-writer sequence number, the payload length, and a CRC-32 of the
  payload;
* the task result that crosses the process boundary is only a
  **descriptor** (slab name, offset, length, generation, seq, crc) —
  a few dozen bytes regardless of answer size;
* the parent attaches the slab once, validates the header and CRC
  against the descriptor, and decodes the answers straight out of a
  ``memoryview`` of the slab — no copy of the payload bytes, no
  pickle.

Answers travel in a fixed binary codec (:func:`encode_answers` /
:func:`decode_answers_blob`): ``WhereResult`` / ``WhenResult`` records
and range id lists as packed little-endian structs.  ``struct`` round
trips ``float('d')`` values exactly, so decoded results are
bit-identical to what the worker computed — the oracle-identity pin
holds on both transports.

Every rung degrades, never breaks:

* an answer the codec cannot express (:class:`UnencodableAnswers`),
  a slab that cannot be created, or a write that would tear a
  still-protected recent entry falls back to an **inline** payload —
  the answers ride the pickle pipe for that one task, tagged so the
  parent knows;
* a descriptor that fails validation on the parent side (stale
  generation, torn header, CRC mismatch) raises
  :class:`TransportError`, and the caller re-executes that shard task
  locally — a transport fault costs one fallback, never a wrong
  answer;
* ``--transport pickle`` (env ``REPRO_TRANSPORT``) switches the whole
  plane back to plain pickled results.

Overwrite safety is by construction, with the CRC as defense in depth:
the writer never reuses the bytes of its most recent ``keep`` entries
(``keep`` is sized to at least 4x the parent's dispatch window), and
the parent consumes each descriptor before more than a window of
further tasks can be submitted to that worker.

Lifecycle: workers never unlink — the parent is the single point of
truth.  :meth:`SlabReaderPool.invalidate` (on pool respawn) and
:meth:`SlabReaderPool.close` unlink every slab of dead generations by
deterministic-name sweep of ``/dev/shm``, which also catches slabs of
workers that crashed before returning a single descriptor.  On Python
3.11 every attach registers the segment with the resource tracker, so
unlinks tolerate the name being gone already.
"""

from __future__ import annotations

import itertools
import os
import struct
import threading
import zlib
from collections import deque
from multiprocessing import shared_memory

from ..config import env_choice, env_int
from ..obs import metrics as obs_metrics
from ..obs.log import get_logger

_log = get_logger("repro.query.transport")

TRANSPORT_PICKLE = "pickle"
TRANSPORT_SHM = "shm"
TRANSPORTS = (TRANSPORT_PICKLE, TRANSPORT_SHM)

#: tags on payloads that cross the process boundary under shm transport
TAG_SHM = "repro-shm"
TAG_INLINE = "repro-inline"

_SLAB_PREFIX = "repro-shm-"
_DEFAULT_SLAB_BYTES = 4 << 20
_MIN_SLAB_BYTES = 64 << 10

# entry header: magic, format version, pool generation, writer seq,
# payload length, payload crc32 — little-endian, no padding
_HEADER = struct.Struct("<2sHIQII")
_MAGIC = b"RS"
_VERSION = 1
_ALIGN = 8

# answer codec record layouts (see repro.query.queries)
_WHERE_REC = struct.Struct("<qiqqdd")  # traj, idx, edge0, edge1, ndist, p
_WHEN_REC = struct.Struct("<qidd")  # traj, idx, time, p
_RANGE_REC = struct.Struct("<q")  # trajectory id
_LIST_HEAD = struct.Struct("<BI")  # tag, record count
_BLOB_HEAD = struct.Struct("<I")  # answer-list count

_TAG_WHERE = 0
_TAG_WHEN = 1
_TAG_RANGE = 2

_arena_counter = itertools.count()


class TransportError(Exception):
    """A shm descriptor could not be resolved to a valid payload.

    Stale generation, missing slab, torn header, or CRC mismatch — the
    caller must re-execute the shard task through a fallback path; the
    descriptor is never partially trusted.
    """


class UnencodableAnswers(Exception):
    """An answer list the binary codec cannot express (worker-side
    signal to fall back to an inline pickled payload)."""


def resolve_transport(explicit: str | None = None) -> str:
    """Pick the transport: explicit argument > ``REPRO_TRANSPORT`` >
    shared memory (the default data plane)."""
    if explicit is not None:
        choice = explicit.strip().lower()
        if choice not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {choice!r} "
                f"(expected one of {TRANSPORTS})"
            )
        return choice
    return env_choice("REPRO_TRANSPORT", TRANSPORT_SHM, TRANSPORTS)


def resolve_slab_bytes() -> int:
    return env_int(
        "REPRO_SLAB_BYTES", _DEFAULT_SLAB_BYTES, minimum=_MIN_SLAB_BYTES
    )


def new_arena_id() -> str:
    """A per-pool arena id; embeds the parent pid so concurrent pools
    (tests, benches) never collide in ``/dev/shm``."""
    return f"{os.getpid():x}x{next(_arena_counter):x}"


def slab_name(arena: str, generation: int, pid: int) -> str:
    return f"{_SLAB_PREFIX}{arena}-g{generation}-p{pid}"


def _slab_generation(name: str, arena: str) -> int | None:
    """Parse the generation out of a slab name of ``arena`` (else None)."""
    prefix = f"{_SLAB_PREFIX}{arena}-g"
    if not name.startswith(prefix):
        return None
    rest = name[len(prefix):]
    generation, _, tail = rest.partition("-p")
    if not generation.isdigit() or not tail.isdigit():
        return None
    return int(generation)


# ----------------------------------------------------------------------
# answer codec
# ----------------------------------------------------------------------
def encode_answers(answers) -> bytes:
    """Pack a per-task answer list into the fixed binary blob.

    Raises :class:`UnencodableAnswers` for any shape outside the three
    result kinds — the caller falls back to an inline payload.
    """
    from .queries import WhenResult, WhereResult

    parts = [_BLOB_HEAD.pack(len(answers))]
    try:
        for answer in answers:
            if not isinstance(answer, list):
                raise UnencodableAnswers(f"not a list: {type(answer)!r}")
            if not answer:
                parts.append(_LIST_HEAD.pack(_TAG_RANGE, 0))
                continue
            first = answer[0]
            if isinstance(first, WhereResult):
                parts.append(_LIST_HEAD.pack(_TAG_WHERE, len(answer)))
                for r in answer:
                    parts.append(
                        _WHERE_REC.pack(
                            r.trajectory_id, r.instance_index,
                            r.edge[0], r.edge[1], r.ndist, r.probability,
                        )
                    )
            elif isinstance(first, WhenResult):
                parts.append(_LIST_HEAD.pack(_TAG_WHEN, len(answer)))
                for r in answer:
                    parts.append(
                        _WHEN_REC.pack(
                            r.trajectory_id, r.instance_index,
                            r.time, r.probability,
                        )
                    )
            elif isinstance(first, int) and not isinstance(first, bool):
                parts.append(_LIST_HEAD.pack(_TAG_RANGE, len(answer)))
                for trajectory_id in answer:
                    parts.append(_RANGE_REC.pack(trajectory_id))
            else:
                raise UnencodableAnswers(
                    f"unsupported element type {type(first)!r}"
                )
    except (struct.error, AttributeError, IndexError, TypeError) as error:
        raise UnencodableAnswers(str(error)) from None
    return b"".join(parts)


def decode_answers_blob(buffer) -> list:
    """Unpack :func:`encode_answers` output from a bytes-like view.

    Reads records straight out of ``buffer`` (a slab ``memoryview`` on
    the zero-copy path) with ``unpack_from``; only the reconstructed
    result objects are allocated.
    """
    from .queries import WhenResult, WhereResult

    try:
        (count,) = _BLOB_HEAD.unpack_from(buffer, 0)
        offset = _BLOB_HEAD.size
        answers: list = []
        for _ in range(count):
            tag, n = _LIST_HEAD.unpack_from(buffer, offset)
            offset += _LIST_HEAD.size
            if tag == _TAG_WHERE:
                items = []
                for _ in range(n):
                    t, i, e0, e1, nd, p = _WHERE_REC.unpack_from(
                        buffer, offset
                    )
                    offset += _WHERE_REC.size
                    items.append(WhereResult(t, i, (e0, e1), nd, p))
            elif tag == _TAG_WHEN:
                items = []
                for _ in range(n):
                    t, i, at, p = _WHEN_REC.unpack_from(buffer, offset)
                    offset += _WHEN_REC.size
                    items.append(WhenResult(t, i, at, p))
            elif tag == _TAG_RANGE:
                items = [
                    _RANGE_REC.unpack_from(
                        buffer, offset + k * _RANGE_REC.size
                    )[0]
                    for k in range(n)
                ]
                offset += n * _RANGE_REC.size
            else:
                raise TransportError(f"unknown answer tag {tag}")
            answers.append(items)
        return answers
    except struct.error as error:
        raise TransportError(f"truncated answer blob: {error}") from None


# ----------------------------------------------------------------------
# worker side: slab writer
# ----------------------------------------------------------------------
class SlabWriter:
    """One worker's append-only (with wraparound) shared-memory slab.

    The last ``keep`` written entries are *protected*: a new write that
    would overlap any of their bytes is relocated past them, and if no
    room remains (pathologically large payloads) the write is refused
    and the caller ships the answers inline instead.  Combined with the
    parent consuming descriptors within a dispatch window that is
    strictly smaller than ``keep``, an entry can never be overwritten
    while a live descriptor still points at it.
    """

    def __init__(
        self,
        arena: str,
        *,
        generation: int,
        size: int | None = None,
        keep: int = 64,
    ) -> None:
        self.arena = arena
        self.generation = generation
        self.size = size or resolve_slab_bytes()
        self.keep = max(1, keep)
        self.name = slab_name(arena, generation, os.getpid())
        try:
            self._shm = shared_memory.SharedMemory(
                name=self.name, create=True, size=self.size
            )
        except FileExistsError:
            # pid reuse across generations of different arenas is the
            # only way here; the old segment is dead weight — replace it
            stale = shared_memory.SharedMemory(name=self.name)
            stale.close()
            _unlink_quietly(stale)
            self._shm = shared_memory.SharedMemory(
                name=self.name, create=True, size=self.size
            )
        self._offset = 0
        self._seq = 0
        self._recent: deque[tuple[int, int]] = deque(maxlen=self.keep)

    def write(self, payload: bytes) -> dict | None:
        """Append one entry; returns its descriptor, or None (no safe
        room — the caller must ship the payload inline)."""
        start = self._allocate(_HEADER.size + len(payload))
        if start is None:
            return None
        return self._commit(start, payload, torn=False)

    def write_torn(self, payload: bytes) -> dict | None:
        """Chaos hook: write a valid header but only half the payload —
        the on-slab state of a worker killed mid-write."""
        start = self._allocate(_HEADER.size + len(payload))
        if start is None:
            return None
        return self._commit(start, payload, torn=True)

    def _allocate(self, total: int) -> int | None:
        if total > self.size:
            return None
        start = _aligned(self._offset)
        wraps = 0
        while True:
            if start + total > self.size:
                start = 0
                wraps += 1
                if wraps > 1:
                    return None  # protected tail fills the slab
            clash = self._protected_end(start, start + total)
            if clash is None:
                return start
            start = _aligned(clash)

    def _protected_end(self, start: int, end: int) -> int | None:
        """End offset of the furthest protected entry overlapping
        [start, end), or None when the region is free."""
        furthest = None
        for held_start, held_end in self._recent:
            if held_start < end and start < held_end:
                if furthest is None or held_end > furthest:
                    furthest = held_end
        return furthest

    def _commit(self, start: int, payload: bytes, *, torn: bool) -> dict:
        seq = self._seq
        self._seq += 1
        crc = zlib.crc32(payload)
        buf = self._shm.buf
        _HEADER.pack_into(
            buf, start, _MAGIC, _VERSION, self.generation, seq,
            len(payload), crc,
        )
        body = start + _HEADER.size
        written = payload if not torn else payload[: len(payload) // 2]
        buf[body:body + len(written)] = written
        end = start + _HEADER.size + len(payload)
        self._offset = end
        self._recent.append((start, end))
        return {
            "slab": self.name,
            "offset": start,
            "length": len(payload),
            "generation": self.generation,
            "seq": seq,
            "crc": crc,
        }

    def close(self) -> None:
        try:
            self._shm.close()
        except (OSError, BufferError):  # pragma: no cover - teardown race
            pass


def _aligned(offset: int) -> int:
    return (offset + _ALIGN - 1) & ~(_ALIGN - 1)


# ----------------------------------------------------------------------
# parent side: reader pool + lifecycle
# ----------------------------------------------------------------------
class SlabReaderPool:
    """Parent-side attach cache and the single owner of slab cleanup."""

    def __init__(self, arena: str, *, generation: int = 0) -> None:
        self.arena = arena
        self.generation = generation
        self._lock = threading.Lock()
        self._attached: dict[str, shared_memory.SharedMemory] = {}
        self._seen: set[str] = set()
        self._decodes = obs_metrics.counter(
            "repro_transport_shm_decodes_total",
            help="Answers decoded zero-copy from worker slabs",
        )
        self._errors = obs_metrics.counter(
            "repro_transport_errors_total",
            help="Descriptors rejected (stale generation, torn entry, CRC)",
        )

    def decode(self, descriptor: dict) -> list:
        """Resolve one descriptor to its answers, zero-copy.

        Raises :class:`TransportError` on any validation failure.
        """
        try:
            return self._decode(descriptor)
        except TransportError:
            self._errors.inc()
            raise

    def _decode(self, descriptor: dict) -> list:
        try:
            name = descriptor["slab"]
            offset = descriptor["offset"]
            length = descriptor["length"]
            generation = descriptor["generation"]
            seq = descriptor["seq"]
            crc = descriptor["crc"]
        except (TypeError, KeyError) as error:
            raise TransportError(
                f"malformed descriptor {descriptor!r}"
            ) from error
        if generation != self.generation:
            raise TransportError(
                f"stale descriptor: generation {generation} != "
                f"current {self.generation}"
            )
        shm = self._attach(name)
        if offset < 0 or offset + _HEADER.size + length > shm.size:
            raise TransportError(
                f"descriptor out of bounds: {offset}+{length} in "
                f"{shm.size}-byte slab {name}"
            )
        try:
            magic, version, h_gen, h_seq, h_len, h_crc = _HEADER.unpack_from(
                shm.buf, offset
            )
        except struct.error as error:
            raise TransportError(f"unreadable header: {error}") from None
        if magic != _MAGIC or version != _VERSION:
            raise TransportError(
                f"bad entry header at {name}+{offset}: "
                f"magic={magic!r} version={version}"
            )
        if h_gen != generation or h_seq != seq or h_len != length:
            raise TransportError(
                f"entry at {name}+{offset} was overwritten "
                f"(gen {h_gen}/{generation}, seq {h_seq}/{seq}, "
                f"len {h_len}/{length})"
            )
        body = offset + _HEADER.size
        payload = shm.buf[body:body + length]
        try:
            if zlib.crc32(payload) != (h_crc & 0xFFFFFFFF) or h_crc != crc:
                raise TransportError(
                    f"CRC mismatch at {name}+{offset} (torn write)"
                )
            answers = decode_answers_blob(payload)
        finally:
            payload.release()
        self._decodes.inc()
        return answers

    def _attach(self, name: str) -> shared_memory.SharedMemory:
        with self._lock:
            shm = self._attached.get(name)
            if shm is not None:
                return shm
        try:
            shm = shared_memory.SharedMemory(name=name)
        except (FileNotFoundError, OSError) as error:
            raise TransportError(
                f"slab {name} is gone (worker died or respawned): {error}"
            ) from None
        with self._lock:
            racer = self._attached.setdefault(name, shm)
            self._seen.add(name)
        if racer is not shm:
            shm.close()
            _untrack(shm)  # the winner's registration is the live one
        return racer

    def invalidate(self, new_generation: int) -> int:
        """Pool respawn: detach everything, unlink dead-generation
        slabs, advance the accepted generation.  Returns the number of
        slabs unlinked."""
        with self._lock:
            self.generation = new_generation
            attached = list(self._attached.values())
            self._attached.clear()
            seen, self._seen = self._seen, set()
        # attached slabs unlink through their own handle — the unlink
        # is what unregisters the attach from the resource tracker;
        # detaching first and re-attaching to unlink would leave the
        # original registration dangling (a spurious "leaked
        # shared_memory" warning at interpreter shutdown)
        removed = sum(_detach_and_unlink(shm) for shm in attached)
        removed += self._sweep(
            seen, lambda generation: generation < new_generation
        )
        if removed:
            _log.info(
                "transport.slabs_reclaimed", arena=self.arena,
                count=removed, generation=new_generation,
            )
        return removed

    def close(self) -> int:
        """Tear down: detach and unlink every slab of this arena."""
        with self._lock:
            attached = list(self._attached.values())
            self._attached.clear()
            seen, self._seen = self._seen, set()
        removed = sum(_detach_and_unlink(shm) for shm in attached)
        return removed + self._sweep(seen, lambda generation: True)

    def _sweep(self, seen: set[str], dead) -> int:
        """Unlink every known-or-discovered slab whose generation
        satisfies ``dead``; names come from descriptors seen so far
        plus a ``/dev/shm`` prefix scan (catches slabs of workers that
        crashed before answering once)."""
        names = set(seen)
        try:
            for entry in os.listdir("/dev/shm"):
                if _slab_generation(entry, self.arena) is not None:
                    names.add(entry)
        except OSError:
            pass  # non-Linux: descriptor-derived names only
        removed = 0
        for name in names:
            generation = _slab_generation(name, self.arena)
            if generation is None or not dead(generation):
                continue
            if unlink_slab(name):
                removed += 1
        return removed


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop one resource-tracker registration without unlinking.

    Python 3.11 registers shared memory on *attach* as well as create
    (no ``track=`` parameter until 3.13); a handle that is closed
    because the segment lives on elsewhere must take its registration
    with it or the tracker warns at shutdown.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals shifted
        pass


def _detach_and_unlink(shm: shared_memory.SharedMemory) -> int:
    """Close and unlink one attached slab; 1 when this call removed it."""
    try:
        shm.close()
    except (OSError, BufferError):  # pragma: no cover - teardown race
        pass
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):
        _untrack(shm)  # already gone: still drop our registration
        return 0
    return 1


def unlink_slab(name: str) -> bool:
    """Best-effort unlink of one slab by name; True when it existed.

    Attaching first keeps the resource tracker consistent (its
    ``unlink`` unregisters the name); a racing unlink from another
    path is fine — the name being gone is the goal.
    """
    try:
        shm = shared_memory.SharedMemory(name=name)
    except (FileNotFoundError, OSError):
        return False
    try:
        shm.close()
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - race
        pass
    return True


def _unlink_quietly(shm: shared_memory.SharedMemory) -> None:
    try:
        shm.unlink()
    except (FileNotFoundError, OSError):  # pragma: no cover - race
        pass


def list_arena_slabs(arena: str) -> list[str]:
    """Names of this arena's live slabs in ``/dev/shm`` (tests, leak
    checks); empty where POSIX shared memory is not file-backed."""
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return []
    return sorted(
        entry
        for entry in entries
        if _slab_generation(entry, arena) is not None
    )


# ----------------------------------------------------------------------
# payload tagging (both sides)
# ----------------------------------------------------------------------
def tag_inline(answers: list) -> tuple:
    return (TAG_INLINE, answers)


def tag_descriptor(descriptor: dict) -> tuple:
    return (TAG_SHM, descriptor)


def decode_payload(payload, reader: SlabReaderPool | None):
    """Parent-side: resolve one task payload to its answer list.

    Untagged payloads (the pickle transport, duck-typed test pools)
    pass through unchanged; inline tags unwrap; shm tags resolve
    through ``reader`` and raise :class:`TransportError` when no
    reader is available or validation fails.
    """
    if (
        isinstance(payload, tuple)
        and len(payload) == 2
        and payload[0] in (TAG_SHM, TAG_INLINE)
    ):
        tag, value = payload
        if tag == TAG_INLINE:
            return value
        if reader is None:
            raise TransportError(
                "shm descriptor received but no slab reader is attached"
            )
        return reader.decode(value)
    return payload
