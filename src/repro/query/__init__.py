"""Query layer: StIU index, probabilistic queries, oracle, and metrics."""

from .brute import BruteForceOracle
from .engine import (
    BatchPlan,
    BatchQueryEngine,
    EngineClosedError,
    QueryEngineError,
    RangeQuery,
    ShardedQueryEngine,
    ShardWorkerPool,
    WhenQuery,
    WhereQuery,
    WorkerPoolBroken,
    query_from_dict,
)
from .flagarrays import FlagArray, OriginalArray
from .metrics import (
    AccuracyReport,
    f1_score,
    range_accuracy,
    when_accuracy,
    where_accuracy,
)
from .queries import (
    QueryCounters,
    UTCQQueryProcessor,
    WhenResult,
    WhereResult,
)
from .sidecar import (
    SidecarFormatError,
    load_index,
    save_index,
    sidecar_path_for,
)
from .stiu import (
    INFINITE_VERTEX,
    NonReferenceTuple,
    ReferenceTuple,
    RegionEntry,
    StIUIndex,
    TemporalTuple,
)

__all__ = [
    "BruteForceOracle",
    "BatchPlan",
    "BatchQueryEngine",
    "EngineClosedError",
    "QueryEngineError",
    "RangeQuery",
    "ShardedQueryEngine",
    "ShardWorkerPool",
    "WorkerPoolBroken",
    "WhenQuery",
    "WhereQuery",
    "query_from_dict",
    "FlagArray",
    "OriginalArray",
    "AccuracyReport",
    "f1_score",
    "range_accuracy",
    "when_accuracy",
    "where_accuracy",
    "QueryCounters",
    "UTCQQueryProcessor",
    "WhenResult",
    "WhereResult",
    "SidecarFormatError",
    "load_index",
    "save_index",
    "sidecar_path_for",
    "INFINITE_VERTEX",
    "NonReferenceTuple",
    "ReferenceTuple",
    "RegionEntry",
    "StIUIndex",
    "TemporalTuple",
]
