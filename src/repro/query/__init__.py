"""Query layer: StIU index, probabilistic queries, oracle, and metrics."""

from .brute import BruteForceOracle
from .flagarrays import FlagArray, OriginalArray
from .metrics import (
    AccuracyReport,
    f1_score,
    range_accuracy,
    when_accuracy,
    where_accuracy,
)
from .queries import (
    QueryCounters,
    UTCQQueryProcessor,
    WhenResult,
    WhereResult,
)
from .stiu import (
    INFINITE_VERTEX,
    NonReferenceTuple,
    ReferenceTuple,
    RegionEntry,
    StIUIndex,
    TemporalTuple,
)

__all__ = [
    "BruteForceOracle",
    "FlagArray",
    "OriginalArray",
    "AccuracyReport",
    "f1_score",
    "range_accuracy",
    "when_accuracy",
    "where_accuracy",
    "QueryCounters",
    "UTCQQueryProcessor",
    "WhenResult",
    "WhereResult",
    "INFINITE_VERTEX",
    "NonReferenceTuple",
    "ReferenceTuple",
    "RegionEntry",
    "StIUIndex",
    "TemporalTuple",
]
