"""Persistent StIU index: the versioned ``.stiu`` sidecar format.

Rebuilding the StIU index on every archive open decodes every
trajectory's time stream and factor spans — by far the dominant cost of
``repro query`` on a warm archive.  The sidecar persists the finished
index structures next to the archive (``<archive>.stiu``), written once
at compress/compact time and loaded in milliseconds afterwards.

Layout (all integers little-endian; ``uv`` = unsigned LEB128 varint,
shared with :mod:`repro.io.format`)::

    +--------------------------------------------------------------+
    | magic "UTCQSTIU" (8) | version u16 | flags u16               |
    | archive_size u64 | archive_sha256 (32 raw bytes)             |
    | grid_cells_per_side u32 | time_partition_seconds u32         |
    | trajectory_count u64                                         |
    | temporal_bytes u64 | spatial_bytes u64                       |
    Both sections are zlib-deflated on disk (``temporal_bytes`` /
    ``spatial_bytes`` count the compressed form); the structures below
    describe the inflated streams.

    +--------------------------------------------------------------+
    | temporal section:                                            |
    |   uv interval_count, then per interval:                      |
    |     uv interval, uv entry_count, then per entry:             |
    |       uv trajectory_id, uv t.start, uv t.no, uv t.pos        |
    +--------------------------------------------------------------+
    | spatial section:                                             |
    |   uv interval_count, then per interval:                      |
    |     uv interval, uv region_count, then per region:           |
    |       uv region, uv trajectory_count, then per trajectory:   |
    |         uv trajectory_id                                     |
    |         uv n_references, then per reference:                 |
    |           uv instance_index, uv final_vertex + 1 (0 = inf),  |
    |           uv fv.no, uv d.pos, f64 p_total, f64 p_max         |
    |         uv n_non_references, then per non-reference:         |
    |           uv instance_index, uv rv.id, uv rv.no, uv ma.pos   |
    +--------------------------------------------------------------+

Staleness: the header pins the archive's byte size and SHA-256.  A
mismatch (the archive was rewritten, recompressed, or replaced) makes
:func:`load_index` return ``None`` so the caller rebuilds; the same
happens for a version bump or different index parameters.  The temporal
section is parsed eagerly (every query needs it); the spatial section
is retained as raw bytes and materialized on first spatial lookup, so
a purely temporal query never pays for it.
"""

from __future__ import annotations

import hashlib
import os
import struct
import zlib
from pathlib import Path

from ..io.format import read_uvarint, write_uvarint
from .stiu import (
    NonReferenceTuple,
    ReferenceTuple,
    RegionEntry,
    StIUIndex,
    TemporalTuple,
)

MAGIC = b"UTCQSTIU"
VERSION = 1

_HEAD = struct.Struct("<8sHH")
_FINGERPRINT = struct.Struct("<Q32s")
_PARAMS = struct.Struct("<II")
_COUNTS = struct.Struct("<Q")
_SECTIONS = struct.Struct("<QQ")
_F64 = struct.Struct("<d")

SIDECAR_SUFFIX = ".stiu"


class SidecarFormatError(Exception):
    """Raised when a file is not a valid version-1 ``.stiu`` sidecar."""


def sidecar_path_for(archive_path) -> Path:
    """Default sidecar location: the archive path plus ``.stiu``."""
    return Path(str(archive_path) + SIDECAR_SUFFIX)


def archive_fingerprint(archive_path) -> tuple[int, bytes]:
    """(byte size, SHA-256 digest) of the archive file."""
    digest = hashlib.sha256()
    size = 0
    with open(archive_path, "rb") as stream:
        while True:
            chunk = stream.read(1 << 20)
            if not chunk:
                break
            size += len(chunk)
            digest.update(chunk)
    return size, digest.digest()


# ----------------------------------------------------------------------
# serialization
# ----------------------------------------------------------------------
def _encode_temporal(index: StIUIndex) -> bytes:
    out = bytearray()
    write_uvarint(out, len(index.temporal))
    for interval in sorted(index.temporal):
        entries = index.temporal[interval]
        write_uvarint(out, interval)
        write_uvarint(out, len(entries))
        for trajectory_id in sorted(entries):
            entry = entries[trajectory_id]
            write_uvarint(out, trajectory_id)
            write_uvarint(out, entry.start)
            write_uvarint(out, entry.number)
            write_uvarint(out, entry.bit_position)
    return bytes(out)


def _encode_spatial(index: StIUIndex) -> bytes:
    out = bytearray()
    spatial = index.spatial
    write_uvarint(out, len(spatial))
    for interval in sorted(spatial):
        region_map = spatial[interval]
        write_uvarint(out, interval)
        write_uvarint(out, len(region_map))
        for region in sorted(region_map):
            entry_map = region_map[region]
            write_uvarint(out, region)
            write_uvarint(out, len(entry_map))
            for trajectory_id in sorted(entry_map):
                entry = entry_map[trajectory_id]
                write_uvarint(out, trajectory_id)
                write_uvarint(out, len(entry.references))
                for reference in entry.references:
                    write_uvarint(out, reference.instance_index)
                    write_uvarint(out, reference.final_vertex + 1)
                    write_uvarint(out, reference.entry_number)
                    write_uvarint(out, reference.distance_position)
                    out += _F64.pack(reference.p_total)
                    out += _F64.pack(reference.p_max)
                write_uvarint(out, len(entry.non_references))
                for non_reference in entry.non_references:
                    write_uvarint(out, non_reference.instance_index)
                    write_uvarint(out, non_reference.anchor_vertex)
                    write_uvarint(out, non_reference.anchor_number)
                    write_uvarint(out, non_reference.factor_position)
    return bytes(out)


def _decode_temporal(
    data: bytes,
) -> tuple[dict[int, dict[int, TemporalTuple]], dict[int, list[TemporalTuple]]]:
    position = 0
    interval_count, position = read_uvarint(data, position)
    temporal: dict[int, dict[int, TemporalTuple]] = {}
    per_trajectory: dict[int, list[TemporalTuple]] = {}
    for _ in range(interval_count):
        interval, position = read_uvarint(data, position)
        entry_count, position = read_uvarint(data, position)
        entries: dict[int, TemporalTuple] = {}
        for _ in range(entry_count):
            trajectory_id, position = read_uvarint(data, position)
            start, position = read_uvarint(data, position)
            number, position = read_uvarint(data, position)
            bit_position, position = read_uvarint(data, position)
            entry = TemporalTuple(start, number, bit_position)
            entries[trajectory_id] = entry
            per_trajectory.setdefault(trajectory_id, []).append(entry)
        temporal[interval] = entries
    if position != len(data):
        raise SidecarFormatError("trailing bytes in temporal section")
    # _build_temporal appends tuples in timestamp order; restore it
    for tuples in per_trajectory.values():
        tuples.sort(key=lambda entry: (entry.start, entry.number))
    return temporal, per_trajectory


def _read_f64(data: bytes, position: int) -> tuple[float, int]:
    if position + _F64.size > len(data):
        raise SidecarFormatError("truncated float in spatial section")
    (value,) = _F64.unpack_from(data, position)
    return value, position + _F64.size


def _decode_spatial(
    data: bytes,
) -> dict[int, dict[int, dict[int, RegionEntry]]]:
    position = 0
    interval_count, position = read_uvarint(data, position)
    spatial: dict[int, dict[int, dict[int, RegionEntry]]] = {}
    for _ in range(interval_count):
        interval, position = read_uvarint(data, position)
        region_count, position = read_uvarint(data, position)
        region_map: dict[int, dict[int, RegionEntry]] = {}
        for _ in range(region_count):
            region, position = read_uvarint(data, position)
            trajectory_count, position = read_uvarint(data, position)
            entry_map: dict[int, RegionEntry] = {}
            for _ in range(trajectory_count):
                trajectory_id, position = read_uvarint(data, position)
                entry = RegionEntry()
                reference_count, position = read_uvarint(data, position)
                for _ in range(reference_count):
                    instance_index, position = read_uvarint(data, position)
                    shifted_vertex, position = read_uvarint(data, position)
                    entry_number, position = read_uvarint(data, position)
                    distance_position, position = read_uvarint(data, position)
                    p_total, position = _read_f64(data, position)
                    p_max, position = _read_f64(data, position)
                    entry.references.append(
                        ReferenceTuple(
                            instance_index,
                            # 0 encodes fv = inf (INFINITE_VERTEX == -1)
                            shifted_vertex - 1,
                            entry_number,
                            distance_position,
                            p_total,
                            p_max,
                        )
                    )
                non_reference_count, position = read_uvarint(data, position)
                for _ in range(non_reference_count):
                    instance_index, position = read_uvarint(data, position)
                    anchor_vertex, position = read_uvarint(data, position)
                    anchor_number, position = read_uvarint(data, position)
                    factor_position, position = read_uvarint(data, position)
                    entry.non_references.append(
                        NonReferenceTuple(
                            instance_index,
                            anchor_vertex,
                            anchor_number,
                            factor_position,
                        )
                    )
                entry_map[trajectory_id] = entry
            region_map[region] = entry_map
        spatial[interval] = region_map
    if position != len(data):
        raise SidecarFormatError("trailing bytes in spatial section")
    return spatial


# ----------------------------------------------------------------------
# public API
# ----------------------------------------------------------------------
def save_index(
    index: StIUIndex, archive_path, *, sidecar_path=None
) -> Path:
    """Persist ``index`` next to its archive; returns the sidecar path.

    The write is atomic (tmp + ``os.replace``), so a concurrent reader
    never observes a half-written sidecar.
    """
    target = (
        sidecar_path_for(archive_path)
        if sidecar_path is None
        else Path(sidecar_path)
    )
    size, digest = archive_fingerprint(archive_path)
    temporal_blob = zlib.compress(_encode_temporal(index), 6)
    spatial_blob = zlib.compress(_encode_spatial(index), 6)
    blob = bytearray()
    blob += _HEAD.pack(MAGIC, VERSION, 0)
    blob += _FINGERPRINT.pack(size, digest)
    blob += _PARAMS.pack(
        index.grid.cells_per_side, index.time_partition_seconds
    )
    blob += _COUNTS.pack(index.archive.trajectory_count)
    blob += _SECTIONS.pack(len(temporal_blob), len(spatial_blob))
    blob += temporal_blob
    blob += spatial_blob
    tmp = target.with_name(target.name + ".tmp")
    with open(tmp, "wb") as out:
        out.write(bytes(blob))
    os.replace(tmp, target)
    return target


def read_sidecar(sidecar_path) -> dict:
    """Parse a sidecar file into its raw parts (strict: raises
    :class:`SidecarFormatError` on any structural problem)."""
    with open(sidecar_path, "rb") as stream:
        data = stream.read()

    def take(offset: int, size: int, what: str) -> bytes:
        if offset + size > len(data):
            raise SidecarFormatError(f"truncated sidecar ({what})")
        return data[offset : offset + size]

    offset = 0
    magic, version, _flags = _HEAD.unpack(take(offset, _HEAD.size, "magic"))
    offset += _HEAD.size
    if magic != MAGIC:
        raise SidecarFormatError(f"bad magic {magic!r}; not a StIU sidecar")
    if version != VERSION:
        raise SidecarFormatError(
            f"unsupported sidecar version {version} (reader supports "
            f"{VERSION})"
        )
    archive_size, archive_sha = _FINGERPRINT.unpack(
        take(offset, _FINGERPRINT.size, "fingerprint")
    )
    offset += _FINGERPRINT.size
    cells_per_side, time_partition = _PARAMS.unpack(
        take(offset, _PARAMS.size, "params")
    )
    offset += _PARAMS.size
    (trajectory_count,) = _COUNTS.unpack(take(offset, _COUNTS.size, "counts"))
    offset += _COUNTS.size
    temporal_bytes, spatial_bytes = _SECTIONS.unpack(
        take(offset, _SECTIONS.size, "sections")
    )
    offset += _SECTIONS.size
    temporal_deflated = take(offset, temporal_bytes, "temporal section")
    offset += temporal_bytes
    spatial_deflated = take(offset, spatial_bytes, "spatial section")
    offset += spatial_bytes
    if offset != len(data):
        raise SidecarFormatError("trailing bytes after spatial section")
    try:
        temporal_blob = zlib.decompress(temporal_deflated)
        spatial_blob = zlib.decompress(spatial_deflated)
    except zlib.error as error:
        raise SidecarFormatError(f"corrupt deflated section: {error}") from None
    return {
        "archive_size": archive_size,
        "archive_sha256": archive_sha,
        "grid_cells_per_side": cells_per_side,
        "time_partition_seconds": time_partition,
        "trajectory_count": trajectory_count,
        "temporal_blob": temporal_blob,
        "spatial_blob": spatial_blob,
    }


def load_index(
    network,
    archive,
    archive_path,
    *,
    sidecar_path=None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
) -> StIUIndex | None:
    """Load a fresh index from the sidecar, or ``None`` to rebuild.

    ``None`` covers every recoverable condition — missing or corrupt
    sidecar, version bump, parameter mismatch, stale archive
    fingerprint — so the caller's fallback is always a plain build.
    """
    target = (
        sidecar_path_for(archive_path)
        if sidecar_path is None
        else Path(sidecar_path)
    )
    try:
        document = read_sidecar(target)
    except (FileNotFoundError, SidecarFormatError):
        return None
    if document["grid_cells_per_side"] != grid_cells_per_side:
        return None
    if document["time_partition_seconds"] != time_partition_seconds:
        return None
    if document["trajectory_count"] != archive.trajectory_count:
        return None
    size, digest = archive_fingerprint(archive_path)
    if (size, digest) != (
        document["archive_size"],
        document["archive_sha256"],
    ):
        return None
    try:
        temporal, per_trajectory = _decode_temporal(document["temporal_blob"])
    except SidecarFormatError:
        return None
    index = StIUIndex(
        network,
        archive,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
        build=False,
    )
    index.temporal = temporal
    index._trajectory_tuples = per_trajectory
    spatial_blob = document["spatial_blob"]
    index._spatial_loader = lambda: _decode_spatial(spatial_blob)
    index.loaded_from_sidecar = True
    return index


def load_or_build_index(
    network,
    archive,
    archive_path,
    *,
    sidecar_path=None,
    grid_cells_per_side: int = 32,
    time_partition_seconds: int = 1800,
) -> tuple[StIUIndex, bool]:
    """Load the index from its sidecar, or build it; never ``None``.

    Returns ``(index, from_sidecar)`` — the flag is what the streaming
    tier's sidecar-hit accounting (and its "opens never rebuild" test)
    keys on.  The build fallback covers every recoverable sidecar
    condition :func:`load_index` maps to ``None``.
    """
    index = load_index(
        network,
        archive,
        archive_path,
        sidecar_path=sidecar_path,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
    )
    if index is not None:
        return index, True
    index = StIUIndex(
        network,
        archive,
        grid_cells_per_side=grid_cells_per_side,
        time_partition_seconds=time_partition_seconds,
    )
    return index, False
