"""Zipf-aware hot-query cache in front of the decode layer.

Real request streams are skewed: a handful of popular queries (hot
trajectories, hot regions) dominate the traffic the way popular
locations dominate real movement data (PRESS serves exactly such
mixes).  :class:`HotTrajectoryCache` exploits that skew *above* the
span layer: a hit returns the fully decoded, already-merged answer of
a previous request without touching
:class:`~repro.core.decoder.DecodeSpanCache`, the StIU index, or a
worker process at all — for the sharded engine that also means zero
IPC for the hit.

Admission is frequency-gated (TinyLFU-style) instead of
admit-on-every-miss:

* every lookup feeds a :class:`CountMinSketch` — a few bytes per
  counter, no per-key state, and periodic halving so popularity ages
  out instead of accumulating forever;
* an answer is only **admitted** once its estimated frequency reaches
  ``admission_threshold`` (a one-hit wonder never displaces anything);
* at capacity a challenger must beat the LRU victim's estimated
  frequency to evict it — scans of cold queries wash over the cache
  without flushing the hot set.

Keys are the frozen query dataclasses
(:class:`~repro.query.engine.WhereQuery` etc.), so equal queries are
equal keys by construction.  Values are whatever the engine's merge
produced; archives are immutable while serving, so a cached answer is
oracle-identical by definition.  The owner (the sharded engine /
service) is responsible for calling :meth:`clear` whenever that
immutability assumption resets — shard quarantine and re-admission.

Thread-safe; hit/miss/admission/eviction counters export through the
:mod:`repro.obs` registry like every other cache in the codebase.
"""

from __future__ import annotations

import threading
from array import array
from collections import OrderedDict

from ..config import env_int
from ..obs import metrics as obs_metrics

#: distinct sentinel: a cached empty answer is a hit, not a miss
MISS = object()

_HASH_MASK = (1 << 64) - 1
_MIX = 0x9E3779B97F4A7C15


def resolve_hotcache_entries(explicit: int | None = None) -> int:
    """Capacity resolution: explicit argument > ``REPRO_HOTCACHE`` > 0.

    0 disables the tier — the default, because a result cache sits
    above the corruption-detection ladder (see ``docs/architecture.md``)
    and turning it on is a per-deployment decision.
    """
    if explicit is not None:
        return max(0, int(explicit))
    return env_int("REPRO_HOTCACHE", 0, minimum=0)


class CountMinSketch:
    """Fixed-memory frequency estimator with periodic aging.

    ``depth`` seeded hash rows of ``width`` 32-bit counters; an
    estimate is the minimum across rows (over-counts only, never
    under-counts).  After ``sample_size`` increments every counter is
    halved, so the sketch tracks *recent* popularity — the TinyLFU
    reset that keeps yesterday's hot keys from squatting forever.
    """

    def __init__(
        self, *, width: int = 2048, depth: int = 4,
        sample_size: int = 32768, seed: int = 7,
    ) -> None:
        if width < 16:
            raise ValueError(f"width must be >= 16, got {width}")
        if depth < 1:
            raise ValueError(f"depth must be >= 1, got {depth}")
        self.width = width
        self.depth = depth
        self.sample_size = max(width, sample_size)
        self._rows = [array("I", bytes(4 * width)) for _ in range(depth)]
        self._seeds = [
            ((seed + row * 0x51ED2701) * _MIX + 0xB5) & _HASH_MASK
            for row in range(depth)
        ]
        self.increments = 0
        self.ages = 0

    def _indexes(self, key) -> list[int]:
        base = hash(key) & _HASH_MASK
        indexes = []
        for row_seed in self._seeds:
            mixed = ((base ^ row_seed) * _MIX) & _HASH_MASK
            mixed ^= mixed >> 29
            indexes.append(mixed % self.width)
        return indexes

    def add(self, key) -> int:
        """Count one occurrence; returns the new estimate."""
        estimate = _HASH_MASK
        for row, index in zip(self._rows, self._indexes(key)):
            if row[index] < 0xFFFFFFFF:
                row[index] += 1
            estimate = min(estimate, row[index])
        self.increments += 1
        if self.increments >= self.sample_size:
            self._age()
        return estimate

    def estimate(self, key) -> int:
        return min(
            row[index]
            for row, index in zip(self._rows, self._indexes(key))
        )

    def _age(self) -> None:
        for row in self._rows:
            for index in range(self.width):
                row[index] >>= 1
        self.increments //= 2
        self.ages += 1


class HotTrajectoryCache:
    """Frequency-admitted LRU of fully decoded query answers."""

    def __init__(
        self,
        capacity: int = 4096,
        *,
        admission_threshold: int = 2,
        sketch_depth: int = 4,
        sketch_width: int | None = None,
        sample_factor: int = 8,
        register: bool = True,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if admission_threshold < 1:
            raise ValueError(
                f"admission_threshold must be >= 1, "
                f"got {admission_threshold}"
            )
        self.capacity = capacity
        self.admission_threshold = admission_threshold
        self.sketch = CountMinSketch(
            width=sketch_width or max(256, 4 * capacity),
            depth=sketch_depth,
            sample_size=max(256, capacity * sample_factor),
        )
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.admissions = 0
        self.rejections = 0
        self.evictions = 0
        if register:
            obs_metrics.get_registry().register_collector(self)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, key):
        """The cached answer for ``key``, or :data:`MISS`.

        Every lookup — hit or miss — feeds the frequency sketch; the
        miss that comes back as an :meth:`offer` is judged on the
        popularity the lookups established.
        """
        with self._lock:
            self.sketch.add(key)
            try:
                value = self._entries[key]
            except KeyError:
                self.misses += 1
                return MISS
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def offer(self, key, value) -> bool:
        """Propose a computed answer for caching; True when admitted."""
        with self._lock:
            if key in self._entries:
                self._entries[key] = value
                self._entries.move_to_end(key)
                return True
            frequency = self.sketch.estimate(key)
            if frequency < self.admission_threshold:
                self.rejections += 1
                return False
            if len(self._entries) >= self.capacity:
                victim = next(iter(self._entries))
                if frequency <= self.sketch.estimate(victim):
                    self.rejections += 1
                    return False
                self._entries.popitem(last=False)
                self.evictions += 1
            self._entries[key] = value
            self.admissions += 1
            return True

    def clear(self) -> None:
        """Drop every cached answer (shard quarantine / re-admission).

        The frequency sketch survives: popularity is still true after
        an invalidation, so the hot set re-admits on first re-offer.
        """
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "admissions": self.admissions,
                "rejections": self.rejections,
                "evictions": self.evictions,
                "resident": len(self._entries),
                "capacity": self.capacity,
                "sketch_ages": self.sketch.ages,
            }

    def collect_metrics(self):
        """Registry-collector view (weak-ref scrape-time pull, so the
        lookup hot path never touches a registry lock)."""
        counts = self.stats()
        for event in ("hits", "misses", "admissions", "rejections",
                      "evictions"):
            yield (
                "counter", f"repro_hotcache_{event}_total", None,
                {"value": float(counts[event])},
            )
        yield (
            "gauge", "repro_hotcache_resident", None,
            {"value": float(counts["resident"])},
        )
