"""The StIU index: Spatio-temporal Information based Uncertain Trajectory
Index (§5.2).

Two layers, built at compression time:

* **temporal** — the day is split into equal intervals; each uncertain
  trajectory stores, per intersecting interval, a tuple ``(t.start,
  t.no, t.pos)``: its earliest timestamp in the interval, that
  timestamp's index, and the bit position of the *next* deviation code in
  the compressed time stream, so decoding can resume mid-stream.
* **spatial** — the network is partitioned into grid regions; within each
  time interval, every trajectory links to the regions its instances
  traverse.  Reference tuples carry the final vertex (the vertex
  traversed immediately before entering the region, Definition 9), its
  position in ``E``, the bit position of the corresponding relative
  distance in ``D̂``, and the pruning aggregates ``p_total`` / ``p_max``
  over the reference's representation set.  A reference that never enters
  the region itself (but whose non-references do) stores the ``fv = inf``
  form.  Non-reference tuples carry the anchor vertex of the E-factor
  covering the region entry and that factor's bit position (``ma.pos``);
  a factor spanning several regions is indexed only at the first (§5.2).
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass, field

from ..core.archive import CompressedArchive, CompressedTrajectory
from ..core.decoder import decode_trajectory_tuples
from ..core.improved_ted import InstanceTuple
from ..network.graph import RoadNetwork
from ..network.grid import GridPartition

INFINITE_VERTEX = -1  # the paper's "fv.id = infinity" marker


@dataclass(frozen=True)
class TemporalTuple:
    """(t.start, t.no, t.pos) for one trajectory in one time interval."""

    start: int
    number: int
    bit_position: int


@dataclass(frozen=True)
class ReferenceTuple:
    """Spatial tuple of a reference w.r.t. one region.

    ``final_vertex`` is :data:`INFINITE_VERTEX` when the reference itself
    never enters the region (§5.2 case ii).
    """

    instance_index: int
    final_vertex: int
    entry_number: int  # fv.no: E-entry index of the edge entering the region
    distance_position: int  # d.pos: bit offset of the d.no-th rd in D̂
    p_total: float
    p_max: float


@dataclass(frozen=True)
class NonReferenceTuple:
    """Spatial tuple of a non-reference w.r.t. one region."""

    instance_index: int
    anchor_vertex: int  # rv.id
    anchor_number: int  # rv.no: position of rv in E(Nref)
    factor_position: int  # ma.pos: bit offset of the covering factor


@dataclass
class RegionEntry:
    """All tuples of one trajectory for one (interval, region) pair."""

    references: list[ReferenceTuple] = field(default_factory=list)
    non_references: list[NonReferenceTuple] = field(default_factory=list)


class StIUIndex:
    """The paper's StIU index over a compressed archive.

    ``archive`` may be an in-memory :class:`CompressedArchive` or a lazy
    :class:`~repro.io.reader.FileBackedArchive` — the index only needs
    ``params``, iteration over ``trajectories``, and ``trajectory(id)``.
    Building over a file streams one trajectory at a time through the
    reader's LRU cache, so peak memory stays bounded by the cache, not
    the dataset.
    """

    @classmethod
    def over_file(
        cls,
        network: RoadNetwork,
        path,
        *,
        cache_size: int | None = None,
        verify_crc: bool = True,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
        sidecar: object = "auto",
        write_sidecar: bool = False,
    ) -> "StIUIndex":
        """Open ``path`` lazily and index it, preferring the sidecar.

        ``sidecar`` is the persistence policy: ``"auto"`` loads the
        default ``<path>.stiu`` sidecar when it exists and matches the
        archive (falling back to a full build otherwise), an explicit
        path loads that file, and ``None`` always rebuilds.  With
        ``write_sidecar`` a freshly built index is persisted so the next
        open is warm.  ``index.loaded_from_sidecar`` records which path
        was taken.

        The file-backed archive stays open for the index's lifetime (and
        is reachable as ``index.archive`` for a query processor); close
        it via ``index.archive.close()`` when done.
        """
        from ..io.reader import DEFAULT_CACHE_SIZE, FileBackedArchive
        from . import sidecar as sidecar_io

        archive = FileBackedArchive.open(
            path,
            cache_size=cache_size or DEFAULT_CACHE_SIZE,
            verify_crc=verify_crc,
        )
        try:
            if sidecar is not None:
                sidecar_path = (
                    sidecar_io.sidecar_path_for(path)
                    if sidecar == "auto"
                    else sidecar
                )
                index = sidecar_io.load_index(
                    network,
                    archive,
                    path,
                    sidecar_path=sidecar_path,
                    grid_cells_per_side=grid_cells_per_side,
                    time_partition_seconds=time_partition_seconds,
                )
                if index is not None:
                    return index
            index = cls(
                network,
                archive,
                grid_cells_per_side=grid_cells_per_side,
                time_partition_seconds=time_partition_seconds,
            )
            if write_sidecar:
                sidecar_io.save_index(
                    index,
                    path,
                    sidecar_path=(
                        None if sidecar in (None, "auto") else sidecar
                    ),
                )
            return index
        except Exception:
            archive.close()
            raise

    @classmethod
    def merged(
        cls,
        network: RoadNetwork,
        archive,
        parts: list["StIUIndex"],
        *,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
    ) -> "StIUIndex":
        """Union per-segment indexes into one index over their union.

        Trajectory ids are globally unique across a stream archive's
        segments, so merging is a plain dict union per layer — the
        result is structurally identical to building over the combined
        archive.  The spatial layer stays lazy: parts loaded from
        sidecars keep their deflated sections unparsed until the first
        spatial lookup on the merged index.
        """
        index = cls(
            network,
            archive,
            grid_cells_per_side=grid_cells_per_side,
            time_partition_seconds=time_partition_seconds,
            build=False,
        )
        parts = list(parts)
        for part in parts:
            for interval, entries in part.temporal.items():
                index.temporal.setdefault(interval, {}).update(entries)
            index._trajectory_tuples.update(part._trajectory_tuples)
        if parts:

            def merge_spatial():
                spatial: dict[int, dict[int, dict[int, RegionEntry]]] = {}
                for part in parts:
                    for interval, region_map in part.spatial.items():
                        target = spatial.setdefault(interval, {})
                        for region, entry_map in region_map.items():
                            target.setdefault(region, {}).update(entry_map)
                return spatial

            index._spatial_loader = merge_spatial
        index.loaded_from_sidecar = bool(parts) and all(
            part.loaded_from_sidecar for part in parts
        )
        return index

    def __init__(
        self,
        network: RoadNetwork,
        archive: CompressedArchive,
        *,
        grid_cells_per_side: int = 32,
        time_partition_seconds: int = 1800,
        build: bool = True,
    ) -> None:
        """``build=False`` creates an empty shell whose ``temporal`` /
        ``spatial`` structures the sidecar loader fills in; every normal
        caller wants the default full build."""
        if time_partition_seconds < 1:
            raise ValueError("time partition must be at least one second")
        self.network = network
        self.archive = archive
        self.time_partition_seconds = time_partition_seconds
        self.grid = GridPartition.for_network(network, grid_cells_per_side)
        self.loaded_from_sidecar = False
        # temporal[interval][trajectory_id] -> TemporalTuple
        self.temporal: dict[int, dict[int, TemporalTuple]] = {}
        # per-trajectory sorted temporal tuples for binary search
        self._trajectory_tuples: dict[int, list[TemporalTuple]] = {}
        # memoized sorted candidate lists per interval and per-trajectory
        # start arrays (index is immutable once built/loaded)
        self._interval_candidates: dict[int, list[int]] = {}
        self._tuple_starts: dict[int, list[int]] = {}
        # spatial[interval][region][trajectory_id] -> RegionEntry;
        # sidecar loads materialize it lazily through the property
        self._spatial: dict[int, dict[int, dict[int, RegionEntry]]] = {}
        self._spatial_loader = None
        self._spatial_lock = threading.Lock()
        if build:
            self._build()

    @property
    def spatial(self) -> dict[int, dict[int, dict[int, RegionEntry]]]:
        if self._spatial_loader is not None:
            with self._spatial_lock:
                loader = self._spatial_loader
                if loader is not None:
                    try:
                        spatial = loader()
                    except Exception:
                        # corrupt spatial section (only discovered now —
                        # the sidecar parses it lazily): fall back to
                        # building it from the archive, like a stale
                        # sidecar would have at open time
                        self._spatial_loader = None
                        self._rebuild_spatial()
                    else:
                        self._spatial = spatial
                        self._spatial_loader = None
        return self._spatial

    def _rebuild_spatial(self) -> None:
        """Recompute the spatial layer from the archive (loader fallback).

        Only called with ``_spatial_loader`` already cleared, so the
        ``self.spatial`` accesses inside ``_build_spatial`` see the dict
        being filled rather than re-entering the loader path.
        """
        from ..bits.bitio import BitReader
        from ..core import siar

        self._spatial = {}
        for trajectory in self.archive.trajectories:
            reader = BitReader(
                trajectory.time_payload, trajectory.time_payload_bits
            )
            times = siar.decode(
                reader,
                self.archive.params.default_interval,
                t0_bits=self.archive.params.t0_bits,
            )
            self._build_spatial(trajectory, times)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def interval_of(self, t: int) -> int:
        return t // self.time_partition_seconds

    def _build(self) -> None:
        from ..core import siar
        from ..bits.bitio import BitReader

        for trajectory in self.archive.trajectories:
            reader = BitReader(
                trajectory.time_payload, trajectory.time_payload_bits
            )
            times = siar.decode(
                reader,
                self.archive.params.default_interval,
                t0_bits=self.archive.params.t0_bits,
            )
            self._build_temporal(trajectory, times)
            self._build_spatial(trajectory, times)

    def _build_temporal(
        self, trajectory: CompressedTrajectory, times: list[int]
    ) -> None:
        tuples: list[TemporalTuple] = []
        seen_intervals: set[int] = set()
        positions = trajectory.deviation_positions
        end_position = trajectory.time_payload_bits
        for number, t in enumerate(times):
            interval = self.interval_of(t)
            if interval in seen_intervals:
                continue
            seen_intervals.add(interval)
            bit_position = (
                positions[number] if number < len(positions) else end_position
            )
            entry = TemporalTuple(t, number, bit_position)
            tuples.append(entry)
            self.temporal.setdefault(interval, {})[
                trajectory.trajectory_id
            ] = entry
        self._trajectory_tuples[trajectory.trajectory_id] = tuples

    def _active_intervals(self, trajectory: CompressedTrajectory) -> range:
        first = self.interval_of(trajectory.start_time)
        last = self.interval_of(trajectory.end_time)
        return range(first, last + 1)

    def _build_spatial(
        self, trajectory: CompressedTrajectory, times: list[int]
    ) -> None:
        params = self.archive.params
        tuples = decode_trajectory_tuples(trajectory, params)
        # regions visited per instance, with entry metadata
        visits: list[list[tuple[int, int, int]]] = []  # (region, entry, fv)
        for encoded in tuples:
            visits.append(self._region_visits(encoded))

        # group instances by their reference ordinal
        groups: dict[int, list[int]] = {}
        for index, instance in enumerate(trajectory.instances):
            groups.setdefault(instance.reference_ordinal, []).append(index)

        for interval in self._active_intervals(trajectory):
            interval_map = self.spatial.setdefault(interval, {})
            for ordinal, members in groups.items():
                self._index_group(
                    trajectory,
                    tuples,
                    visits,
                    interval_map,
                    ordinal,
                    members,
                )

    def _region_visits(
        self, encoded: InstanceTuple
    ) -> list[tuple[int, int, int]]:
        """(region, E-entry index, final vertex) for each region entered.

        The final vertex of the first region is the start vertex (the
        paper's ``(SV, 0, 0)`` convention).
        """
        visits: list[tuple[int, int, int]] = []
        seen: set[int] = set()
        current_vertex = encoded.start_vertex
        for entry_index, number in enumerate(encoded.edge_numbers):
            if number == 0:
                continue
            edge = self.network.edge_by_number(current_vertex, number)
            for region in self.grid.cells_of_edge(
                self.network, edge.start, edge.end
            ):
                if region not in seen:
                    seen.add(region)
                    visits.append((region, entry_index, current_vertex))
            current_vertex = edge.end
        return visits

    def _index_group(
        self,
        trajectory: CompressedTrajectory,
        tuples: list[InstanceTuple],
        visits: list[list[tuple[int, int, int]]],
        interval_map: dict[int, dict[int, RegionEntry]],
        ordinal: int,
        members: list[int],
    ) -> None:
        reference_index = next(
            i
            for i in members
            if trajectory.instances[i].is_reference
            and trajectory.instances[i].reference_ordinal == ordinal
        )
        reference_instance = trajectory.instances[reference_index]
        non_reference_indices = [i for i in members if i != reference_index]

        # regions touched by anyone in the group
        group_regions: dict[int, list[int]] = {}
        for member in members:
            for region, _, _ in visits[member]:
                group_regions.setdefault(region, []).append(member)

        reference_visit_by_region = {
            region: (entry, fv) for region, entry, fv in visits[reference_index]
        }

        for region, overlapping in group_regions.items():
            p_total = sum(
                trajectory.instances[m].probability for m in set(overlapping)
            )
            nonref_probabilities = [
                trajectory.instances[m].probability
                for m in set(overlapping)
                if m != reference_index
            ]
            p_max = max(nonref_probabilities, default=0.0)

            if region in reference_visit_by_region:
                entry_number, final_vertex = reference_visit_by_region[region]
                distance_position = self._distance_position(
                    reference_instance, tuples[reference_index], entry_number
                )
                tuple_ = ReferenceTuple(
                    reference_index,
                    final_vertex,
                    entry_number,
                    distance_position,
                    p_total,
                    p_max,
                )
            else:
                tuple_ = ReferenceTuple(
                    reference_index, INFINITE_VERTEX, 0, 0, p_total, p_max
                )
            entry_map = interval_map.setdefault(region, {})
            entry = entry_map.setdefault(
                trajectory.trajectory_id, RegionEntry()
            )
            entry.references.append(tuple_)

        # non-reference tuples: anchor factor per region (first region only
        # when one factor spans several regions)
        for member in non_reference_indices:
            compressed = trajectory.instances[member]
            factor_spans = self._factor_spans(
                compressed, tuples[reference_index]
            )
            used_factors: set[int] = set()
            for region, entry_index, _ in visits[member]:
                factor_index = self._covering_factor(factor_spans, entry_index)
                if factor_index is None or factor_index in used_factors:
                    continue
                used_factors.add(factor_index)
                span_start, _ = factor_spans[factor_index]
                anchor_vertex = self._vertex_at_entry(
                    tuples[member], span_start
                )
                entry_map = interval_map.setdefault(region, {})
                entry = entry_map.setdefault(
                    trajectory.trajectory_id, RegionEntry()
                )
                entry.non_references.append(
                    NonReferenceTuple(
                        member,
                        anchor_vertex,
                        span_start,
                        compressed.factor_positions[factor_index]
                        if factor_index < len(compressed.factor_positions)
                        else 0,
                    )
                )

    def _distance_position(
        self,
        compressed_reference,
        encoded: InstanceTuple,
        entry_number: int,
    ) -> int:
        """``d.pos``: bit offset of the ``gamma[fv.no]``-th rd in D̂(Ref)."""
        ones = sum(encoded.time_flags[: entry_number + 1])
        d_no = max(min(ones - 1, len(compressed_reference.distance_positions) - 1), 0)
        if not compressed_reference.distance_positions:
            return 0
        return compressed_reference.distance_positions[d_no]

    def _factor_spans(
        self, compressed, reference_encoded: InstanceTuple
    ) -> list[tuple[int, int]]:
        """(start, end) E-entry span of the non-reference's sequence each
        of its factors reproduces, read from the factor stream."""
        from ..bits.bitio import BitReader
        from ..core.factors import read_edge_factors

        if compressed.is_reference:
            return []
        reader = BitReader(compressed.payload, compressed.payload_bits)
        reader.seek(compressed.edge_offset)
        factors = read_edge_factors(
            reader,
            len(reference_encoded.edge_numbers),
            self.archive.params.symbol_width,
        )
        spans: list[tuple[int, int]] = []
        cursor = 0
        for factor in factors:
            spans.append((cursor, cursor + factor.consumed))
            cursor += factor.consumed
        return spans

    def _covering_factor(
        self, spans: list[tuple[int, int]], entry_index: int
    ) -> int | None:
        for index, (start, end) in enumerate(spans):
            if start <= entry_index < end:
                return index
        return None

    def _vertex_at_entry(self, encoded: InstanceTuple, entry_index: int) -> int:
        current = encoded.start_vertex
        for number in encoded.edge_numbers[:entry_index]:
            if number > 0:
                current = self.network.edge_by_number(current, number).end
        return current

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def temporal_tuple_for(
        self, trajectory_id: int, t: int
    ) -> TemporalTuple | None:
        """Binary-search the trajectory's tuples for the latest one with
        ``t.start <= t`` (the paper's Example 3 lookup)."""
        tuples = self._trajectory_tuples.get(trajectory_id)
        if not tuples:
            return None
        starts = self._tuple_starts.get(trajectory_id)
        if starts is None:
            starts = [entry.start for entry in tuples]
            self._tuple_starts[trajectory_id] = starts
        position = bisect.bisect_right(starts, t) - 1
        if position < 0:
            return None
        return tuples[position]

    def trajectories_in_interval(self, t: int) -> list[int]:
        interval = self.interval_of(t)
        cached = self._interval_candidates.get(interval)
        if cached is None:
            cached = sorted(self.temporal.get(interval, {}).keys())
            self._interval_candidates[interval] = cached
        return list(cached)

    def region_entries(
        self, interval: int, region: int
    ) -> dict[int, RegionEntry]:
        return self.spatial.get(interval, {}).get(region, {})

    def entries_for_trajectory(
        self, interval: int, region: int, trajectory_id: int
    ) -> RegionEntry | None:
        return self.region_entries(interval, region).get(trajectory_id)

    # ------------------------------------------------------------------
    # size accounting (Fig. 9)
    # ------------------------------------------------------------------
    TEMPORAL_TUPLE_BYTES = 4 + 2 + 4  # t.start, t.no, t.pos
    REFERENCE_TUPLE_BYTES = 4 + 2 + 4 + 4 + 4  # fv.id, fv.no, d.pos, pt, pm
    REFERENCE_INF_TUPLE_BYTES = 4 + 4 + 4  # fv=inf form
    NONREFERENCE_TUPLE_BYTES = 4 + 2 + 4  # rv.id, rv.no, ma.pos

    def temporal_size_bytes(self) -> int:
        return sum(
            self.TEMPORAL_TUPLE_BYTES * len(entries) + 8
            for entries in self.temporal.values()
        )

    def spatial_size_bytes(self) -> int:
        total = 0
        for interval_map in self.spatial.values():
            for region_map in interval_map.values():
                total += 8  # region key
                for entry in region_map.values():
                    for reference in entry.references:
                        if reference.final_vertex == INFINITE_VERTEX:
                            total += self.REFERENCE_INF_TUPLE_BYTES
                        else:
                            total += self.REFERENCE_TUPLE_BYTES
                    total += self.NONREFERENCE_TUPLE_BYTES * len(
                        entry.non_references
                    )
        return total

    def size_bytes(self) -> int:
        return self.temporal_size_bytes() + self.spatial_size_bytes()
