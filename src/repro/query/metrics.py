"""Query accuracy metrics for the Fig. 11 study.

The *average difference* is the deviation between results computed on
original versus compressed data — meters for where queries (position
deviation along the shared edge, Euclidean across edges), seconds for
when queries.  The *F1 score* treats the two result sets as retrieval
results keyed by (trajectory, instance) — or trajectory id for range
queries — and combines precision and recall.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..network.graph import RoadNetwork
from .queries import WhenResult, WhereResult


@dataclass(frozen=True)
class AccuracyReport:
    """Average difference + F1 of one query workload."""

    average_difference: float
    precision: float
    recall: float
    f1: float
    matched: int
    expected: int
    returned: int


def f1_score(precision: float, recall: float) -> float:
    if precision + recall == 0:
        return 0.0
    return 2 * precision * recall / (precision + recall)


def _set_scores(
    expected_keys: set, returned_keys: set
) -> tuple[float, float, float]:
    matched = len(expected_keys & returned_keys)
    precision = matched / len(returned_keys) if returned_keys else 1.0
    recall = matched / len(expected_keys) if expected_keys else 1.0
    return precision, recall, f1_score(precision, recall)


def where_accuracy(
    network: RoadNetwork,
    expected: Sequence[WhereResult],
    returned: Sequence[WhereResult],
) -> AccuracyReport:
    """Position deviation in meters plus retrieval scores."""
    expected_by_key = {(r.trajectory_id, r.instance_index): r for r in expected}
    returned_by_key = {(r.trajectory_id, r.instance_index): r for r in returned}
    precision, recall, f1 = _set_scores(
        set(expected_by_key), set(returned_by_key)
    )
    differences: list[float] = []
    for key in set(expected_by_key) & set(returned_by_key):
        a, b = expected_by_key[key], returned_by_key[key]
        if a.edge == b.edge:
            differences.append(abs(a.ndist - b.ndist))
        else:
            ax, ay = _position(network, a)
            bx, by = _position(network, b)
            differences.append(((ax - bx) ** 2 + (ay - by) ** 2) ** 0.5)
    average = sum(differences) / len(differences) if differences else 0.0
    return AccuracyReport(
        average_difference=average,
        precision=precision,
        recall=recall,
        f1=f1,
        matched=len(differences),
        expected=len(expected_by_key),
        returned=len(returned_by_key),
    )


def _position(network: RoadNetwork, result: WhereResult) -> tuple[float, float]:
    a = network.vertex(result.edge[0])
    b = network.vertex(result.edge[1])
    fraction = result.ndist / network.edge_length(*result.edge)
    return a.x + (b.x - a.x) * fraction, a.y + (b.y - a.y) * fraction


def when_accuracy(
    expected: Sequence[WhenResult],
    returned: Sequence[WhenResult],
) -> AccuracyReport:
    """Time deviation in seconds plus retrieval scores.

    Results are matched per (trajectory, instance); an instance passing a
    location several times matches its passes in order.
    """
    def grouped(results: Sequence[WhenResult]) -> dict[tuple, list[float]]:
        groups: dict[tuple, list[float]] = {}
        for result in results:
            groups.setdefault(
                (result.trajectory_id, result.instance_index), []
            ).append(result.time)
        return {key: sorted(times) for key, times in groups.items()}

    expected_groups = grouped(expected)
    returned_groups = grouped(returned)
    precision, recall, f1 = _set_scores(
        set(expected_groups), set(returned_groups)
    )
    differences: list[float] = []
    for key in set(expected_groups) & set(returned_groups):
        for a, b in zip(expected_groups[key], returned_groups[key]):
            differences.append(abs(a - b))
    average = sum(differences) / len(differences) if differences else 0.0
    return AccuracyReport(
        average_difference=average,
        precision=precision,
        recall=recall,
        f1=f1,
        matched=len(differences),
        expected=len(expected_groups),
        returned=len(returned_groups),
    )


def range_accuracy(
    expected: Sequence[int], returned: Sequence[int]
) -> AccuracyReport:
    """Retrieval scores over trajectory-id result sets (no distance)."""
    precision, recall, f1 = _set_scores(set(expected), set(returned))
    return AccuracyReport(
        average_difference=0.0,
        precision=precision,
        recall=recall,
        f1=f1,
        matched=len(set(expected) & set(returned)),
        expected=len(set(expected)),
        returned=len(set(returned)),
    )
