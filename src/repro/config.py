"""Typed parsing of the ``REPRO_*`` environment knobs.

Before this module every tunable read its variable ad hoc —
``engine.py`` parsed ``REPRO_DISPATCH_WINDOW``, ``transport.py`` parsed
``REPRO_TRANSPORT`` and ``REPRO_SLAB_BYTES``, ``hotcache.py`` /
``shortest_path.py`` / ``decoder.py`` / ``obs/log.py`` each had their
own copy of the try/except — and, worse, each copy *silently fell back
to the default* on a malformed value, so ``REPRO_HOTCACHE=many``
quietly ran with the cache off instead of telling the operator their
deployment knob was ignored.

These helpers centralize the contract:

* an **unset or empty** variable yields the default — unchanged;
* a **well-formed** value is parsed, then clamped to its documented
  floor (``minimum``) where one exists — unchanged;
* a **malformed** value raises :class:`ConfigError` with a one-line,
  operator-facing message naming the variable.  The CLI maps it to a
  one-line ``error:`` + exit status 2 (:class:`repro.cli.CliError`)
  instead of a traceback.

:class:`ConfigError` subclasses :class:`ValueError` so call sites that
already guarded resolution with ``except ValueError`` keep working.
"""

from __future__ import annotations

import os

__all__ = [
    "ConfigError",
    "env_choice",
    "env_float",
    "env_int",
    "env_raw",
]


class ConfigError(ValueError):
    """A ``REPRO_*`` variable holds a value that cannot be used.

    The message is one line and names the variable and the offending
    value — what an operator needs to fix their environment, nothing
    more.
    """


def env_raw(name: str) -> str | None:
    """The variable's stripped value, or ``None`` when unset/empty."""
    raw = os.environ.get(name)
    if raw is None:
        return None
    raw = raw.strip()
    return raw or None


def env_int(
    name: str,
    default: int,
    *,
    minimum: int | None = None,
    maximum: int | None = None,
) -> int:
    """An integer knob; malformed values raise :class:`ConfigError`.

    Well-formed values outside ``[minimum, maximum]`` are clamped, not
    rejected — the documented floors (e.g. the slab-size minimum) are
    safety rails, and a clamped value still does what the operator
    asked for as nearly as the system allows.
    """
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be an integer, got {raw!r}"
        ) from None
    if minimum is not None:
        value = max(minimum, value)
    if maximum is not None:
        value = min(maximum, value)
    return value


def env_float(
    name: str,
    default: float,
    *,
    minimum: float | None = None,
    maximum: float | None = None,
) -> float:
    """A float knob; malformed values raise :class:`ConfigError`."""
    raw = env_raw(name)
    if raw is None:
        return default
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"{name} must be a number, got {raw!r}"
        ) from None
    if minimum is not None:
        value = max(minimum, value)
    if maximum is not None:
        value = min(maximum, value)
    return value


def env_choice(name: str, default: str, choices) -> str:
    """An enumerated knob; values are case-folded before matching."""
    raw = env_raw(name)
    if raw is None:
        return default
    value = raw.lower()
    if value not in choices:
        raise ConfigError(
            f"{name} must be one of {', '.join(sorted(choices))}; "
            f"got {raw!r}"
        )
    return value
