"""Dataset profiles mirroring the paper's DK / CD / HZ corpora (Tables 5-6).

Each profile captures the published statistics the compressors are
sensitive to; see DESIGN.md §2 for the substitution argument.

==========  =====  ==========================  ============  ===========
profile     Ts     interval deviation (Fig 4a)  avg instances  avg edges
==========  =====  ==========================  ============  ===========
DK          1 s    93% within ±1 s             9 (2-139)      14 (2-434*)
CD          10 s   62% within ±1 s             3 (2-192)      11 (2-148)
HZ          20 s   54% within ±1 s             13 (2-1500*)   13 (2-189)
==========  =====  ==========================  ============  ===========

(*) maxima are scaled down by default so sweeps remain laptop-sized; the
profile dataclass exposes them for larger runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace

from ..network.generators import dataset_network
from ..network.graph import RoadNetwork
from .generators import GenerationConfig, generate_dataset
from .model import UncertainTrajectory


@dataclass(frozen=True)
class DatasetProfile:
    """Statistical profile of one of the paper's datasets."""

    name: str
    default_interval: int
    deviation_fractions: tuple[float, float, float, float, float]
    mean_instances: float
    max_instances: int
    mean_edges: float
    max_edges: int
    network_scale: int
    default_eta_probability: float
    interval_run_mean: float = 2.0  # §2.2: samples between interval changes

    def generation_config(self) -> GenerationConfig:
        return GenerationConfig(
            default_interval=self.default_interval,
            deviation_fractions=self.deviation_fractions,
            mean_instances=self.mean_instances,
            max_instances=self.max_instances,
            mean_edges=self.mean_edges,
            max_edges=self.max_edges,
            interval_run_mean=self.interval_run_mean,
        )

    def scaled(self, **overrides) -> "DatasetProfile":
        """A copy with selected fields overridden (larger sweeps, tests)."""
        return replace(self, **overrides)


#: Denmark: 1 s sampling, extremely stable intervals, many instances.
DK = DatasetProfile(
    name="DK",
    default_interval=1,
    deviation_fractions=(0.66, 0.27, 0.055, 0.010, 0.005),
    mean_instances=9,
    max_instances=20,
    mean_edges=14,
    max_edges=40,
    network_scale=26,
    default_eta_probability=1 / 512,
    interval_run_mean=6.80,
)

#: Chengdu: 10 s sampling, moderately stable intervals, few instances.
CD = DatasetProfile(
    name="CD",
    default_interval=10,
    deviation_fractions=(0.38, 0.24, 0.30, 0.05, 0.03),
    mean_instances=3,
    max_instances=10,
    mean_edges=11,
    max_edges=32,
    network_scale=22,
    default_eta_probability=1 / 512,
    interval_run_mean=2.32,
)

#: Hangzhou: 20 s sampling, unstable intervals, the most instances.
HZ = DatasetProfile(
    name="HZ",
    default_interval=20,
    deviation_fractions=(0.33, 0.21, 0.36, 0.07, 0.03),
    mean_instances=13,
    max_instances=26,
    mean_edges=13,
    max_edges=36,
    network_scale=22,
    default_eta_probability=1 / 2048,
    interval_run_mean=1.97,
)

PROFILES: dict[str, DatasetProfile] = {"DK": DK, "CD": CD, "HZ": HZ}


def profile(name: str) -> DatasetProfile:
    """Look up a profile by (case-insensitive) name."""
    try:
        return PROFILES[name.upper()]
    except KeyError:
        raise ValueError(
            f"unknown profile {name!r}; available: {sorted(PROFILES)}"
        ) from None


def load_dataset(
    profile_name: str,
    trajectory_count: int = 200,
    *,
    seed: int = 11,
    network: RoadNetwork | None = None,
    network_scale: int | None = None,
) -> tuple[RoadNetwork, list[UncertainTrajectory]]:
    """Generate a ``(network, trajectories)`` pair for a dataset profile.

    This is the synthetic stand-in for reading the paper's GPS corpora.
    """
    prof = profile(profile_name)
    if network is None:
        network = dataset_network(
            prof.name,
            scale=network_scale or prof.network_scale,
            seed=seed,
        )
    trajectories = generate_dataset(
        network, prof.generation_config(), trajectory_count, seed=seed
    )
    return network, trajectories


def filter_min_instances(
    trajectories: list[UncertainTrajectory], minimum: int
) -> list[UncertainTrajectory]:
    """Trajectories with at least ``minimum`` instances (Fig. 6 filter)."""
    return [t for t in trajectories if t.instance_count >= minimum]


def filter_min_edges(
    trajectories: list[UncertainTrajectory], minimum: int
) -> list[UncertainTrajectory]:
    """Trajectories whose best instance has >= ``minimum`` edges (Fig. 7)."""
    return [t for t in trajectories if len(t.best_instance().path) >= minimum]


def subsample_instances(
    trajectory: UncertainTrajectory, fraction: float, seed: int = 0
) -> UncertainTrajectory:
    """Keep a fraction of instances, renormalizing probabilities (Fig. 6)."""
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep = max(1, round(trajectory.instance_count * fraction))
    rng = random.Random(seed * 7919 + trajectory.trajectory_id)
    order = sorted(
        range(trajectory.instance_count),
        key=lambda i: (-trajectory.instances[i].probability, rng.random()),
    )
    chosen = sorted(order[:keep])
    return trajectory.renormalized([trajectory.instances[i] for i in chosen])


def truncate_trajectory(
    network: RoadNetwork, trajectory: UncertainTrajectory, fraction: float
) -> UncertainTrajectory | None:
    """Truncate every instance to a prefix of the shared points (Fig. 7).

    Keeps the first ``ceil(fraction * |T|)`` mapped locations (at least 2)
    and the corresponding path prefix of every instance.  Returns ``None``
    when truncation collapses two instances into identical sequences in a
    way that leaves a single instance with probability below one.
    """
    if not 0.0 < fraction <= 1.0:
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    keep_points = max(2, round(len(trajectory.times) * fraction))
    if keep_points >= len(trajectory.times):
        return trajectory
    from .model import TrajectoryInstance

    new_instances: list[TrajectoryInstance] = []
    seen: set[tuple] = set()
    for instance in trajectory.instances:
        indices = instance.location_edge_indices[:keep_points]
        last_edge_index = indices[-1]
        truncated = TrajectoryInstance(
            path=instance.path[: last_edge_index + 1],
            locations=instance.locations[:keep_points],
            probability=instance.probability,
            location_edge_indices=indices,
        )
        signature = truncated.signature()
        if signature in seen:
            # merge probability into the earlier identical instance
            for existing in new_instances:
                if existing.signature() == signature:
                    existing.probability += truncated.probability
                    break
            continue
        seen.add(signature)
        new_instances.append(truncated)
    return UncertainTrajectory(
        trajectory.trajectory_id,
        new_instances,
        list(trajectory.times[:keep_points]),
    )
