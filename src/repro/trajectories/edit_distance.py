"""Sequence edit distance, used for the Fig. 4b similarity statistics.

The paper measures similarity of edge sequences ``E(.)`` between
trajectory instances with edit distance (as in [37, 43]).  A plain
Levenshtein over hashable symbols suffices; an optional early-exit bound
keeps the all-pairs dataset statistics cheap.
"""

from __future__ import annotations

from typing import Hashable, Sequence


def edit_distance(
    a: Sequence[Hashable],
    b: Sequence[Hashable],
    *,
    upper_bound: int | None = None,
) -> int:
    """Levenshtein distance between two sequences.

    When ``upper_bound`` is given and the true distance exceeds it, any
    value strictly greater than ``upper_bound`` may be returned (banded
    computation); callers bucketing distances into ranges use this to skip
    work for clearly dissimilar pairs.
    """
    if len(a) < len(b):
        a, b = b, a  # ensure b is the shorter sequence (less memory)
    if not b:
        return len(a)
    if upper_bound is not None and abs(len(a) - len(b)) > upper_bound:
        return upper_bound + 1

    previous = list(range(len(b) + 1))
    for i, symbol_a in enumerate(a, start=1):
        current = [i] + [0] * len(b)
        row_min = i
        for j, symbol_b in enumerate(b, start=1):
            cost = 0 if symbol_a == symbol_b else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + cost,  # substitution
            )
            row_min = min(row_min, current[j])
        if upper_bound is not None and row_min > upper_bound:
            return upper_bound + 1
        previous = current
    return previous[len(b)]


def normalized_edit_distance(
    a: Sequence[Hashable], b: Sequence[Hashable]
) -> float:
    """Edit distance scaled to [0, 1] by the longer length."""
    longest = max(len(a), len(b))
    if longest == 0:
        return 0.0
    return edit_distance(a, b) / longest
