"""Trajectory data model (Definitions 2-5 of the paper).

* :class:`RawPoint` / :class:`RawTrajectory` — time-stamped GPS fixes.
* :class:`MappedLocation` — a network-constrained location
  ``<(vs -> ve), ndist, t>`` (Definition 2).
* :class:`TrajectoryInstance` — one network-constrained trajectory: a
  connected edge path plus the time-ordered mapped locations lying on it,
  with an occurrence probability (one element of Definition 5's set).
* :class:`UncertainTrajectory` — the set of instances produced by
  probabilistic map matching for one raw trajectory; all instances share
  the same time sequence (Definition 5).

An instance stores its *path* explicitly (every traversed edge, including
edges without mapped locations) because the TED edge sequence ``E`` is
defined over the path, with T' marking which path entries carry points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from ..network.graph import RoadNetwork

EdgeKey = tuple[int, int]


@dataclass(frozen=True)
class RawPoint:
    """A raw GPS fix ``(x, y, t)``."""

    x: float
    y: float
    t: int


@dataclass(frozen=True)
class RawTrajectory:
    """A time-ordered sequence of raw GPS fixes."""

    points: tuple[RawPoint, ...]

    def __post_init__(self) -> None:
        times = [p.t for p in self.points]
        if any(b <= a for a, b in zip(times, times[1:])):
            raise ValueError("raw trajectory timestamps must strictly increase")

    def __len__(self) -> int:
        return len(self.points)

    def __iter__(self) -> Iterator[RawPoint]:
        return iter(self.points)

    @property
    def times(self) -> tuple[int, ...]:
        return tuple(p.t for p in self.points)


@dataclass(frozen=True)
class MappedLocation:
    """A location on edge ``edge`` at network distance ``ndist`` from its
    start vertex (Definition 2; the timestamp lives in the shared time
    sequence of the owning uncertain trajectory)."""

    edge: EdgeKey
    ndist: float

    def relative_distance(self, network: RoadNetwork) -> float:
        """The paper's ``rd``: ``ndist`` over the edge length (Def. 7)."""
        length = network.edge_length(*self.edge)
        rd = self.ndist / length
        if not 0.0 <= rd <= 1.0:
            raise ValueError(
                f"ndist {self.ndist} outside edge {self.edge} of length {length}"
            )
        # rd is defined on [0, 1); a point exactly on the end vertex is
        # expressed as rd just below 1 so the fraction codecs stay in range.
        return min(rd, 1.0 - 1e-12)

    def position(self, network: RoadNetwork) -> tuple[float, float]:
        """Euclidean coordinates of the location (linear edge embedding)."""
        a = network.vertex(self.edge[0])
        b = network.vertex(self.edge[1])
        t = self.ndist / network.edge_length(*self.edge)
        return a.x + (b.x - a.x) * t, a.y + (b.y - a.y) * t


@dataclass
class TrajectoryInstance:
    """One map-matching instance: a path and the points mapped onto it.

    ``path`` is the connected sequence of traversed edges (Definition 4).
    ``locations`` are time-ordered and each must lie on a path edge, in
    path order (several consecutive locations may share one edge).
    ``location_edge_indices[i]`` is the index into ``path`` of the edge
    carrying ``locations[i]``.
    """

    path: list[EdgeKey]
    locations: list[MappedLocation]
    probability: float
    location_edge_indices: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.path:
            raise ValueError("an instance must traverse at least one edge")
        if not self.locations:
            raise ValueError("an instance must carry at least one mapped location")
        if not 0.0 < self.probability <= 1.0:
            raise ValueError(
                f"instance probability must be in (0, 1], got {self.probability}"
            )
        if not self.location_edge_indices:
            self.location_edge_indices = self._infer_edge_indices()
        self._validate_alignment()

    def _infer_edge_indices(self) -> list[int]:
        """Match each location to the earliest compatible path edge, never
        moving backwards (locations are time-ordered along the path)."""
        indices: list[int] = []
        cursor = 0
        for location in self.locations:
            while cursor < len(self.path) and self.path[cursor] != location.edge:
                cursor += 1
            if cursor == len(self.path):
                raise ValueError(
                    f"location on edge {location.edge} does not lie on the path "
                    f"(or violates path order)"
                )
            indices.append(cursor)
        return indices

    def _validate_alignment(self) -> None:
        if len(self.location_edge_indices) != len(self.locations):
            raise ValueError("location_edge_indices must parallel locations")
        previous_index = -1
        previous_ndist = -1.0
        for location, index in zip(self.locations, self.location_edge_indices):
            if not 0 <= index < len(self.path):
                raise ValueError(f"edge index {index} outside the path")
            if self.path[index] != location.edge:
                raise ValueError(
                    f"location edge {location.edge} disagrees with path edge "
                    f"{self.path[index]} at index {index}"
                )
            if index < previous_index:
                raise ValueError("locations must be ordered along the path")
            if index == previous_index and location.ndist < previous_ndist:
                raise ValueError(
                    "locations on one edge must be ordered by ndist"
                )
            previous_index, previous_ndist = index, location.ndist
        if self.location_edge_indices[0] != 0:
            raise ValueError("the first path edge must carry a mapped location")
        if self.location_edge_indices[-1] != len(self.path) - 1:
            raise ValueError("the last path edge must carry a mapped location")
        for (a, b), (c, d) in zip(self.path, self.path[1:]):
            if b != c:
                raise ValueError(f"path edges ({a},{b}) and ({c},{d}) disconnect")

    # ------------------------------------------------------------------
    @property
    def start_vertex(self) -> int:
        """The paper's ``SV``: start vertex of the first traversed edge."""
        return self.path[0][0]

    @property
    def point_count(self) -> int:
        return len(self.locations)

    def points_per_edge(self) -> list[int]:
        """Number of mapped locations on each path edge, in path order."""
        counts = [0] * len(self.path)
        for index in self.location_edge_indices:
            counts[index] += 1
        return counts

    def edge_set(self) -> set[EdgeKey]:
        return set(self.path)

    def relative_distances(self, network: RoadNetwork) -> list[float]:
        """The paper's ``D``: rd of every mapped location, in order."""
        return [loc.relative_distance(network) for loc in self.locations]

    def signature(self) -> tuple:
        """Hashable identity of the instance's spatial content."""
        return (
            tuple(self.path),
            tuple((l.edge, round(l.ndist, 6)) for l in self.locations),
        )


@dataclass
class UncertainTrajectory:
    """A network-constrained uncertain trajectory (Definition 5)."""

    trajectory_id: int
    instances: list[TrajectoryInstance]
    times: list[int]

    def __post_init__(self) -> None:
        if not self.instances:
            raise ValueError("an uncertain trajectory needs at least one instance")
        if any(b <= a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("the shared time sequence must strictly increase")
        for instance in self.instances:
            if instance.point_count != len(self.times):
                raise ValueError(
                    f"instance has {instance.point_count} locations but the "
                    f"shared time sequence has {len(self.times)} timestamps"
                )
        total = sum(i.probability for i in self.instances)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(
                f"instance probabilities must sum to 1, got {total:.9f}"
            )

    def __len__(self) -> int:
        return len(self.instances)

    @property
    def instance_count(self) -> int:
        return len(self.instances)

    @property
    def start_time(self) -> int:
        return self.times[0]

    @property
    def end_time(self) -> int:
        return self.times[-1]

    def best_instance(self) -> TrajectoryInstance:
        """The accurate trajectory a non-probabilistic matcher would keep
        (highest-probability instance)."""
        return max(self.instances, key=lambda i: i.probability)

    def renormalized(self, instances: Sequence[TrajectoryInstance]) -> "UncertainTrajectory":
        """A copy restricted to ``instances`` with probabilities rescaled
        (used by the instance-count sweeps in the evaluation)."""
        chosen = list(instances)
        total = sum(i.probability for i in chosen)
        if total <= 0:
            raise ValueError("cannot renormalize an empty instance subset")
        rescaled = [
            TrajectoryInstance(
                path=list(i.path),
                locations=list(i.locations),
                probability=i.probability / total,
                location_edge_indices=list(i.location_edge_indices),
            )
            for i in chosen
        ]
        return UncertainTrajectory(self.trajectory_id, rescaled, list(self.times))
