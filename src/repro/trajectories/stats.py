"""Dataset statistics reproducing Fig. 4 of the paper.

Fig. 4a counts the differences between actual and default sample
intervals; Fig. 4b buckets edit distances between instances *within* an
uncertain trajectory versus *between* different uncertain trajectories.
These statistics motivate SIAR and the referential representation, and the
corresponding benchmark validates that the synthetic datasets reproduce
them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .edit_distance import edit_distance
from .model import TrajectoryInstance, UncertainTrajectory

#: Fig. 4a deviation buckets (absolute seconds).
DEVIATION_BUCKETS = ("0", "1", "(1,50]", "(50,100]", ">100")

#: Fig. 4b edit-distance buckets.
EDIT_BUCKETS = ("[0,2]", "[3,5]", "[6,8]", ">=9")


@dataclass(frozen=True)
class IntervalStats:
    """Deviation fractions plus the mean run length between changes."""

    fractions: dict[str, float]
    change_every: float
    within_one_second: float


def _deviation_bucket(magnitude: int) -> str:
    if magnitude == 0:
        return "0"
    if magnitude == 1:
        return "1"
    if magnitude <= 50:
        return "(1,50]"
    if magnitude <= 100:
        return "(50,100]"
    return ">100"


def interval_statistics(
    trajectories: list[UncertainTrajectory], default_interval: int
) -> IntervalStats:
    """Fig. 4a statistics over the shared time sequences."""
    counts = {bucket: 0 for bucket in DEVIATION_BUCKETS}
    total = 0
    runs: list[int] = []
    for trajectory in trajectories:
        times = trajectory.times
        intervals = [b - a for a, b in zip(times, times[1:])]
        run = 1
        for index, interval in enumerate(intervals):
            counts[_deviation_bucket(abs(interval - default_interval))] += 1
            total += 1
            if index > 0:
                if interval == intervals[index - 1]:
                    run += 1
                else:
                    runs.append(run)
                    run = 1
        if intervals:
            runs.append(run)
    fractions = {
        bucket: (counts[bucket] / total if total else 0.0)
        for bucket in DEVIATION_BUCKETS
    }
    change_every = sum(runs) / len(runs) if runs else 0.0
    return IntervalStats(
        fractions=fractions,
        change_every=change_every,
        within_one_second=fractions["0"] + fractions["1"],
    )


def _edge_symbols(instance: TrajectoryInstance) -> list[tuple[int, int]]:
    return instance.path


def _edit_bucket(distance: int) -> str:
    if distance <= 2:
        return "[0,2]"
    if distance <= 5:
        return "[3,5]"
    if distance <= 8:
        return "[6,8]"
    return ">=9"


def within_trajectory_similarity(
    trajectories: list[UncertainTrajectory],
    *,
    max_pairs_per_trajectory: int = 50,
    seed: int = 3,
) -> dict[str, float]:
    """Fig. 4b (left): edit distances between instances of one trajectory."""
    rng = random.Random(seed)
    counts = {bucket: 0 for bucket in EDIT_BUCKETS}
    total = 0
    for trajectory in trajectories:
        instances = trajectory.instances
        pairs = [
            (i, j)
            for i in range(len(instances))
            for j in range(i + 1, len(instances))
        ]
        if len(pairs) > max_pairs_per_trajectory:
            pairs = rng.sample(pairs, max_pairs_per_trajectory)
        for i, j in pairs:
            distance = edit_distance(
                _edge_symbols(instances[i]),
                _edge_symbols(instances[j]),
                upper_bound=9,
            )
            counts[_edit_bucket(distance)] += 1
            total += 1
    return {
        bucket: (counts[bucket] / total if total else 0.0)
        for bucket in EDIT_BUCKETS
    }


def between_trajectory_similarity(
    trajectories: list[UncertainTrajectory],
    *,
    sample_pairs: int = 400,
    seed: int = 5,
) -> dict[str, float]:
    """Fig. 4b (right): edit distances across different trajectories."""
    rng = random.Random(seed)
    counts = {bucket: 0 for bucket in EDIT_BUCKETS}
    total = 0
    if len(trajectories) < 2:
        return {bucket: 0.0 for bucket in EDIT_BUCKETS}
    for _ in range(sample_pairs):
        a, b = rng.sample(range(len(trajectories)), 2)
        instance_a = rng.choice(trajectories[a].instances)
        instance_b = rng.choice(trajectories[b].instances)
        distance = edit_distance(
            _edge_symbols(instance_a),
            _edge_symbols(instance_b),
            upper_bound=9,
        )
        counts[_edit_bucket(distance)] += 1
        total += 1
    return {
        bucket: (counts[bucket] / total if total else 0.0)
        for bucket in EDIT_BUCKETS
    }


def dataset_summary(trajectories: list[UncertainTrajectory]) -> dict[str, float]:
    """Table 5-style summary of a generated dataset."""
    if not trajectories:
        return {
            "trajectories": 0,
            "avg_instances": 0.0,
            "max_instances": 0,
            "avg_edges": 0.0,
            "max_edges": 0,
            "avg_points": 0.0,
        }
    instance_counts = [t.instance_count for t in trajectories]
    edge_counts = [
        len(instance.path)
        for t in trajectories
        for instance in t.instances
    ]
    point_counts = [len(t.times) for t in trajectories]
    return {
        "trajectories": len(trajectories),
        "avg_instances": sum(instance_counts) / len(instance_counts),
        "max_instances": max(instance_counts),
        "avg_edges": sum(edge_counts) / len(edge_counts),
        "max_edges": max(edge_counts),
        "avg_points": sum(point_counts) / len(point_counts),
    }
