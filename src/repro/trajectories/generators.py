"""Uncertain-trajectory workload generation.

The paper's datasets are proprietary GPS corpora; this module synthesizes
network-constrained uncertain trajectories with the *published* statistical
properties (see ``datasets.py`` for the per-dataset profiles):

* a base path is a non-backtracking random walk over the road network;
* mapped locations are placed along the path by chainage, always covering
  the first and last edge (the paper exploits this in the trimmed T');
* the shared time sequence starts at a random second-of-day and advances
  by ``Ts + deviation`` with deviations drawn from the Fig. 4a categories;
* alternative instances are *local detours* of the base path (replacing a
  short window of edges with an alternative route) or *tail switches*
  (re-routing the final edge), mirroring Fig. 2's Tu^1_2 / Tu^1_3; points
  outside the modified window keep their exact (edge, ndist), which is why
  the paper's positional D-factors pay off;
* instance probabilities are a decreasing random allocation with the base
  instance most likely, summing to one.

Everything is driven by an explicit ``random.Random`` so datasets are
reproducible from a seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..network.graph import RoadNetwork
from ..network.shortest_path import random_walk_path, shortest_path
from .model import (
    EdgeKey,
    MappedLocation,
    TrajectoryInstance,
    UncertainTrajectory,
)
from .path import PathChainage

SECONDS_PER_DAY = 86400

#: Fig. 4a deviation categories: |deviation| of 0, 1, 2..50, 51..100, >100 s.
DEVIATION_CATEGORIES = ((0, 0), (1, 1), (2, 50), (51, 100), (101, 180))


@dataclass(frozen=True)
class GenerationConfig:
    """Knobs controlling one generated uncertain trajectory."""

    default_interval: int
    deviation_fractions: tuple[float, float, float, float, float]
    mean_instances: float
    max_instances: int
    mean_edges: float
    max_edges: int
    min_edges: int = 2
    points_per_edge: tuple[float, float] = (0.45, 0.95)
    head_switch_fraction: float = 0.08
    #: mean number of samples between interval changes (§2.2 reports
    #: 6.80 / 2.32 / 1.97 for DK / CD / HZ) — intervals are "sticky".
    interval_run_mean: float = 2.0

    def __post_init__(self) -> None:
        if abs(sum(self.deviation_fractions) - 1.0) > 1e-9:
            raise ValueError("deviation fractions must sum to 1")
        if self.default_interval < 1:
            raise ValueError("default interval must be at least 1 second")
        if self.min_edges < 2:
            raise ValueError("trajectories need at least 2 edges")


def draw_deviation(config: GenerationConfig, rng: random.Random) -> int:
    """One signed sample-interval deviation from the Fig. 4a categories.

    The resulting interval ``Ts + deviation`` is always at least 1 second,
    which bounds how negative a deviation may be.
    """
    roll = rng.random()
    cumulative = 0.0
    magnitude = 0
    for (lo, hi), fraction in zip(DEVIATION_CATEGORIES, config.deviation_fractions):
        cumulative += fraction
        if roll <= cumulative:
            magnitude = rng.randint(lo, hi)
            break
    else:
        magnitude = rng.randint(*DEVIATION_CATEGORIES[-1])
    if magnitude == 0:
        return 0
    max_negative = config.default_interval - 1
    if max_negative >= magnitude and rng.random() < 0.5:
        return -magnitude
    return magnitude


def draw_time_sequence(
    config: GenerationConfig, point_count: int, rng: random.Random
) -> list[int]:
    """A strictly increasing time sequence with profile-shaped intervals.

    Intervals are *sticky*: each sample keeps the previous interval with
    probability ``1 - 1/interval_run_mean`` and redraws it otherwise, so
    the mean run length between interval changes matches the dataset
    statistic in §2.2 (which is what TED's boundary-pair codec exploits).
    """
    start = rng.randrange(0, SECONDS_PER_DAY // 2)
    times = [start]
    change_probability = 1.0 / max(config.interval_run_mean, 1.0)
    interval = max(config.default_interval + draw_deviation(config, rng), 1)
    for step in range(point_count - 1):
        if step > 0 and rng.random() < change_probability:
            interval = max(
                config.default_interval + draw_deviation(config, rng), 1
            )
        times.append(times[-1] + interval)
    return times


def draw_count(mean: float, minimum: int, maximum: int, rng: random.Random) -> int:
    """A count with the given mean, geometric-tailed like the paper's data."""
    if maximum <= minimum:
        return minimum
    span_mean = max(mean - minimum, 0.25)
    p = 1.0 / (1.0 + span_mean)
    count = minimum
    while count < maximum and rng.random() > p:
        count += 1
    return count


def place_locations(
    network: RoadNetwork,
    path: list[EdgeKey],
    point_count: int,
    rng: random.Random,
) -> tuple[list[MappedLocation], list[int]]:
    """Place ``point_count`` locations along ``path`` by sorted chainage.

    The first location lies on the first edge and the last on the final
    edge (model invariant).  ``ndist`` values are quantized to 0.1 m, the
    way consumer GPS pipelines round, which makes relative distances
    repeat across instances.
    """
    if point_count < 2:
        raise ValueError("need at least 2 mapped locations")
    chain = PathChainage(network, path)
    first_limit = network.edge_length(*path[0])
    last_start = chain.total_length - network.edge_length(*path[-1])
    first = rng.uniform(0.0, first_limit * 0.95)
    last = rng.uniform(
        last_start + 1e-6, chain.total_length - 1e-6
    )
    middles = sorted(
        rng.uniform(first, last) for _ in range(point_count - 2)
    )
    chainages = [first, *middles, last]
    locations: list[MappedLocation] = []
    edge_indices: list[int] = []
    for chainage in chainages:
        position = chain.position_at(chainage)
        edge_length = network.edge_length(*position.edge)
        ndist = min(max(round(position.ndist, 1), 0.0), edge_length)
        locations.append(MappedLocation(position.edge, ndist))
        edge_indices.append(position.edge_index)
    # Quantization could push a location across an edge boundary ordering;
    # enforce monotone ndist within an edge.
    for i in range(1, len(locations)):
        if (
            edge_indices[i] == edge_indices[i - 1]
            and locations[i].ndist < locations[i - 1].ndist
        ):
            locations[i] = MappedLocation(
                locations[i].edge, locations[i - 1].ndist
            )
    return locations, edge_indices


def _detour_window(
    path: list[EdgeKey], rng: random.Random
) -> tuple[int, int] | None:
    """A candidate [i, j) window of interior path edges to re-route."""
    if len(path) < 4:
        return None
    width = rng.randint(1, min(3, len(path) - 3))
    start = rng.randint(1, len(path) - 1 - width - 1)
    return start, start + width


def make_detour_instance(
    network: RoadNetwork,
    base: TrajectoryInstance,
    rng: random.Random,
    *,
    attempts: int = 6,
) -> TrajectoryInstance | None:
    """A variant of ``base`` that re-routes a short interior window.

    Locations outside the window are copied verbatim.  When the
    replacement sub-path has the same number of edges (a parallel street —
    the common probabilistic-map-matching ambiguity), window locations map
    edge-by-edge *preserving their relative distance*, reproducing the
    paper's observation that alternative matchings often share ``rd``
    values (§4.2).  Otherwise they are re-projected by chainage fraction.
    Returns ``None`` when the network offers no alternative.
    """
    fallback: tuple[tuple[int, int], list[EdgeKey], float, float] | None = None
    for _ in range(attempts):
        window = _detour_window(base.path, rng)
        if window is None:
            return None
        i, j = window
        source = base.path[i][0]
        target = base.path[j - 1][1]
        original = base.path[i:j]
        original_length = network.path_length(original)
        forbidden = {rng.choice(original)}
        found = shortest_path(
            network,
            source,
            target,
            cutoff=original_length * 4 + 1.0,
            forbidden_edges=forbidden,
        )
        if found is None or not found[0] or found[0] == original:
            continue
        replacement, replacement_length = found
        if len(replacement) == j - i:
            instance = _relocate_window_parallel(
                network, base, (i, j), replacement
            )
            if instance is not None:
                return instance
        if fallback is None:
            fallback = ((i, j), replacement, replacement_length, original_length)
    if fallback is None:
        return None
    (i, j), replacement, replacement_length, original_length = fallback
    new_path = base.path[:i] + replacement + base.path[j:]
    return _relocate_window(
        network,
        base,
        new_path,
        window=(i, j),
        replacement_span=(len(replacement), replacement_length),
        original_length=original_length,
    )


def _relocate_window_parallel(
    network: RoadNetwork,
    base: TrajectoryInstance,
    window: tuple[int, int],
    replacement: list[EdgeKey],
) -> TrajectoryInstance | None:
    """Equal-edge-count detour: keep each window location's relative
    distance on the corresponding replacement edge."""
    i, j = window
    new_path = base.path[:i] + replacement + base.path[j:]
    locations: list[MappedLocation] = []
    for loc, idx in zip(base.locations, base.location_edge_indices):
        if i <= idx < j:
            new_edge = replacement[idx - i]
            rd = loc.ndist / network.edge_length(*base.path[idx])
            new_length = network.edge_length(*new_edge)
            ndist = min(max(round(rd * new_length, 1), 0.0), new_length)
            locations.append(MappedLocation(new_edge, ndist))
        else:
            locations.append(loc)
    try:
        return TrajectoryInstance(
            path=new_path,
            locations=locations,
            probability=base.probability,
            location_edge_indices=list(base.location_edge_indices),
        )
    except ValueError:
        return None


def _relocate_window(
    network: RoadNetwork,
    base: TrajectoryInstance,
    new_path: list[EdgeKey],
    *,
    window: tuple[int, int],
    replacement_span: tuple[int, float],
    original_length: float,
) -> TrajectoryInstance | None:
    i, j = window
    replacement_edges, replacement_length = replacement_span
    old_chain = PathChainage(network, base.path)
    new_chain = PathChainage(network, new_path)
    window_start_old = old_chain.edge_start(i)
    window_start_new = new_chain.edge_start(i)
    shift_after = (
        new_chain.edge_start(i + replacement_edges)
        - old_chain.edge_start(j)
    )
    locations: list[MappedLocation] = []
    edge_indices: list[int] = []
    for loc, idx in zip(base.locations, base.location_edge_indices):
        if idx < i:
            locations.append(loc)
            edge_indices.append(idx)
        elif idx >= j:
            locations.append(loc)
            edge_indices.append(idx + replacement_edges - (j - i))
        else:
            old_chainage = old_chain.chainage_of(idx, loc.ndist)
            fraction = (
                (old_chainage - window_start_old) / original_length
                if original_length > 0
                else 0.0
            )
            new_chainage = window_start_new + fraction * replacement_length
            position = new_chain.position_at(new_chainage)
            edge_length = network.edge_length(*position.edge)
            ndist = min(max(round(position.ndist, 1), 0.0), edge_length)
            locations.append(MappedLocation(position.edge, ndist))
            edge_indices.append(position.edge_index)
    for k in range(1, len(locations)):
        if edge_indices[k] < edge_indices[k - 1]:
            return None
        if (
            edge_indices[k] == edge_indices[k - 1]
            and locations[k].ndist < locations[k - 1].ndist
        ):
            locations[k] = MappedLocation(
                locations[k].edge, locations[k - 1].ndist
            )
    try:
        return TrajectoryInstance(
            path=new_path,
            locations=locations,
            probability=base.probability,
            location_edge_indices=edge_indices,
        )
    except ValueError:
        return None


def make_tail_switch_instance(
    network: RoadNetwork,
    base: TrajectoryInstance,
    rng: random.Random,
) -> TrajectoryInstance | None:
    """A variant that re-routes the final edge (Fig. 2's Tu^1_3 pattern).

    The last mapped location moves to an alternative outgoing edge of the
    second-to-last vertex, preserving its relative distance.
    """
    last_edge = base.path[-1]
    alternatives = [
        e for e in network.out_edges(last_edge[0]) if e.key != last_edge
    ]
    if len(base.path) >= 2:
        previous_vertex = base.path[-2][0]
        alternatives = [e for e in alternatives if e.end != previous_vertex]
    if not alternatives:
        return None
    new_edge = rng.choice(alternatives)
    last_count = sum(
        1 for idx in base.location_edge_indices if idx == len(base.path) - 1
    )
    if last_count != 1:
        return None  # several points on the last edge: keep it simple
    old_rd = base.locations[-1].ndist / network.edge_length(*last_edge)
    new_ndist = min(
        max(round(old_rd * new_edge.length, 1), 0.0), new_edge.length
    )
    locations = base.locations[:-1] + [MappedLocation(new_edge.key, new_ndist)]
    new_path = base.path[:-1] + [new_edge.key]
    try:
        return TrajectoryInstance(
            path=new_path,
            locations=locations,
            probability=base.probability,
            location_edge_indices=list(base.location_edge_indices),
        )
    except ValueError:
        return None


def make_head_switch_instance(
    network: RoadNetwork,
    base: TrajectoryInstance,
    rng: random.Random,
) -> TrajectoryInstance | None:
    """A variant that enters the path from a different first edge.

    This changes the start vertex, exercising the compressor's rule that
    instances with different ``SV`` never share a reference.
    """
    first_edge = base.path[0]
    join_vertex = first_edge[1]
    alternatives = [e for e in network.in_edges(join_vertex) if e.key != first_edge]
    if not alternatives:
        return None
    new_edge = rng.choice(alternatives)
    first_count = sum(1 for idx in base.location_edge_indices if idx == 0)
    if first_count != 1:
        return None
    old_rd = base.locations[0].ndist / network.edge_length(*first_edge)
    new_ndist = min(
        max(round(old_rd * new_edge.length, 1), 0.0), new_edge.length
    )
    locations = [MappedLocation(new_edge.key, new_ndist)] + base.locations[1:]
    new_path = [new_edge.key] + base.path[1:]
    try:
        return TrajectoryInstance(
            path=new_path,
            locations=locations,
            probability=base.probability,
            location_edge_indices=list(base.location_edge_indices),
        )
    except ValueError:
        return None


def _draw_probabilities(count: int, rng: random.Random) -> list[float]:
    """Decreasing probabilities summing to 1, base instance first.

    Values are quantized to a 1/128 grid, mimicking the truncated
    likelihoods probabilistic map matchers report (and keeping PDDP
    probability codes short, as in the paper's Table 8).
    """
    if count == 1:
        return [1.0]
    grid = 128
    weights = sorted(
        (rng.random() ** 1.5 + 0.05 for _ in range(count)), reverse=True
    )
    total = sum(weights)
    shares = [max(round(w / total * grid), 1) for w in weights]
    shares[0] += grid - sum(shares)
    if shares[0] < 1:  # rounding pushed the head below the floor
        deficit = 1 - shares[0]
        shares[0] = 1
        for i in range(1, count):
            take = min(deficit, shares[i] - 1)
            shares[i] -= take
            deficit -= take
            if deficit == 0:
                break
    shares.sort(reverse=True)
    return [s / grid for s in shares]


def generate_uncertain_trajectory(
    network: RoadNetwork,
    config: GenerationConfig,
    trajectory_id: int,
    rng: random.Random,
    *,
    max_attempts: int = 40,
) -> UncertainTrajectory:
    """Generate one uncertain trajectory per the module docstring."""
    vertex_ids = getattr(network, "_vertex_id_cache", None)
    if vertex_ids is None:
        vertex_ids = list(network.vertex_ids())
        network._vertex_id_cache = vertex_ids  # memoized: generators loop a lot

    edge_count = draw_count(
        config.mean_edges, config.min_edges, config.max_edges, rng
    )
    path: list[EdgeKey] = []
    for _ in range(max_attempts):
        source = rng.choice(vertex_ids)
        path = random_walk_path(network, source, edge_count, rng.choice)
        if len(path) >= config.min_edges:
            break
    if len(path) < config.min_edges:
        raise RuntimeError("network too sparse to generate a trajectory path")

    point_count = max(
        2,
        round(len(path) * rng.uniform(*config.points_per_edge)),
    )
    locations, edge_indices = place_locations(network, path, point_count, rng)
    base = TrajectoryInstance(
        path=path,
        locations=locations,
        probability=1.0,
        location_edge_indices=edge_indices,
    )

    target_instances = draw_count(
        config.mean_instances, 1, config.max_instances, rng
    )
    variants: list[TrajectoryInstance] = [base]
    signatures = {base.signature()}
    attempts = 0
    while len(variants) < target_instances and attempts < max_attempts:
        attempts += 1
        roll = rng.random()
        if roll < config.head_switch_fraction:
            candidate = make_head_switch_instance(network, base, rng)
        elif roll < 0.5:
            candidate = make_tail_switch_instance(
                network, rng.choice(variants), rng
            )
        else:
            candidate = make_detour_instance(network, rng.choice(variants), rng)
        if candidate is None:
            continue
        signature = candidate.signature()
        if signature in signatures:
            continue
        signatures.add(signature)
        variants.append(candidate)

    probabilities = _draw_probabilities(len(variants), rng)
    instances = [
        TrajectoryInstance(
            path=list(inst.path),
            locations=list(inst.locations),
            probability=p,
            location_edge_indices=list(inst.location_edge_indices),
        )
        for inst, p in zip(variants, probabilities)
    ]
    times = draw_time_sequence(config, point_count, rng)
    return UncertainTrajectory(trajectory_id, instances, times)


def generate_dataset(
    network: RoadNetwork,
    config: GenerationConfig,
    trajectory_count: int,
    seed: int = 11,
) -> list[UncertainTrajectory]:
    """Generate ``trajectory_count`` uncertain trajectories."""
    rng = random.Random(seed)
    return [
        generate_uncertain_trajectory(network, config, tid, rng)
        for tid in range(trajectory_count)
    ]
