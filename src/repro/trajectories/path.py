"""Chainage arithmetic along instance paths.

The where/when queries interpolate an object's position between two
mapped locations under a constant-speed assumption along the network
path.  ``PathChainage`` precomputes cumulative edge lengths so that
``(edge index, ndist) <-> absolute chainage`` conversions are O(1)/O(log n).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass

from ..network.graph import RoadNetwork
from .model import EdgeKey, MappedLocation, TrajectoryInstance


@dataclass(frozen=True)
class PathPosition:
    """A position on a path: the edge (by index and key) plus ``ndist``."""

    edge_index: int
    edge: EdgeKey
    ndist: float


class PathChainage:
    """Cumulative-length view of a connected edge path."""

    def __init__(self, network: RoadNetwork, path: list[EdgeKey]) -> None:
        if not path:
            raise ValueError("cannot build chainage over an empty path")
        self.network = network
        self.path = path
        self._prefix = [0.0]
        for edge in path:
            self._prefix.append(self._prefix[-1] + network.edge_length(*edge))

    @property
    def total_length(self) -> float:
        return self._prefix[-1]

    def edge_start(self, edge_index: int) -> float:
        """Chainage at which path edge ``edge_index`` begins."""
        return self._prefix[edge_index]

    def chainage_of(self, edge_index: int, ndist: float) -> float:
        """Absolute chainage of a point ``ndist`` into path edge
        ``edge_index``."""
        if not 0 <= edge_index < len(self.path):
            raise IndexError(f"edge index {edge_index} outside the path")
        return self._prefix[edge_index] + ndist

    def chainage_of_location(
        self, location: MappedLocation, edge_index: int
    ) -> float:
        if self.path[edge_index] != location.edge:
            raise ValueError("location does not lie on the given path edge")
        return self.chainage_of(edge_index, location.ndist)

    def position_at(self, chainage: float) -> PathPosition:
        """The path position at an absolute chainage (clamped to the path)."""
        chainage = min(max(chainage, 0.0), self.total_length)
        index = bisect.bisect_right(self._prefix, chainage) - 1
        index = min(index, len(self.path) - 1)
        ndist = chainage - self._prefix[index]
        return PathPosition(index, self.path[index], ndist)

    def subpath_between(self, lo_chainage: float, hi_chainage: float) -> list[EdgeKey]:
        """Path edges intersected by the chainage interval (inclusive)."""
        if lo_chainage > hi_chainage:
            lo_chainage, hi_chainage = hi_chainage, lo_chainage
        lo = self.position_at(lo_chainage)
        hi = self.position_at(hi_chainage)
        return self.path[lo.edge_index : hi.edge_index + 1]


class InstanceChainage(PathChainage):
    """Chainage over an instance's path with its locations pre-resolved."""

    def __init__(self, network: RoadNetwork, instance: TrajectoryInstance) -> None:
        super().__init__(network, instance.path)
        self.instance = instance
        self.location_chainages = [
            self.chainage_of(idx, loc.ndist)
            for idx, loc in zip(
                instance.location_edge_indices, instance.locations
            )
        ]

    def position_at_time(self, times: list[int], t: int) -> PathPosition | None:
        """Constant-speed position of the object at time ``t``.

        Returns ``None`` when ``t`` falls outside the instance's time span.
        """
        if t < times[0] or t > times[-1]:
            return None
        index = bisect.bisect_right(times, t) - 1
        if index >= len(times) - 1:
            return self.position_at(self.location_chainages[-1])
        t0, t1 = times[index], times[index + 1]
        c0 = self.location_chainages[index]
        c1 = self.location_chainages[index + 1]
        fraction = (t - t0) / (t1 - t0)
        return self.position_at(c0 + (c1 - c0) * fraction)

    def time_at_chainage(
        self, times: list[int], chainage: float, *, tolerance: float = 1e-9
    ) -> float | None:
        """Inverse of :meth:`position_at_time` for a chainage on the path.

        Returns the (possibly fractional) time at which the object passes
        ``chainage``; ``None`` if the chainage precedes the first or
        follows the last mapped location by more than ``tolerance``
        (queries over lossily stored distances pass an eta-derived
        tolerance so boundary locations are not missed).  Where
        consecutive locations share a chainage (the object idled), the
        earlier time is returned.
        """
        chains = self.location_chainages
        if chainage < chains[0] - tolerance or chainage > chains[-1] + tolerance:
            return None
        chainage = min(max(chainage, chains[0]), chains[-1])
        for i in range(len(chains) - 1):
            c0, c1 = chains[i], chains[i + 1]
            if c0 - 1e-9 <= chainage <= c1 + 1e-9:
                if c1 == c0:
                    return float(times[i])
                fraction = (chainage - c0) / (c1 - c0)
                fraction = min(max(fraction, 0.0), 1.0)
                return times[i] + (times[i + 1] - times[i]) * fraction
        return float(times[-1])

    def times_at_position(
        self,
        times: list[int],
        edge: EdgeKey,
        ndist: float,
        *,
        tolerance: float = 1e-9,
    ) -> list[float]:
        """All times at which the instance passes ``(edge, ndist)``.

        A path may traverse the same edge more than once, hence a list.
        """
        results: list[float] = []
        for edge_index, path_edge in enumerate(self.path):
            if path_edge != edge:
                continue
            t = self.time_at_chainage(
                times,
                self.chainage_of(edge_index, ndist),
                tolerance=tolerance,
            )
            if t is not None:
                results.append(t)
        return results
