"""Trajectory substrate: data model, generators, datasets, statistics."""

from .model import (
    EdgeKey,
    MappedLocation,
    RawPoint,
    RawTrajectory,
    TrajectoryInstance,
    UncertainTrajectory,
)
from .path import InstanceChainage, PathChainage, PathPosition
from .edit_distance import edit_distance, normalized_edit_distance
from .generators import (
    GenerationConfig,
    generate_dataset,
    generate_uncertain_trajectory,
)
from .datasets import (
    CD,
    DK,
    HZ,
    PROFILES,
    DatasetProfile,
    filter_min_edges,
    filter_min_instances,
    load_dataset,
    profile,
    subsample_instances,
    truncate_trajectory,
)

__all__ = [
    "EdgeKey",
    "MappedLocation",
    "RawPoint",
    "RawTrajectory",
    "TrajectoryInstance",
    "UncertainTrajectory",
    "InstanceChainage",
    "PathChainage",
    "PathPosition",
    "edit_distance",
    "normalized_edit_distance",
    "GenerationConfig",
    "generate_dataset",
    "generate_uncertain_trajectory",
    "CD",
    "DK",
    "HZ",
    "PROFILES",
    "DatasetProfile",
    "filter_min_edges",
    "filter_min_instances",
    "load_dataset",
    "profile",
    "subsample_instances",
    "truncate_trajectory",
]
